//! Slot-indexed TSGD for the dense Scheme 2 kernel.
//!
//! [`DenseTsgd`] is semantically the same structure as [`crate::tsgd::Tsgd`]
//! — transaction/site nodes, undirected edges, dependencies between edges at
//! a common site — but stored over compact `u32` slots handed out by
//! [`DenseInterner`]s, so the per-operation hot path touches vectors and
//! bitsets instead of `BTreeMap`s and allocates nothing:
//!
//! - adjacency is kept as **id-sorted** vectors of `(id, slot)` pairs, so
//!   every traversal visits neighbours in exactly the order the reference
//!   `BTreeMap` kernels do — step counts that depend on traversal order
//!   (notably [`eliminate_cycles_dense`]) stay byte-identical;
//! - dependencies into a transaction are per-site [`DenseBitSet`]s of
//!   *before* slots, so Scheme 2's `cond(ser)` predecessor count is a
//!   popcount and `cond(fin)`'s "no incoming dependency" test is an O(1)
//!   counter read instead of a scan of the whole dependency set;
//! - cycle *validation* uses a polynomial closed-walk reachability check
//!   (sound over-approximation of the paper's cycle definition) with a
//!   **witness-based memo** that survives mutations incrementally, falling
//!   back to the exponential DFS oracle — a direct port of
//!   [`crate::tsgd::Tsgd::has_cycle_involving`] — only to confirm a
//!   positive;
//! - the dependency digraph's acyclicity (the Theorem 5 invariant) is
//!   maintained *incrementally*: new dependencies are batched as Δ-edge
//!   records and drained into a Pearce–Kelly online topological order
//!   ([`mdbs_schedule::OnlineTopo`]) that reorders only the key window
//!   between the edge's endpoints; a detected cycle collapses its region
//!   into an SCC group through [`mdbs_schedule::UnionFind`], and
//!   `remove_txn` repairs only the group it touches instead of
//!   invalidating everything.
//!
//! Abstract step accounting is unchanged: [`eliminate_cycles_dense`] and
//! the cursor-amortized [`eliminate_cycles_dense_with`] charge `steps`
//! tick-for-tick like [`crate::tsgd::eliminate_cycles`] (Figure 4); the
//! incremental machinery lives on *uncounted* machine-cost paths only.

use crate::tsgd::Dep;
use mdbs_common::dense::{DenseBitSet, DenseInterner};
use mdbs_common::ids::{GlobalTxnId, SiteId};
use mdbs_common::step::{StepCounter, StepKind};
use mdbs_schedule::{DiGraph, OnlineTopo, TopoResult, UnionFind};
use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, BTreeSet};

/// One memoized closed-walk answer.
///
/// The memo is *witness-based* rather than version-keyed: a `Cycle` entry
/// records the exact transitions `(site, from, to)` of the closed walk it
/// found, so a later mutation invalidates it only if it blocks one of those
/// transitions. Each mutation class is monotone in one direction:
///
/// - `insert_txn` adds walk transitions, so it can only *create* cycles —
///   `NoCycle` entries are dropped, `Cycle` witnesses stay valid;
/// - `add_dep` blocks one transition, so it can only *destroy* cycles —
///   `NoCycle` entries stay valid, `Cycle` witnesses using that transition
///   are dropped;
/// - `remove_txn` deletes transitions through the removed node and the
///   dependencies touching it (which only blocked transitions through that
///   same node), so entries not mentioning the node stay valid either way.
#[derive(Clone, Debug)]
enum WalkMemo {
    NoCycle,
    /// Witness transitions `(site slot, from txn slot, to txn slot)`.
    Cycle(Vec<(u32, u32, u32)>),
}

/// Closed-walk memo keyed by txn slot. See [`WalkMemo`] for invalidation.
#[derive(Clone, Debug, Default)]
struct WalkCache {
    map: BTreeMap<u32, WalkMemo>,
}

/// Δ-edge batch size: pending dependency edges are drained into the online
/// topological order once this many accumulate (or on any explicit query),
/// keeping the release-mode hot path to a `Vec::push`.
const TOPO_DRAIN_BATCH: usize = 1024;

/// Incrementally maintained topological order of the dependency digraph
/// with SCC collapse.
///
/// Nodes are *component representatives*: initially every live txn slot,
/// collapsed through `scc` when a dependency cycle is detected (only
/// possible on protocol-violating inputs or direct TSGD manipulation — on
/// valid Scheme 2 runs every dependency cycle implies a TSGD closed walk
/// that `Eliminate_Cycles` already broke, so every group stays a
/// singleton). New dependencies are batched in `pending` and revalidated
/// against the live dependency set when drained, which makes stale records
/// (deleted deps, recycled slots) harmless: a record that revalidates *is*
/// a current dependency, whatever ids its slots mean today.
#[derive(Clone, Debug, Default)]
struct DepTopo {
    order: OnlineTopo,
    scc: UnionFind,
    /// Txn slot → index into `groups`, `u32::MAX` when a singleton.
    group_id: Vec<u32>,
    /// Multi-member SCC member lists (emptied in place when retired).
    groups: Vec<Vec<u32>>,
    /// Batched Δ-edges as `(site, before, after)` slot triples.
    pending: Vec<(u32, u32, u32)>,
    /// Total Δ-edge records batched (the `tsgd.delta_edges` metric).
    delta_edges: u64,
    /// Total nodes re-keyed by order repairs (the `tsgd.topo_shift` metric).
    topo_shift: u64,
}

/// The TSGD over dense slots. See the module docs for the storage scheme.
#[derive(Clone, Debug, Default)]
pub struct DenseTsgd {
    txns: DenseInterner<GlobalTxnId>,
    sites: DenseInterner<SiteId>,
    /// Txn slot → edges as `(site id, site slot)`, sorted by site id.
    txn_sites: Vec<Vec<(SiteId, u32)>>,
    /// Site slot → edges as `(txn id, txn slot)`, sorted by txn id.
    site_txns: Vec<Vec<(GlobalTxnId, u32)>>,
    /// After-txn slot → `(site slot, before-txn slots)`, sorted by site slot.
    deps_in: Vec<Vec<(u32, DenseBitSet)>>,
    /// Before-txn slot → `(site slot, after-txn **column positions**)`
    /// mirror, sorted by site slot. Bits index positions in the site's
    /// id-ordered `site_txns` column — the exact order `Eliminate_Cycles`
    /// scans — so one column's blocked set ORs word-wise into the scan's
    /// skip mask. Column insertions/removals repair every member's bitset
    /// with an O(words) hole shift (see `DenseBitSet::shift_up_from`).
    deps_out: Vec<Vec<(u32, DenseBitSet)>>,
    /// After-txn slot → number of incoming dependencies (O(1) `cond(fin)`).
    incoming: Vec<u32>,
    dep_count: usize,
    walk: RefCell<WalkCache>,
    topo: RefCell<DepTopo>,
    reach_hits: Cell<u64>,
    /// Checked-decrement failures in [`DenseTsgd::remove_txn`] — a desynced
    /// dependency bitset is counted here (and surfaced by the kernel as a
    /// protocol violation) instead of panicking in the scheduler.
    desync: Cell<u64>,
}

// mdbs-lint: allow(no-panic-in-scheduler, scope=item) — slot indices come from the interner and adjacency rows are grown at insert_txn; prop_tsgd + kernel_equivalence pin the invariant against the reference Tsgd.
impl DenseTsgd {
    /// Empty TSGD.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure_txn_rows(&mut self, slot: u32) {
        let n = slot as usize + 1;
        if self.txn_sites.len() < n {
            self.txn_sites.resize_with(n, Vec::new);
            self.deps_in.resize_with(n, Vec::new);
            self.deps_out.resize_with(n, Vec::new);
            self.incoming.resize(n, 0);
        }
    }

    /// Insert transaction `txn` with edges to `sites` (idempotent-merging,
    /// like the reference). Returns the transaction's slot.
    pub fn insert_txn(&mut self, txn: GlobalTxnId, sites: &[SiteId]) -> u32 {
        // A new node only adds walk transitions: cycles can appear, not
        // vanish, so `Cycle` witnesses stay valid and `NoCycle` memos drop.
        self.walk
            .borrow_mut()
            .map
            .retain(|_, m| matches!(m, WalkMemo::Cycle(_)));
        let ts = self.txns.intern(txn);
        {
            let mut topo = self.topo.borrow_mut();
            let cap = self.txns.capacity();
            topo.scc.grow(cap);
            if topo.group_id.len() < cap {
                topo.group_id.resize(cap, u32::MAX);
            }
            // A slot already collapsed into a group keeps its representative
            // in the order; anything else (fresh or recycled) enters at the
            // end, which is consistent because it has no dependencies yet.
            if topo.group_id[ts as usize] == u32::MAX {
                topo.order.insert(ts);
            }
        }
        self.ensure_txn_rows(ts);
        for &site in sites {
            let ss = self.sites.intern(site);
            if self.site_txns.len() <= ss as usize {
                self.site_txns.resize_with(ss as usize + 1, Vec::new);
            }
            let row = &mut self.txn_sites[ts as usize];
            if let Err(pos) = row.binary_search_by_key(&site, |e| e.0) {
                row.insert(pos, (site, ss));
                let inserted_at = {
                    let col = &mut self.site_txns[ss as usize];
                    match col.binary_search_by_key(&txn, |e| e.0) {
                        Err(cpos) => {
                            col.insert(cpos, (txn, ts));
                            (cpos + 1 < col.len()).then_some(cpos)
                        }
                        Ok(_) => None,
                    }
                };
                // The column gained an entry at `cpos`: open a hole in
                // every member's position-space dependency bitset. The new
                // member has no dependencies at this site yet.
                if let Some(cpos) = inserted_at {
                    let Self {
                        site_txns,
                        deps_out,
                        ..
                    } = &mut *self;
                    for &(_, js) in &site_txns[ss as usize] {
                        if js == ts {
                            continue;
                        }
                        let orow = &mut deps_out[js as usize];
                        if let Ok(p) = orow.binary_search_by_key(&ss, |e| e.0) {
                            orow[p].1.shift_up_from(cpos as u32);
                        }
                    }
                }
            }
        }
        ts
    }

    /// Remove a transaction, its edges, and all dependencies touching it;
    /// releases its slot (and the slot of any site left with no edges).
    pub fn remove_txn(&mut self, txn: GlobalTxnId) {
        let Some(ts) = self.txns.slot_of(&txn) else {
            return;
        };
        // Entries for other txns survive: removing `txn` deletes its walk
        // transitions (cycles can only vanish, validating `NoCycle`) and the
        // dependencies touching it (which only blocked transitions through
        // `txn` itself, so surviving `Cycle` witnesses stay dep-free).
        self.walk.borrow_mut().map.retain(|&slot, m| {
            slot != ts
                && match m {
                    WalkMemo::NoCycle => true,
                    WalkMemo::Cycle(w) => w.iter().all(|&(_, from, to)| from != ts && to != ts),
                }
        });
        // Outgoing dependencies: clear our bit in each target's inbound set.
        // Decrements are checked — a desynced bitset is counted, not a
        // scheduler panic (the debug assert pins the invariant in tests).
        let mut out = std::mem::take(&mut self.deps_out[ts as usize]);
        for (ss, afters) in &out {
            for apos in afters.iter() {
                // Columns are still intact here, so the stored position
                // resolves to the after-transaction's slot.
                let after = match self.site_txns[*ss as usize].get(apos as usize) {
                    Some(&(_, a)) => a,
                    None => {
                        debug_assert!(false, "dependency accounting desynced removing {txn}");
                        self.desync.set(self.desync.get() + 1);
                        continue;
                    }
                };
                let entry = self.deps_in[after as usize].iter_mut().find(|e| e.0 == *ss);
                if let Some(entry) = entry {
                    if entry.1.remove(ts) {
                        if self.incoming[after as usize] == 0 || self.dep_count == 0 {
                            debug_assert!(false, "dependency accounting desynced removing {txn}");
                            self.desync.set(self.desync.get() + 1);
                        } else {
                            self.incoming[after as usize] -= 1;
                            self.dep_count -= 1;
                        }
                    }
                }
            }
        }
        out.clear();
        self.deps_out[ts as usize] = out;
        // Incoming dependencies: drop our column position from each
        // source's mirror entry.
        let mut inrows = std::mem::take(&mut self.deps_in[ts as usize]);
        for (ss, befs) in &inrows {
            let tpos = self.site_txns[*ss as usize]
                .binary_search_by_key(&txn, |e| e.0)
                .ok();
            for b in befs.iter() {
                let row = &mut self.deps_out[b as usize];
                if let (Some(tpos), Ok(pos)) = (tpos, row.binary_search_by_key(ss, |e| e.0)) {
                    if row[pos].1.remove(tpos as u32) && row[pos].1.is_empty() {
                        row.remove(pos);
                    }
                }
                if self.dep_count == 0 {
                    debug_assert!(false, "dependency accounting desynced removing {txn}");
                    self.desync.set(self.desync.get() + 1);
                } else {
                    self.dep_count -= 1;
                }
            }
        }
        self.incoming[ts as usize] = 0;
        inrows.clear();
        self.deps_in[ts as usize] = inrows;
        // Edges; release site slots that end up edge-free (the reference
        // drops empty site nodes from `site_txns` the same way). Every
        // dependency touching `txn` is gone, so no member bitset holds the
        // vacated position and the hole can be shifted closed.
        let mut rows = std::mem::take(&mut self.txn_sites[ts as usize]);
        for &(site, ss) in &rows {
            let removed_at = {
                let col = &mut self.site_txns[ss as usize];
                match col.binary_search_by_key(&txn, |e| e.0) {
                    Ok(pos) => {
                        col.remove(pos);
                        (pos < col.len()).then_some(pos)
                    }
                    Err(_) => None,
                }
            };
            if let Some(pos) = removed_at {
                let Self {
                    site_txns,
                    deps_out,
                    ..
                } = &mut *self;
                for &(_, js) in &site_txns[ss as usize] {
                    let orow = &mut deps_out[js as usize];
                    if let Ok(p) = orow.binary_search_by_key(&ss, |e| e.0) {
                        orow[p].1.shift_down_from(pos as u32);
                    }
                }
            }
            if self.site_txns[ss as usize].is_empty() {
                self.sites.release(&site);
            }
        }
        rows.clear();
        self.txn_sites[ts as usize] = rows;
        self.txns.release(&txn);
        self.topo_remove_txn(ts);
    }

    /// Add a dependency. Debug-asserts both edges exist (like the
    /// reference); silently skips if an endpoint has no live slot, which can
    /// only happen on protocol-violating inputs.
    pub fn add_dep(&mut self, dep: Dep) {
        debug_assert!(self.has_edge(dep.before, dep.site), "dep on missing edge");
        debug_assert!(self.has_edge(dep.after, dep.site), "dep on missing edge");
        let (Some(ss), Some(bs), Some(asl)) = (
            self.sites.slot_of(&dep.site),
            self.txns.slot_of(&dep.before),
            self.txns.slot_of(&dep.after),
        ) else {
            return;
        };
        // The mirror stores the after-txn's *column position*; both debug
        // asserts above passed, so the column contains it.
        let Ok(apos) = self.site_txns[ss as usize].binary_search_by_key(&dep.after, |e| e.0) else {
            return;
        };
        let row = &mut self.deps_in[asl as usize];
        let pos = match row.binary_search_by_key(&ss, |e| e.0) {
            Ok(p) => p,
            Err(p) => {
                row.insert(p, (ss, DenseBitSet::new()));
                p
            }
        };
        if row[pos].1.insert(bs) {
            self.incoming[asl as usize] += 1;
            self.dep_count += 1;
            let orow = &mut self.deps_out[bs as usize];
            match orow.binary_search_by_key(&ss, |e| e.0) {
                Ok(p) => {
                    orow[p].1.insert(apos as u32);
                }
                Err(p) => {
                    let mut bits = DenseBitSet::new();
                    bits.insert(apos as u32);
                    orow.insert(p, (ss, bits));
                }
            }
            // The new dependency blocks exactly one walk transition: only
            // `Cycle` witnesses that used it are invalidated (`NoCycle`
            // memos stay valid — blocking can't create a cycle).
            self.walk.borrow_mut().map.retain(|_, m| match m {
                WalkMemo::NoCycle => true,
                WalkMemo::Cycle(w) => !w.contains(&(ss, bs, asl)),
            });
            let backlog = {
                let mut topo = self.topo.borrow_mut();
                topo.pending.push((ss, bs, asl));
                topo.delta_edges += 1;
                topo.pending.len()
            };
            if backlog >= TOPO_DRAIN_BATCH {
                self.ensure_topo_current();
            }
        }
    }

    /// True iff the dependency is present.
    pub fn has_dep(&self, site: SiteId, before: GlobalTxnId, after: GlobalTxnId) -> bool {
        let (Some(ss), Some(bs), Some(asl)) = (
            self.sites.slot_of(&site),
            self.txns.slot_of(&before),
            self.txns.slot_of(&after),
        ) else {
            return false;
        };
        self.has_dep_slots(ss, bs, asl)
    }

    /// *Column positions* of the after-txns of dependencies
    /// `(site, before → ·)`: the blocked set of one `Eliminate_Cycles` scan
    /// column in the column's own index space, resolved with a single
    /// binary search so the scan skips whole words at a time.
    #[inline]
    fn deps_after_at(&self, before: u32, site: u32) -> Option<&DenseBitSet> {
        let row = &self.deps_out[before as usize];
        row.binary_search_by_key(&site, |e| e.0)
            .ok()
            .map(|p| &row[p].1)
    }

    /// Visit the slot of every after-txn of `before`'s outgoing
    /// dependencies, translating stored column positions back to slots.
    fn for_each_after(&self, before: u32, mut f: impl FnMut(u32)) {
        for (ss, afters) in &self.deps_out[before as usize] {
            let col = &self.site_txns[*ss as usize];
            for apos in afters.iter() {
                if let Some(&(_, a)) = col.get(apos as usize) {
                    f(a);
                }
            }
        }
    }

    #[inline]
    fn has_dep_slots(&self, site: u32, before: u32, after: u32) -> bool {
        self.deps_in[after as usize]
            .binary_search_by_key(&site, |e| e.0)
            .is_ok_and(|p| self.deps_in[after as usize][p].1.contains(before))
    }

    /// True iff edge `(txn, site)` exists.
    pub fn has_edge(&self, txn: GlobalTxnId, site: SiteId) -> bool {
        self.txns.slot_of(&txn).is_some_and(|ts| {
            self.txn_sites[ts as usize]
                .binary_search_by_key(&site, |e| e.0)
                .is_ok()
        })
    }

    /// True iff the transaction node exists.
    pub fn contains_txn(&self, txn: GlobalTxnId) -> bool {
        self.txns.contains(&txn)
    }

    /// Slot of a live transaction.
    #[inline]
    pub fn txn_slot(&self, txn: GlobalTxnId) -> Option<u32> {
        self.txns.slot_of(&txn)
    }

    /// Slot of a live site (a site is live while it has at least one edge).
    #[inline]
    pub fn site_slot(&self, site: SiteId) -> Option<u32> {
        self.sites.slot_of(&site)
    }

    /// Transaction occupying `slot`.
    #[inline]
    pub fn txn_at_slot(&self, slot: u32) -> Option<GlobalTxnId> {
        self.txns.key_of(slot)
    }

    /// Site occupying `slot`.
    #[inline]
    pub fn site_at_slot(&self, slot: u32) -> Option<SiteId> {
        self.sites.key_of(slot)
    }

    /// Edges of the transaction in `slot`, sorted by site id.
    #[inline]
    pub fn sites_row(&self, slot: u32) -> &[(SiteId, u32)] {
        self.txn_sites
            .get(slot as usize)
            .map_or(&[][..], |v| v.as_slice())
    }

    /// Edges at the site in `slot`, sorted by transaction id.
    #[inline]
    pub fn txns_col(&self, slot: u32) -> &[(GlobalTxnId, u32)] {
        self.site_txns
            .get(slot as usize)
            .map_or(&[][..], |v| v.as_slice())
    }

    /// Sites of a transaction, in site-id order.
    pub fn sites_of(&self, txn: GlobalTxnId) -> impl Iterator<Item = SiteId> + '_ {
        self.txns
            .slot_of(&txn)
            .into_iter()
            .flat_map(|ts| self.sites_row(ts).iter().map(|e| e.0))
    }

    /// Transactions at a site, in txn-id order.
    pub fn txns_at(&self, site: SiteId) -> impl Iterator<Item = GlobalTxnId> + '_ {
        self.sites
            .slot_of(&site)
            .into_iter()
            .flat_map(|ss| self.txns_col(ss).iter().map(|e| e.0))
    }

    /// All live transactions in id order.
    pub fn txns(&self) -> impl Iterator<Item = GlobalTxnId> + '_ {
        self.txns.iter_sorted().map(|(k, _)| k)
    }

    /// Number of live transactions.
    #[inline]
    pub fn live_txn_count(&self) -> usize {
        self.txns.live()
    }

    /// Highest transaction slot count ever in use — the bound callers use
    /// to size their own txn-slot-indexed side tables.
    #[inline]
    pub fn txn_capacity(&self) -> usize {
        self.txns.capacity()
    }

    /// Highest site slot count ever in use (bound for site-slot-indexed
    /// side tables, e.g. [`EliminateScratch`]).
    #[inline]
    pub fn site_capacity(&self) -> usize {
        self.sites.capacity()
    }

    /// Number of dependencies.
    #[inline]
    pub fn dep_count(&self) -> usize {
        self.dep_count
    }

    /// Number of dependencies *into* `txn` — O(1), maintained.
    #[inline]
    pub fn incoming_deps(&self, txn: GlobalTxnId) -> usize {
        self.txns
            .slot_of(&txn)
            .map_or(0, |ts| self.incoming[ts as usize] as usize)
    }

    /// Before-slots of dependencies `(·, site) → (site, txn)`, if any are
    /// recorded. Cardinality is the reference `dep_preds(txn, site).len()`.
    pub fn preds_at(&self, txn: GlobalTxnId, site: SiteId) -> Option<&DenseBitSet> {
        let (Some(ts), Some(ss)) = (self.txns.slot_of(&txn), self.sites.slot_of(&site)) else {
            return None;
        };
        self.deps_in[ts as usize]
            .binary_search_by_key(&ss, |e| e.0)
            .ok()
            .map(|p| &self.deps_in[ts as usize][p].1)
    }

    /// The dependency set as paper-level [`Dep`]s (test/inspection only).
    pub fn deps_set(&self) -> BTreeSet<Dep> {
        let mut out = BTreeSet::new();
        for (before, row) in self.deps_out.iter().enumerate() {
            for (ss, afters) in row {
                for apos in afters.iter() {
                    let Some(&(after, _)) = self
                        .site_txns
                        .get(*ss as usize)
                        .and_then(|c| c.get(apos as usize))
                    else {
                        continue;
                    };
                    if let (Some(site), Some(b)) =
                        (self.sites.key_of(*ss), self.txns.key_of(before as u32))
                    {
                        out.insert(Dep {
                            site,
                            before: b,
                            after,
                        });
                    }
                }
            }
        }
        out
    }

    /// Times the reachability memo answered a cycle query without a walk.
    #[inline]
    pub fn reach_cache_hits(&self) -> u64 {
        self.reach_hits.get()
    }

    /// Total Δ-edge records batched into the online topological order (the
    /// `tsgd.delta_edges` metric).
    #[inline]
    pub fn delta_edges(&self) -> u64 {
        self.topo.borrow().delta_edges
    }

    /// Total nodes re-keyed by incremental order repairs (the
    /// `tsgd.topo_shift` metric). Drains the pending batch first so the
    /// reported figure covers every recorded edge.
    pub fn topo_shift(&self) -> u64 {
        self.ensure_topo_current();
        self.topo.borrow().topo_shift
    }

    /// Checked-decrement failures observed so far (see
    /// [`DenseTsgd::remove_txn`]).
    #[inline]
    pub fn desync_count(&self) -> u64 {
        self.desync.get()
    }

    /// Read and reset the desync counter — the kernel turns a non-zero
    /// return into a counted `ProtocolViolation` effect.
    #[inline]
    pub fn take_desync(&self) -> u64 {
        self.desync.replace(0)
    }

    /// Multi-member SCC groups of the dependency digraph, as id lists
    /// (drains the pending Δ-edge batch first). Empty on every valid
    /// Scheme 2 run: a dependency cycle implies a TSGD closed walk that
    /// `Eliminate_Cycles` would have broken.
    pub fn dep_groups(&self) -> Vec<Vec<GlobalTxnId>> {
        self.ensure_topo_current();
        let topo = self.topo.borrow();
        let mut out = Vec::new();
        for g in &topo.groups {
            if g.len() > 1 {
                let mut ids: Vec<GlobalTxnId> =
                    g.iter().filter_map(|&m| self.txns.key_of(m)).collect();
                ids.sort_unstable();
                out.push(ids);
            }
        }
        out.sort();
        out
    }

    /// True iff the maintained order is a valid topological order of the
    /// dependency digraph's condensation: every live dependency either
    /// stays inside one SCC group or points key-forward between two
    /// representatives. Drains the pending batch first. Test/validation
    /// grade.
    pub fn dep_order_consistent(&self) -> bool {
        self.ensure_topo_current();
        let topo = self.topo.borrow();
        for (_, slot) in self.txns.iter_sorted() {
            for (ss, afters) in &self.deps_out[slot as usize] {
                let col = &self.site_txns[*ss as usize];
                for apos in afters.iter() {
                    let Some(&(_, after)) = col.get(apos as usize) else {
                        return false;
                    };
                    let (ru, rv) = (topo.scc.root(slot), topo.scc.root(after));
                    if ru == rv {
                        continue;
                    }
                    let (Some(ku), Some(kv)) = (topo.order.key_of(ru), topo.order.key_of(rv))
                    else {
                        return false;
                    };
                    if ku >= kv {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Drain the batched Δ-edges into the online topological order. Each
    /// record is revalidated against the live dependency set before being
    /// applied, which makes records stale by deletion or slot recycling
    /// harmless: a triple that revalidates *is* a current dependency.
    pub fn ensure_topo_current(&self) {
        if self.topo.borrow().pending.is_empty() {
            return;
        }
        let mut guard = self.topo.borrow_mut();
        let topo = &mut *guard;
        let pending = std::mem::take(&mut topo.pending);
        for (ss, bs, asl) in pending {
            if !self.has_dep_slots(ss, bs, asl) {
                continue;
            }
            self.apply_topo_edge(topo, bs, asl);
        }
    }

    /// Apply one validated dependency edge to the order: Pearce–Kelly
    /// bounded-region repair on the representative digraph, with cycle
    /// regions collapsed into SCC groups.
    fn apply_topo_edge(&self, topo: &mut DepTopo, bs: u32, asl: u32) {
        let u = topo.scc.root(bs);
        let v = topo.scc.root(asl);
        if u == v {
            return;
        }
        let result = {
            let DepTopo {
                order,
                scc,
                group_id,
                groups,
                ..
            } = &mut *topo;
            let (scc, group_id, groups) = (&*scc, &*group_id, &*groups);
            order.add_edge(
                u,
                v,
                |n, buf| {
                    buf.clear();
                    let gid = group_id[n as usize];
                    if gid == u32::MAX {
                        self.for_each_after(n, |a| {
                            let r = scc.root(a);
                            if r != n {
                                buf.push(r);
                            }
                        });
                    } else {
                        for &m in &groups[gid as usize] {
                            self.for_each_after(m, |a| {
                                let r = scc.root(a);
                                if r != n {
                                    buf.push(r);
                                }
                            });
                        }
                    }
                },
                |n, buf| {
                    buf.clear();
                    let gid = group_id[n as usize];
                    if gid == u32::MAX {
                        for (_, befs) in &self.deps_in[n as usize] {
                            for b in befs.iter() {
                                let r = scc.root(b);
                                if r != n {
                                    buf.push(r);
                                }
                            }
                        }
                    } else {
                        for &m in &groups[gid as usize] {
                            for (_, befs) in &self.deps_in[m as usize] {
                                for b in befs.iter() {
                                    let r = scc.root(b);
                                    if r != n {
                                        buf.push(r);
                                    }
                                }
                            }
                        }
                    }
                },
            )
        };
        match result {
            TopoResult::Ordered { shifted } => topo.topo_shift += shifted as u64,
            TopoResult::Cycle { region } => {
                Self::merge_reps(&mut topo.scc, &mut topo.group_id, &mut topo.groups, &region);
                self.rebuild_topo_order(topo);
            }
        }
    }

    /// Collapse the given representatives (and any groups they head) into
    /// one SCC group. Caller repairs the order afterwards.
    fn merge_reps(
        scc: &mut UnionFind,
        group_id: &mut [u32],
        groups: &mut Vec<Vec<u32>>,
        reps: &[u32],
    ) {
        let mut members: Vec<u32> = Vec::new();
        for &r in reps {
            let gid = group_id[r as usize];
            if gid == u32::MAX {
                members.push(r);
            } else {
                members.append(&mut groups[gid as usize]);
            }
        }
        members.sort_unstable();
        members.dedup();
        if members.len() <= 1 {
            for &m in &members {
                group_id[m as usize] = u32::MAX;
            }
            return;
        }
        for i in 1..members.len() {
            scc.union(members[0], members[i]);
        }
        let gid = groups.len() as u32;
        for &m in &members {
            group_id[m as usize] = gid;
        }
        groups.push(members);
    }

    /// Full-rebuild fallback: recompute the representative digraph from the
    /// live dependency set, collapse any remaining multi-node SCCs, and
    /// renumber the order along the condensation. Only reached when a
    /// dependency cycle was found — never on a valid Scheme 2 run.
    fn rebuild_topo_order(&self, topo: &mut DepTopo) {
        let mut g: DiGraph<u32> = DiGraph::new();
        for (_, slot) in self.txns.iter_sorted() {
            g.add_node(topo.scc.root(slot));
        }
        for (_, slot) in self.txns.iter_sorted() {
            let ru = topo.scc.root(slot);
            let scc = &topo.scc;
            self.for_each_after(slot, |a| {
                let ra = scc.root(a);
                if ru != ra {
                    g.add_edge(ru, ra);
                }
            });
        }
        // `sccs()` is Tarjan in reverse topological order of the
        // condensation; collapsing multi-node components here folds in any
        // cycles closed by edges batched after the one that tripped us.
        let comps = g.sccs();
        let mut order_list: Vec<u32> = Vec::with_capacity(comps.len());
        for comp in comps.iter().rev() {
            if comp.len() > 1 {
                Self::merge_reps(&mut topo.scc, &mut topo.group_id, &mut topo.groups, comp);
            }
            order_list.push(topo.scc.root(comp[0]));
        }
        topo.order.renumber(&order_list);
        topo.topo_shift += order_list.len() as u64;
    }

    /// Order upkeep for a removed transaction. A singleton leaves in O(1)
    /// (deletions never invalidate a topological order); a group member
    /// dissolves its group — re-rooting the union-find members back to
    /// singletons — and the survivors are re-formed by a rebuild, since the
    /// SCC may have split into several components.
    fn topo_remove_txn(&self, ts: u32) {
        let mut guard = self.topo.borrow_mut();
        let topo = &mut *guard;
        let gid = topo.group_id.get(ts as usize).copied().unwrap_or(u32::MAX);
        if gid == u32::MAX {
            topo.order.remove(ts);
            return;
        }
        let rep = topo.scc.root(ts);
        topo.order.remove(rep);
        let members = std::mem::take(&mut topo.groups[gid as usize]);
        for &m in &members {
            topo.group_id[m as usize] = u32::MAX;
        }
        topo.scc.reroot(&members);
        self.rebuild_topo_order(topo);
    }

    fn extra_slots(&self, extra: &BTreeSet<Dep>) -> BTreeSet<(u32, u32, u32)> {
        extra
            .iter()
            .filter_map(|d| {
                Some((
                    self.sites.slot_of(&d.site)?,
                    self.txns.slot_of(&d.before)?,
                    self.txns.slot_of(&d.after)?,
                ))
            })
            .collect()
    }

    /// Polynomial closed-walk check: true iff a dependency-free alternating
    /// walk leaves `start`, never re-uses its arrival site on the next hop,
    /// and returns to `start`. Every cycle in the paper's sense induces such
    /// a walk (all its nodes are distinct), so `oracle ⟹ walk` — the walk
    /// may additionally accept non-simple closed walks, which callers filter
    /// with [`DenseTsgd::has_cycle_involving_oracle`].
    ///
    /// State space is (txn slot, arrival-site slot): O(n·m) states, each
    /// expanded once — polynomial, unlike the oracle's exponential DFS.
    pub fn closed_walk_involving(&self, start: GlobalTxnId, extra: &BTreeSet<Dep>) -> bool {
        let Some(start_slot) = self.txns.slot_of(&start) else {
            return false;
        };
        let extra = self.extra_slots(extra);
        self.closed_walk_from(start_slot, &extra)
    }

    fn closed_walk_from(&self, start: u32, extra: &BTreeSet<(u32, u32, u32)>) -> bool {
        let blocked = |site: u32, before: u32, after: u32| {
            self.has_dep_slots(site, before, after) || extra.contains(&(site, before, after))
        };
        // visited[txn slot] = set of arrival-site slots already expanded.
        let mut visited: Vec<DenseBitSet> = vec![DenseBitSet::new(); self.txns.capacity()];
        let mut stack: Vec<(u32, u32)> = Vec::new();
        for &(_, us) in self.sites_row(start) {
            for &(_, ws) in self.txns_col(us) {
                if ws == start || blocked(us, start, ws) {
                    continue;
                }
                if visited[ws as usize].insert(us) {
                    stack.push((ws, us));
                }
            }
        }
        while let Some((v, arrived)) = stack.pop() {
            for &(_, us) in self.sites_row(v) {
                if us == arrived {
                    continue;
                }
                for &(_, ws) in self.txns_col(us) {
                    if ws == v || blocked(us, v, ws) {
                        continue;
                    }
                    if ws == start {
                        return true;
                    }
                    if visited[ws as usize].insert(us) {
                        stack.push((ws, us));
                    }
                }
            }
        }
        false
    }

    /// Memoized closed-walk query against the *current* dependency set.
    /// Entries are invalidated per-witness by the mutation that breaks them
    /// (see [`WalkMemo`]) instead of wholesale on every structure change;
    /// hits are counted for the `tsgd.reach_cache_hit` metric.
    pub fn has_cycle_involving_cached(&self, txn: GlobalTxnId) -> bool {
        let Some(ts) = self.txns.slot_of(&txn) else {
            return false;
        };
        {
            let cache = self.walk.borrow();
            if let Some(memo) = cache.map.get(&ts) {
                self.reach_hits.set(self.reach_hits.get() + 1);
                return matches!(memo, WalkMemo::Cycle(_));
            }
        }
        let witness = self.closed_walk_witness(ts);
        let found = witness.is_some();
        self.walk.borrow_mut().map.insert(
            ts,
            match witness {
                Some(w) => WalkMemo::Cycle(w),
                None => WalkMemo::NoCycle,
            },
        );
        found
    }

    /// [`DenseTsgd::closed_walk_from`] with parent tracking: returns the
    /// transitions `(site, from, to)` of a dependency-free closed walk
    /// through `start`, if one exists — the invalidation witness stored by
    /// [`DenseTsgd::has_cycle_involving_cached`].
    fn closed_walk_witness(&self, start: u32) -> Option<Vec<(u32, u32, u32)>> {
        let blocked = |site: u32, before: u32, after: u32| self.has_dep_slots(site, before, after);
        let mut visited: Vec<DenseBitSet> = vec![DenseBitSet::new(); self.txns.capacity()];
        let mut parent: BTreeMap<(u32, u32), (u32, u32)> = BTreeMap::new();
        let mut stack: Vec<(u32, u32)> = Vec::new();
        for &(_, us) in self.sites_row(start) {
            for &(_, ws) in self.txns_col(us) {
                if ws == start || blocked(us, start, ws) {
                    continue;
                }
                if visited[ws as usize].insert(us) {
                    stack.push((ws, us));
                }
            }
        }
        while let Some((v, arrived)) = stack.pop() {
            for &(_, us) in self.sites_row(v) {
                if us == arrived {
                    continue;
                }
                for &(_, ws) in self.txns_col(us) {
                    if ws == v || blocked(us, v, ws) {
                        continue;
                    }
                    if ws == start {
                        let mut trail = vec![(us, v, start)];
                        let mut cur = (v, arrived);
                        loop {
                            let (txn, a) = cur;
                            match parent.get(&cur) {
                                Some(&prev) => {
                                    trail.push((a, prev.0, txn));
                                    cur = prev;
                                }
                                None => {
                                    trail.push((a, start, txn));
                                    break;
                                }
                            }
                        }
                        trail.reverse();
                        return Some(trail);
                    }
                    if visited[ws as usize].insert(us) {
                        parent.insert((ws, us), (v, arrived));
                        stack.push((ws, us));
                    }
                }
            }
        }
        None
    }

    /// Exponential DFS oracle — a direct port of
    /// [`crate::tsgd::Tsgd::has_cycle_involving`] onto the dense storage,
    /// visiting neighbours in the same id order. Test/validation grade.
    pub fn has_cycle_involving_oracle(&self, start: GlobalTxnId, extra: &BTreeSet<Dep>) -> bool {
        let Some(start_slot) = self.txns.slot_of(&start) else {
            return false;
        };
        let extra = self.extra_slots(extra);
        let mut seen_txns = BTreeSet::from([start_slot]);
        let mut seen_sites = BTreeSet::new();
        self.oracle_dfs(
            start_slot,
            start_slot,
            &extra,
            &mut seen_txns,
            &mut seen_sites,
            0,
        )
    }

    fn oracle_dfs(
        &self,
        start: u32,
        at: u32,
        extra: &BTreeSet<(u32, u32, u32)>,
        seen_txns: &mut BTreeSet<u32>,
        seen_sites: &mut BTreeSet<u32>,
        depth: usize,
    ) -> bool {
        for &(_, site) in self.sites_row(at) {
            if seen_sites.contains(&site) {
                continue;
            }
            for &(_, next) in self.txns_col(site) {
                if next == at {
                    continue;
                }
                if self.has_dep_slots(site, at, next) || extra.contains(&(site, at, next)) {
                    continue;
                }
                if next == start {
                    if depth >= 1 {
                        return true;
                    }
                    continue;
                }
                if seen_txns.contains(&next) {
                    continue;
                }
                seen_txns.insert(next);
                seen_sites.insert(site);
                if self.oracle_dfs(start, next, extra, seen_txns, seen_sites, depth + 1) {
                    return true;
                }
                seen_sites.remove(&site);
                seen_txns.remove(&next);
            }
        }
        false
    }

    /// True iff any cycle exists, by the exponential oracle.
    pub fn has_any_cycle_oracle(&self) -> bool {
        let none = BTreeSet::new();
        self.txns()
            .collect::<Vec<_>>()
            .into_iter()
            .any(|t| self.has_cycle_involving_oracle(t, &none))
    }
}

/// Figure 4 (`Eliminate_Cycles`) over the dense storage — returns the same
/// `Δ` and charges `steps` **tick-for-tick identically** to
/// [`crate::tsgd::eliminate_cycles`]: adjacency vectors are id-sorted, so
/// the traversal examines candidate edges in the reference order.
///
/// This is the full-rescan variant, kept as the second oracle (the
/// `dense-memo` kernel) for [`eliminate_cycles_dense_with`], which computes
/// the same answer with revisit scans amortized to O(1).
// mdbs-lint: allow(no-panic-in-scheduler, scope=item) — slot indices come from the interner and adjacency rows are grown at insert_txn; prop_tsgd + kernel_equivalence pin the invariant against the reference Tsgd.
pub fn eliminate_cycles_dense(
    tsgd: &DenseTsgd,
    gi: GlobalTxnId,
    steps: &mut StepCounter,
) -> BTreeSet<Dep> {
    let mut delta: BTreeSet<Dep> = BTreeSet::new();
    let Some(gslot) = tsgd.txn_slot(gi) else {
        // Reference behaviour for an absent gi: one outer tick, empty Δ.
        steps.tick(StepKind::Act);
        return delta;
    };
    let mut used: BTreeSet<(u32, u32)> = BTreeSet::new();
    let mut s_par: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
    let mut t_par: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
    // Δ only ever contains deps with after = gi, so membership is a pair.
    let mut delta_pairs: BTreeSet<(u32, u32)> = BTreeSet::new();
    let mut v = gslot;

    loop {
        steps.tick(StepKind::Act);
        let arrived_via = s_par.get(&v).and_then(|l| l.first().copied());
        let mut chosen: Option<(u32, u32)> = None;
        'search: for &(_, us) in tsgd.sites_row(v) {
            if arrived_via == Some(us) {
                continue;
            }
            for &(_, ws) in tsgd.txns_col(us) {
                steps.tick(StepKind::Act);
                if ws == v {
                    continue;
                }
                if ws != gslot && used.contains(&(us, ws)) {
                    continue;
                }
                if tsgd.has_dep_slots(us, v, ws) || (ws == gslot && delta_pairs.contains(&(us, v)))
                {
                    continue;
                }
                chosen = Some((us, ws));
                break 'search;
            }
        }
        match chosen {
            Some((us, ws)) => {
                used.insert((us, ws));
                if ws == gslot {
                    delta_pairs.insert((us, v));
                    // mdbs-lint: allow(no-panic-in-scheduler) — slots on the current traversal path are live by construction.
                    let site = tsgd.site_at_slot(us).expect("live site slot");
                    // mdbs-lint: allow(no-panic-in-scheduler) — v is a live node on the traversal path.
                    let before = tsgd.txn_at_slot(v).expect("live txn slot");
                    delta.insert(Dep {
                        site,
                        before,
                        after: gi,
                    });
                } else {
                    s_par.entry(ws).or_default().insert(0, us);
                    t_par.entry(ws).or_default().insert(0, v);
                    v = ws;
                }
            }
            None => {
                if v == gslot {
                    break;
                }
                // mdbs-lint: allow(no-panic-in-scheduler) — the backtracking search records s_par/t_par together before descending, so a visited node always has both.
                let tp = t_par.get_mut(&v).expect("visited node has parents");
                let temp = tp.remove(0);
                // mdbs-lint: allow(no-panic-in-scheduler) — s_par and t_par are updated in lockstep above.
                s_par.get_mut(&v).expect("parents in sync").remove(0);
                v = temp;
            }
        }
    }
    delta
}

/// Per-visit scan position for one `(node, arrival-site)` state of the
/// Figure 4 traversal: the next candidate to examine and the abstract ticks
/// already charged for the (permanently skipped) prefix before it.
#[derive(Clone, Copy, Debug, Default)]
struct ScanCursor {
    site_idx: u32,
    txn_idx: u32,
    charged: u64,
}

/// Reusable scratch for [`eliminate_cycles_dense_with`]: the traversal's
/// `used`/Δ sets, parent stacks, and scan cursors, all slot-indexed and
/// epoch-stamped so a new call costs O(1) to "clear" and the hot loop
/// allocates nothing after warm-up.
#[derive(Clone, Debug, Default)]
pub struct EliminateScratch {
    epoch: u64,
    /// Site slot → *column positions* of successors already used (`used`
    /// set of Figure 4). Position space is stable for the whole call: the
    /// TSGD is borrowed shared, so no column mutates underneath.
    used: Vec<(u64, DenseBitSet)>,
    /// Site slot → `before` slots with a Δ-dependency into `gi`.
    delta_sites: Vec<(u64, DenseBitSet)>,
    /// Txn slot → arrival-site stack (reference `s_par`, back = newest).
    s_par: Vec<(u64, Vec<u32>)>,
    /// Txn slot → parent-txn stack (reference `t_par`, back = newest).
    t_par: Vec<(u64, Vec<u32>)>,
    /// Txn slot → cursors keyed by arrival site (`u32::MAX` = none).
    cursors: Vec<(u64, Vec<(u32, ScanCursor)>)>,
}

impl EliminateScratch {
    /// Fresh scratch (grows lazily to the TSGD's slot capacities).
    pub fn new() -> Self {
        Self::default()
    }

    fn begin(&mut self, txn_cap: usize, site_cap: usize) {
        self.epoch += 1;
        if self.used.len() < site_cap {
            self.used.resize_with(site_cap, Default::default);
            self.delta_sites.resize_with(site_cap, Default::default);
        }
        if self.s_par.len() < txn_cap {
            self.s_par.resize_with(txn_cap, Default::default);
            self.t_par.resize_with(txn_cap, Default::default);
            self.cursors.resize_with(txn_cap, Default::default);
        }
    }
}

// mdbs-lint: allow(no-panic-in-scheduler, scope=item) — callers index with slots below the capacities EliminateScratch::begin sized the rows to.
#[inline]
fn stamp_bitset(vec: &mut [(u64, DenseBitSet)], idx: u32, epoch: u64) -> &mut DenseBitSet {
    let e = &mut vec[idx as usize];
    if e.0 != epoch {
        e.0 = epoch;
        e.1.clear();
    }
    &mut e.1
}

// mdbs-lint: allow(no-panic-in-scheduler, scope=item) — callers index with slots below the capacities EliminateScratch::begin sized the rows to.
#[inline]
fn stamp_list(vec: &mut [(u64, Vec<u32>)], idx: u32, epoch: u64) -> &mut Vec<u32> {
    let e = &mut vec[idx as usize];
    if e.0 != epoch {
        e.0 = epoch;
        e.1.clear();
    }
    &mut e.1
}

// mdbs-lint: allow(no-panic-in-scheduler, scope=item) — callers index with slots below the capacities EliminateScratch::begin sized the rows to.
#[inline]
fn stamped_bit(vec: &[(u64, DenseBitSet)], idx: u32, bit: u32, epoch: u64) -> bool {
    let e = &vec[idx as usize];
    e.0 == epoch && e.1.contains(bit)
}

/// Cursor-amortized Figure 4: same Δ and **identical step charges** as
/// [`eliminate_cycles_dense`] / [`crate::tsgd::eliminate_cycles`], but the
/// *machine* cost of a revisit is O(1) instead of a rescan.
///
/// Within one call every skip condition of the candidate scan is monotone —
/// `ws == v` is fixed, `used` and the Δ set only grow, and the dependency
/// set cannot change through the shared borrow — and a chosen candidate
/// becomes skippable immediately after its choice (it enters `used`, or the
/// Δ set when `ws = gi`). So when the walk re-enters a `(node,
/// arrival-site)` state, the reference scan would re-examine a prefix of
/// permanently skipped candidates, charging one tick each and skipping the
/// arrival-site column without ticks: a per-state [`ScanCursor`] replays
/// that prefix as a single `bump(charged)` and resumes the scan at the
/// first never-examined candidate. Totals stay bit-for-bit equal while the
/// machine work collapses to the number of *distinct* candidate
/// examinations.
// mdbs-lint: allow(no-panic-in-scheduler, scope=item) — slot indices come from the interner and scratch rows are sized from the TSGD capacities in begin(); kernel_equivalence pins parity against the reference Tsgd.
pub fn eliminate_cycles_dense_with(
    tsgd: &DenseTsgd,
    gi: GlobalTxnId,
    steps: &mut StepCounter,
    scratch: &mut EliminateScratch,
) -> BTreeSet<Dep> {
    let mut delta: BTreeSet<Dep> = BTreeSet::new();
    let Some(gslot) = tsgd.txn_slot(gi) else {
        // Reference behaviour for an absent gi: one outer tick, empty Δ.
        steps.tick(StepKind::Act);
        return delta;
    };
    scratch.begin(tsgd.txn_capacity(), tsgd.site_capacity());
    let epoch = scratch.epoch;
    let mut v = gslot;

    loop {
        steps.tick(StepKind::Act);
        // Most recent arrival site of `v` (`u32::MAX` when none) — the
        // reference's `s_par.get(&v).first()`.
        let arrived = match scratch.s_par.get(v as usize) {
            Some((e, list)) if *e == epoch => list.last().copied().unwrap_or(u32::MAX),
            _ => u32::MAX,
        };
        let cur_idx;
        let mut cur;
        {
            let ent = &mut scratch.cursors[v as usize];
            if ent.0 != epoch {
                ent.0 = epoch;
                ent.1.clear();
            }
            cur_idx = match ent.1.iter().position(|c| c.0 == arrived) {
                Some(i) => i,
                None => {
                    ent.1.push((arrived, ScanCursor::default()));
                    ent.1.len() - 1
                }
            };
            cur = ent.1[cur_idx].1;
        }
        // Replay the permanently-skipped prefix in O(1).
        steps.bump(StepKind::Act, cur.charged);
        let row = tsgd.sites_row(v);
        let v_id = tsgd.txn_at_slot(v).expect("live txn slot");
        let mut si = cur.site_idx as usize;
        let mut ti = cur.txn_idx as usize;
        let mut chosen: Option<(u32, u32, u32)> = None;
        // Ticks for this scan segment, bumped in one O(1) call at the end
        // (arithmetically identical to the reference's per-candidate tick).
        let mut seen = 0u64;
        // Each skip condition of the per-candidate scan is a bit in the
        // column's position space — `used` and the blocked set are stored
        // that way, `ws == v` and the Δ test pin one position each — so a
        // column scan is a word-parallel find-first-clear over the OR of
        // the skip masks, with ticks recovered from position arithmetic.
        'search: while si < row.len() {
            let us = row[si].1;
            if us == arrived {
                si += 1;
                ti = 0;
                continue;
            }
            let col = tsgd.txns_col(us);
            let col_len = col.len();
            if ti >= col_len {
                si += 1;
                ti = 0;
                continue;
            }
            let blocked = tsgd.deps_after_at(v, us).map_or(&[][..], |b| b.as_words());
            let used = match &scratch.used[us as usize] {
                (e, b) if *e == epoch => b.as_words(),
                _ => &[][..],
            };
            // `v` is always a member of its own site's column; a failed
            // lookup leaves the bit unset, matching the reference (which
            // would then simply never see `ws == v`).
            let posv = col
                .binary_search_by_key(&v_id, |e| e.0)
                .unwrap_or(usize::MAX);
            let gpos = col.binary_search_by_key(&gi, |e| e.0).ok();
            let delta_blocked = gpos.is_some() && stamped_bit(&scratch.delta_sites, us, v, epoch);
            let first_w = ti / 64;
            let last_w = (col_len - 1) / 64;
            let mut found = None;
            let mut w = first_w;
            while w <= last_w {
                let used_w = used.get(w).copied().unwrap_or(0);
                let blocked_w = blocked.get(w).copied().unwrap_or(0);
                // `used` never skips the gi candidate; the Δ test only
                // applies to it; `blocked` applies to everyone.
                let mut skip = match gpos {
                    Some(g) if g / 64 == w => {
                        let gbit = 1u64 << (g % 64);
                        (used_w & !gbit) | blocked_w | if delta_blocked { gbit } else { 0 }
                    }
                    _ => used_w | blocked_w,
                };
                if posv / 64 == w {
                    skip |= 1u64 << (posv % 64);
                }
                let mut cand = !skip;
                if w == first_w {
                    cand &= !0u64 << (ti % 64);
                }
                if w == last_w && !col_len.is_multiple_of(64) {
                    cand &= (1u64 << (col_len % 64)) - 1;
                }
                if cand != 0 {
                    found = Some(w * 64 + cand.trailing_zeros() as usize);
                    break;
                }
                w += 1;
            }
            match found {
                Some(q) => {
                    seen += (q - ti) as u64 + 1;
                    ti = q + 1;
                    chosen = Some((us, q as u32, col[q].1));
                    break 'search;
                }
                None => {
                    seen += (col_len - ti) as u64;
                    si += 1;
                    ti = 0;
                }
            }
        }
        steps.bump(StepKind::Act, seen);
        cur.charged += seen;
        cur.site_idx = si as u32;
        cur.txn_idx = ti as u32;
        scratch.cursors[v as usize].1[cur_idx].1 = cur;
        match chosen {
            Some((us, q, ws)) => {
                stamp_bitset(&mut scratch.used, us, epoch).insert(q);
                if ws == gslot {
                    stamp_bitset(&mut scratch.delta_sites, us, epoch).insert(v);
                    // mdbs-lint: allow(no-panic-in-scheduler) — slots on the current traversal path are live by construction.
                    let site = tsgd.site_at_slot(us).expect("live site slot");
                    // mdbs-lint: allow(no-panic-in-scheduler) — v is a live node on the traversal path.
                    let before = tsgd.txn_at_slot(v).expect("live txn slot");
                    delta.insert(Dep {
                        site,
                        before,
                        after: gi,
                    });
                } else {
                    stamp_list(&mut scratch.s_par, ws, epoch).push(us);
                    stamp_list(&mut scratch.t_par, ws, epoch).push(v);
                    v = ws;
                }
            }
            None => {
                if v == gslot {
                    break;
                }
                let temp = stamp_list(&mut scratch.t_par, v, epoch)
                    .pop()
                    .expect("visited node has parents");
                stamp_list(&mut scratch.s_par, v, epoch)
                    .pop()
                    .expect("parents in sync");
                v = temp;
            }
        }
    }
    delta
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tsgd::{eliminate_cycles, Tsgd};

    fn g(i: u64) -> GlobalTxnId {
        GlobalTxnId(i)
    }
    fn s(i: u32) -> SiteId {
        SiteId(i)
    }
    fn dep(k: u32, a: u64, b: u64) -> Dep {
        Dep {
            site: s(k),
            before: g(a),
            after: g(b),
        }
    }

    fn two_txn_cycle() -> DenseTsgd {
        let mut t = DenseTsgd::new();
        t.insert_txn(g(1), &[s(0), s(1)]);
        t.insert_txn(g(2), &[s(0), s(1)]);
        t
    }

    #[test]
    fn undetermined_orders_cycle() {
        let t = two_txn_cycle();
        assert!(t.has_cycle_involving_oracle(g(1), &BTreeSet::new()));
        assert!(t.has_cycle_involving_oracle(g(2), &BTreeSet::new()));
        assert!(t.closed_walk_involving(g(1), &BTreeSet::new()));
        assert!(t.has_any_cycle_oracle());
    }

    #[test]
    fn consistent_dependencies_break_cycle() {
        let mut t = two_txn_cycle();
        t.add_dep(dep(0, 1, 2));
        t.add_dep(dep(1, 1, 2));
        assert!(!t.has_any_cycle_oracle());
        assert!(!t.closed_walk_involving(g(1), &BTreeSet::new()));
        assert!(!t.closed_walk_involving(g(2), &BTreeSet::new()));
        assert_eq!(t.dep_count(), 2);
        assert_eq!(t.incoming_deps(g(2)), 2);
        assert_eq!(t.preds_at(g(2), s(0)).map(|b| b.len()), Some(1));
    }

    #[test]
    fn opposite_dependencies_are_a_real_cycle() {
        let mut t = two_txn_cycle();
        t.add_dep(dep(0, 1, 2));
        t.add_dep(dep(1, 2, 1));
        assert!(t.has_any_cycle_oracle());
        assert!(t.closed_walk_involving(g(1), &BTreeSet::new()));
    }

    #[test]
    fn walk_is_implied_by_oracle_on_ring() {
        let mut t = DenseTsgd::new();
        t.insert_txn(g(1), &[s(0), s(1)]);
        t.insert_txn(g(2), &[s(1), s(2)]);
        t.insert_txn(g(3), &[s(2), s(0)]);
        assert!(t.has_cycle_involving_oracle(g(2), &BTreeSet::new()));
        assert!(t.closed_walk_involving(g(2), &BTreeSet::new()));
    }

    #[test]
    fn eliminate_cycles_matches_reference_delta_and_steps() {
        // Mirror the same structure into both implementations and compare
        // Δ and the exact step charge.
        let mut reference = Tsgd::new();
        let mut dense = DenseTsgd::new();
        let txns: &[(u64, &[u32])] = &[
            (1, &[0, 1, 2]),
            (2, &[0, 1]),
            (3, &[1, 2]),
            (4, &[0, 2]),
            (5, &[0, 1, 2]),
        ];
        for &(t, ss) in txns {
            let sites: Vec<SiteId> = ss.iter().map(|&k| s(k)).collect();
            reference.insert_txn(g(t), &sites);
            dense.insert_txn(g(t), &sites);
        }
        for d in [dep(0, 1, 2), dep(1, 2, 3)] {
            reference.add_dep(d);
            dense.add_dep(d);
        }
        let mut steps_ref = StepCounter::new();
        let mut steps_dense = StepCounter::new();
        let delta_ref = eliminate_cycles(&reference, g(5), &mut steps_ref);
        let delta_dense = eliminate_cycles_dense(&dense, g(5), &mut steps_dense);
        assert_eq!(delta_ref, delta_dense);
        assert_eq!(steps_ref, steps_dense);
        assert!(!reference.has_cycle_involving(g(5), &delta_ref));
        assert!(!dense.has_cycle_involving_oracle(g(5), &delta_dense));
    }

    #[test]
    fn eliminate_cycles_missing_txn_is_one_tick() {
        let dense = DenseTsgd::new();
        let mut steps = StepCounter::new();
        assert!(eliminate_cycles_dense(&dense, g(9), &mut steps).is_empty());
        assert_eq!(steps.act, 1);
    }

    #[test]
    fn remove_txn_drops_deps_and_recycles_slots() {
        let mut t = two_txn_cycle();
        t.add_dep(dep(0, 1, 2));
        let old_slot = t.txn_slot(g(1)).unwrap();
        t.remove_txn(g(1));
        assert_eq!(t.dep_count(), 0);
        assert_eq!(t.incoming_deps(g(2)), 0);
        assert!(!t.contains_txn(g(1)));
        assert!(!t.has_any_cycle_oracle());
        // The freed slot is recycled and must carry no stale state.
        let new_slot = t.insert_txn(g(7), &[s(0), s(1)]);
        assert_eq!(new_slot, old_slot);
        assert_eq!(t.incoming_deps(g(7)), 0);
        assert!(t.preds_at(g(7), s(0)).is_none());
        // G7 and G2 now share two undetermined sites: a fresh cycle.
        assert!(t.has_cycle_involving_oracle(g(7), &BTreeSet::new()));
    }

    #[test]
    fn site_slots_release_when_edge_free() {
        let mut t = DenseTsgd::new();
        t.insert_txn(g(1), &[s(5)]);
        assert!(t.site_slot(s(5)).is_some());
        t.remove_txn(g(1));
        assert!(t.site_slot(s(5)).is_none());
        assert_eq!(t.txns_at(s(5)).count(), 0);
    }

    #[test]
    fn reach_cache_hits_count() {
        let t = two_txn_cycle();
        assert!(t.has_cycle_involving_cached(g(1)));
        assert_eq!(t.reach_cache_hits(), 0);
        assert!(t.has_cycle_involving_cached(g(1)));
        assert_eq!(t.reach_cache_hits(), 1);
    }

    #[test]
    fn cache_invalidates_on_mutation() {
        let mut t = two_txn_cycle();
        assert!(t.has_cycle_involving_cached(g(1)));
        t.add_dep(dep(0, 1, 2));
        t.add_dep(dep(1, 1, 2));
        assert!(!t.has_cycle_involving_cached(g(1)), "fresh walk after bump");
    }

    #[test]
    fn cycle_witness_survives_unrelated_mutation() {
        let mut t = two_txn_cycle();
        assert!(t.has_cycle_involving_cached(g(1)));
        // A new txn only adds walk transitions: the Cycle witness for G1 is
        // untouched and the next query is a hit, not a recomputation.
        t.insert_txn(g(3), &[s(7)]);
        let hits = t.reach_cache_hits();
        assert!(t.has_cycle_involving_cached(g(1)));
        assert_eq!(t.reach_cache_hits(), hits + 1, "witness kept across insert");
        // Removing the unrelated txn keeps it too.
        t.remove_txn(g(3));
        assert!(t.has_cycle_involving_cached(g(1)));
        assert_eq!(t.reach_cache_hits(), hits + 2, "witness kept across remove");
    }

    #[test]
    fn cursor_eliminate_matches_rescan_and_reference() {
        let mut reference = Tsgd::new();
        let mut dense = DenseTsgd::new();
        let txns: &[(u64, &[u32])] = &[
            (1, &[0, 1, 2]),
            (2, &[0, 1]),
            (3, &[1, 2]),
            (4, &[0, 2]),
            (5, &[0, 1, 2]),
        ];
        for &(t, ss) in txns {
            let sites: Vec<SiteId> = ss.iter().map(|&k| s(k)).collect();
            reference.insert_txn(g(t), &sites);
            dense.insert_txn(g(t), &sites);
        }
        for d in [dep(0, 1, 2), dep(1, 2, 3)] {
            reference.add_dep(d);
            dense.add_dep(d);
        }
        let mut scratch = EliminateScratch::new();
        // Several rounds through one scratch: epoch stamping must isolate
        // calls, and charges must equal the reference every time.
        for target in [5u64, 1, 4] {
            let mut steps_ref = StepCounter::new();
            let mut steps_cur = StepCounter::new();
            let delta_ref = eliminate_cycles(&reference, g(target), &mut steps_ref);
            let delta_cur =
                eliminate_cycles_dense_with(&dense, g(target), &mut steps_cur, &mut scratch);
            assert_eq!(delta_ref, delta_cur, "Δ diverged for G{target}");
            assert_eq!(steps_ref, steps_cur, "steps diverged for G{target}");
        }
        // Absent-txn path: one outer tick, like the reference.
        let mut steps = StepCounter::new();
        assert!(eliminate_cycles_dense_with(&dense, g(9), &mut steps, &mut scratch).is_empty());
        assert_eq!(steps.act, 1);
    }

    #[test]
    fn forward_deps_keep_topo_consistent_without_shifts() {
        let mut t = DenseTsgd::new();
        t.insert_txn(g(1), &[s(0), s(1)]);
        t.insert_txn(g(2), &[s(0), s(1)]);
        t.insert_txn(g(3), &[s(1)]);
        t.add_dep(dep(0, 1, 2));
        t.add_dep(dep(1, 1, 2));
        t.add_dep(dep(1, 2, 3));
        assert_eq!(t.delta_edges(), 3);
        assert!(t.dep_order_consistent());
        assert!(t.dep_groups().is_empty());
        // Insertion-ordered dependencies point key-forward: no repairs.
        assert_eq!(t.topo_shift(), 0);
        assert_eq!(t.take_desync(), 0);
    }

    #[test]
    fn opposite_deps_collapse_into_group_and_split_on_removal() {
        let mut t = two_txn_cycle();
        t.add_dep(dep(0, 1, 2));
        t.add_dep(dep(1, 2, 1));
        assert_eq!(
            t.dep_groups(),
            vec![vec![g(1), g(2)]],
            "dep cycle collapsed"
        );
        assert!(t.dep_order_consistent());
        // Removing a member dissolves the group; the survivor is a
        // singleton again and the order stays valid.
        t.remove_txn(g(2));
        assert!(t.dep_groups().is_empty());
        assert!(t.dep_order_consistent());
        assert_eq!(t.take_desync(), 0);
        // The freed slot re-forms cleanly.
        t.insert_txn(g(9), &[s(0), s(1)]);
        t.add_dep(dep(0, 1, 9));
        assert!(t.dep_groups().is_empty());
        assert!(t.dep_order_consistent());
    }

    #[test]
    fn recycled_site_slot_carries_no_stale_deps() {
        let mut t = DenseTsgd::new();
        // Site 10 is used only by G1/G4 and carries a dependency; removing
        // both releases its slot with the dependency rows fully cleared.
        t.insert_txn(g(1), &[s(10)]);
        t.insert_txn(g(4), &[s(10)]);
        t.insert_txn(g(2), &[s(0)]);
        t.add_dep(dep(10, 1, 4));
        let old_ss = t.site_slot(s(10)).unwrap();
        t.remove_txn(g(1));
        t.remove_txn(g(4));
        assert!(t.site_slot(s(10)).is_none(), "slot released");
        assert_eq!(t.dep_count(), 0);
        // A different site re-interned into the recycled slot must see no
        // trace of site 10's dependency bitsets.
        t.insert_txn(g(3), &[s(99), s(0)]);
        assert_eq!(t.site_slot(s(99)), Some(old_ss), "slot recycled");
        assert!(t.preds_at(g(3), s(99)).is_none());
        assert!(t.preds_at(g(2), s(99)).is_none());
        assert_eq!(t.incoming_deps(g(3)), 0);
        t.add_dep(dep(0, 2, 3));
        assert!(t.has_dep(s(0), g(2), g(3)));
        assert!(!t.has_dep(s(99), g(2), g(3)), "no aliasing into site 99");
        assert!(t.dep_order_consistent());
        assert_eq!(t.take_desync(), 0);
    }

    #[test]
    fn pending_batch_revalidates_stale_records() {
        let mut t = DenseTsgd::new();
        t.insert_txn(g(1), &[s(0)]);
        t.insert_txn(g(2), &[s(0)]);
        t.add_dep(dep(0, 1, 2));
        // The record is batched; removing G1 deletes the dependency before
        // any drain, so the drain must drop the stale triple.
        t.remove_txn(g(1));
        t.ensure_topo_current();
        assert!(t.dep_order_consistent());
        assert!(t.dep_groups().is_empty());
        assert_eq!(t.delta_edges(), 1, "the record was still counted");
    }
}

#[cfg(test)]
mod review_probe {
    use super::*;
    use mdbs_common::ids::{GlobalTxnId, SiteId};
    fn g(n: u64) -> GlobalTxnId {
        GlobalTxnId(n)
    }
    fn s(n: u32) -> SiteId {
        SiteId(n)
    }
    fn dep(site: u32, before: u64, after: u64) -> Dep {
        Dep {
            site: s(site),
            before: g(before),
            after: g(after),
        }
    }

    #[test]
    fn pending_batch_visible_edges_keep_order_consistent() {
        let mut t = DenseTsgd::new();
        // Insertion order fixes topo keys ascending: z, x, v, u.
        t.insert_txn(g(1), &[s(0)]); // z
        t.insert_txn(g(2), &[s(0)]); // x
        t.insert_txn(g(3), &[s(0)]); // v
        t.insert_txn(g(4), &[s(0)]); // u
        t.add_dep(dep(0, 2, 4)); // x -> u (forward)
        t.add_dep(dep(0, 4, 3)); // u -> v (backward)
        t.add_dep(dep(0, 3, 1)); // v -> z (backward, pending when u->v drains)
        assert!(t.dep_order_consistent(), "order broken by batched drain");
    }
}
