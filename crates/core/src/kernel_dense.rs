//! Dense-id kernels for Schemes 0–3.
//!
//! These are drop-in re-implementations of the four conservative schemes
//! on top of [`mdbs_common::DenseInterner`] + [`mdbs_common::DenseBitSet`]
//! (and, for Scheme 2, [`crate::tsgd_dense::DenseTsgd`]): live transaction
//! and site ids are interned into compact `u32` slots (recycled at `fin`),
//! and every set the paper's pseudocode manipulates becomes a bitset over
//! slots — intersection tests are word-wise ANDs, `ser_bef` propagation is
//! a word-wise OR, and the per-op hot path performs no allocation.
//!
//! **The paper-step accounting is bit-for-bit identical to the reference
//! kernels** (`scheme0`–`scheme3`): every `tick`/`bump` here mirrors one in
//! the reference, with the same operand values on every input. That is a
//! hard invariant — the abstract complexity measurements (Theorems 4, 6, 9)
//! must not depend on which kernel ran — and is enforced by the
//! `kernel_equivalence` property suite and the `step_gate` CI gate. The
//! kernels may diverge from the reference only on *protocol-violating*
//! inputs (where the reference's id-keyed maps remember dead ids that a
//! slot-recycling kernel cannot represent); valid GTM2 scripts never reach
//! those paths, and each is commented at the site.
//!
//! Machine-cost improvements with no counted-step footprint:
//!
//! - Scheme 1 replaces the per-`init` bridge DFS with a union-find over
//!   site connectivity (`mdbs_schedule::UnionFind`): an edge `(Ĝ_i, s_k)`
//!   lies on a TSG cycle iff `s_k` is connected to another site of `Ĝ_i`
//!   in the pre-`init` graph. Inits union incrementally; only `fin`s (edge
//!   deletions) force a rebuild, counted by `gtm2.bridge_recompute`.
//! - Scheme 2's acyclicity validator uses the cached polynomial walk
//!   check of [`DenseTsgd`] (hits counted by `tsgd.reach_cache_hit`).
//! - `wake_candidates` return symbolic [`WakeCandidates`] variants
//!   (`SerAt`, `Fins`, …) resolved by the engine against the WAIT set
//!   without allocating.

use crate::scheme::{
    Gtm2Scheme, ProtocolViolationKind, SchemeEffect, WaitSet, WakeCandidates, WakeScope,
};
use crate::tsgd::Dep;
use crate::tsgd_dense::{
    eliminate_cycles_dense, eliminate_cycles_dense_with, DenseTsgd, EliminateScratch,
};
use mdbs_common::ids::{GlobalTxnId, SiteId};
use mdbs_common::instrument::Registry;
use mdbs_common::ops::{QueueOp, QueueOpKind};
use mdbs_common::step::{StepCounter, StepKind};
use mdbs_common::{DenseBitSet, DenseInterner};
use mdbs_schedule::UnionFind;
use std::collections::{BTreeSet, VecDeque};

// ---------------------------------------------------------------------------
// Scheme 0
// ---------------------------------------------------------------------------

/// Scheme 0 on dense site slots: one FIFO queue per site slot.
///
/// Site slots are never recycled (the reference's per-site queues persist
/// for the whole run), so slot existence mirrors queue existence exactly.
#[derive(Clone, Debug, Default)]
pub struct Scheme0Dense {
    sites: DenseInterner<SiteId>,
    queues: Vec<VecDeque<GlobalTxnId>>,
}

// mdbs-lint: allow(no-panic-in-scheduler, scope=item) — slot indices come from the interner and every row Vec is grown by ensure_*_rows/intern before use; the kernel-equivalence proptests and debug_validate exercise the invariant on random scripts.
impl Scheme0Dense {
    /// Fresh state.
    pub fn new() -> Self {
        Self::default()
    }

    fn front(&self, site: SiteId) -> Option<GlobalTxnId> {
        self.sites
            .slot_of(&site)
            .and_then(|ss| self.queues[ss as usize].front().copied())
    }
}

// mdbs-lint: allow(no-panic-in-scheduler, scope=item) — slot indices come from the interner and every row Vec is grown by ensure_*_rows/intern before use; the kernel-equivalence proptests and debug_validate exercise the invariant on random scripts.
impl Gtm2Scheme for Scheme0Dense {
    fn name(&self) -> &'static str {
        "Scheme 0"
    }

    fn cond(&self, op: &QueueOp, steps: &mut StepCounter) -> bool {
        steps.tick(StepKind::Cond);
        match op {
            QueueOp::Ser { txn, site } => self.front(*site) == Some(*txn),
            QueueOp::Init { .. } | QueueOp::Ack { .. } | QueueOp::Fin { .. } => true,
        }
    }

    fn act(&mut self, op: &QueueOp, steps: &mut StepCounter) -> Vec<SchemeEffect> {
        match op {
            QueueOp::Init { txn, sites } => {
                for &site in sites {
                    steps.tick(StepKind::Act);
                    let ss = self.sites.intern(site) as usize;
                    if self.queues.len() <= ss {
                        self.queues.resize_with(ss + 1, VecDeque::new);
                    }
                    self.queues[ss].push_back(*txn);
                }
                Vec::new()
            }
            QueueOp::Ser { txn, site } => {
                steps.tick(StepKind::Act);
                vec![SchemeEffect::SubmitSer {
                    txn: *txn,
                    site: *site,
                }]
            }
            QueueOp::Ack { txn, site } => {
                steps.tick(StepKind::Act);
                let Some(ss) = self.sites.slot_of(site) else {
                    return vec![SchemeEffect::ProtocolViolation {
                        txn: *txn,
                        site: Some(*site),
                        kind: ProtocolViolationKind::UnknownSite,
                    }];
                };
                let q = &mut self.queues[ss as usize];
                match q.front() {
                    Some(front) if front == txn => {
                        q.pop_front();
                        vec![SchemeEffect::ForwardAck {
                            txn: *txn,
                            site: *site,
                        }]
                    }
                    _ => match q.iter().position(|t| t == txn) {
                        Some(pos) => {
                            q.remove(pos);
                            vec![
                                SchemeEffect::ProtocolViolation {
                                    txn: *txn,
                                    site: Some(*site),
                                    kind: ProtocolViolationKind::AckOutOfOrder,
                                },
                                SchemeEffect::ForwardAck {
                                    txn: *txn,
                                    site: *site,
                                },
                            ]
                        }
                        None => vec![SchemeEffect::ProtocolViolation {
                            txn: *txn,
                            site: Some(*site),
                            kind: ProtocolViolationKind::AckNotQueued,
                        }],
                    },
                }
            }
            QueueOp::Fin { .. } => {
                steps.tick(StepKind::Act);
                Vec::new()
            }
        }
    }

    fn wake_candidates(
        &self,
        acted: &QueueOp,
        wait: &WaitSet,
        steps: &mut StepCounter,
    ) -> WakeCandidates {
        steps.tick(StepKind::WaitScan);
        match acted {
            QueueOp::Ack { site, .. } => match self.front(*site) {
                Some(front_txn) => match wait.ser_key(front_txn, *site) {
                    Some(key) => WakeCandidates::One(key),
                    None => WakeCandidates::None,
                },
                None => WakeCandidates::None,
            },
            QueueOp::Init { .. } | QueueOp::Ser { .. } | QueueOp::Fin { .. } => {
                WakeCandidates::None
            }
        }
    }

    fn wake_scope(&self, kind: QueueOpKind) -> WakeScope {
        match kind {
            QueueOpKind::Ack => WakeScope::ACTED_SITE,
            QueueOpKind::Init | QueueOpKind::Ser | QueueOpKind::Fin => WakeScope::NOTHING,
        }
    }

    fn debug_validate(&self) {
        for (ss, q) in self.queues.iter().enumerate() {
            let mut seen = BTreeSet::new();
            for t in q {
                assert!(seen.insert(*t), "{t} enqueued twice at site slot {ss}");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Scheme 1
// ---------------------------------------------------------------------------

/// Scheme 1 on dense slots: the TSG as per-transaction edge bitsets, queue
/// marks as bitsets, and the per-`init` bridge computation replaced by an
/// incrementally maintained union-find over site connectivity.
///
/// Site slots are never recycled (the reference TSG keeps site nodes
/// forever); transaction slots recycle at `fin`.
#[derive(Clone, Debug, Default)]
pub struct Scheme1Dense {
    txns: DenseInterner<GlobalTxnId>,
    sites: DenseInterner<SiteId>,
    /// Txn slot → site slots with a TSG edge.
    edges: Vec<DenseBitSet>,
    /// Txn slot → does a TSG transaction node exist (≥1 edge ever added,
    /// not yet finned)?
    has_node: Vec<bool>,
    /// Live transaction nodes in the TSG.
    txn_nodes: usize,
    /// Site nodes in the TSG (monotone: site nodes are never removed).
    site_nodes: usize,
    /// Live TSG edges.
    edge_count: usize,
    insert_queues: Vec<VecDeque<GlobalTxnId>>,
    delete_queues: Vec<VecDeque<GlobalTxnId>>,
    /// Site slot → has an insert queue (some `init` announced the site);
    /// doubles as "site node exists in the TSG".
    iq_exists: Vec<bool>,
    /// Site slot → has a delete queue (some `ack` ran at the site).
    dq_exists: Vec<bool>,
    /// Txn slot → marked site slots.
    marked: Vec<DenseBitSet>,
    /// Site slot → submitted-but-unacked transaction.
    outstanding: Vec<Option<GlobalTxnId>>,
    /// Txn slot → announced site list (contents of `Ĝ_i`).
    sites_map: Vec<Option<Vec<SiteId>>>,
    /// Site connectivity of the current TSG (valid when `!dsu_dirty`).
    dsu: UnionFind,
    /// Set by edge deletions (`fin`); forces a rebuild at the next `init`.
    dsu_dirty: bool,
    /// Rebuilds performed (exported as `gtm2.bridge_recompute`).
    bridge_recomputes: u64,
    /// Scratch: (site slot, pre-init DSU root) per announced site.
    scratch_roots: Vec<(u32, u32)>,
}

// mdbs-lint: allow(no-panic-in-scheduler, scope=item) — slot indices come from the interner and every row Vec is grown by ensure_*_rows/intern before use; the kernel-equivalence proptests and debug_validate exercise the invariant on random scripts.
impl Scheme1Dense {
    /// Fresh state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of marked operations currently tracked (diagnostics).
    pub fn marked_count(&self) -> usize {
        self.marked.iter().map(DenseBitSet::len).sum()
    }

    fn ensure_txn_rows(&mut self, ts: u32) {
        let n = ts as usize + 1;
        if self.edges.len() < n {
            self.edges.resize_with(n, DenseBitSet::new);
            self.has_node.resize(n, false);
            self.marked.resize_with(n, DenseBitSet::new);
            self.sites_map.resize_with(n, || None);
        }
    }

    fn ensure_site_rows(&mut self, ss: u32) {
        let n = ss as usize + 1;
        if self.insert_queues.len() < n {
            self.insert_queues.resize_with(n, VecDeque::new);
            self.delete_queues.resize_with(n, VecDeque::new);
            self.iq_exists.resize(n, false);
            self.dq_exists.resize(n, false);
            self.outstanding.resize(n, None);
        }
    }

    fn insert_front(&self, ss: u32) -> Option<GlobalTxnId> {
        self.insert_queues[ss as usize].front().copied()
    }

    fn delete_front(&self, site: SiteId) -> Option<GlobalTxnId> {
        self.sites
            .slot_of(&site)
            .filter(|&ss| self.dq_exists[ss as usize])
            .and_then(|ss| self.delete_queues[ss as usize].front().copied())
    }

    /// Recompute site connectivity of the current TSG from scratch. Only
    /// deletions (fins) force this; inits maintain the DSU incrementally.
    fn rebuild_dsu(&mut self) {
        self.dsu.grow(self.sites.capacity());
        self.dsu.reset();
        for (ts, edges) in self.edges.iter().enumerate() {
            if !self.has_node[ts] {
                continue;
            }
            let mut first: Option<u32> = None;
            for ss in edges.iter() {
                match first {
                    None => first = Some(ss),
                    Some(f) => {
                        self.dsu.union(f, ss);
                    }
                }
            }
        }
        self.bridge_recomputes += 1;
        self.dsu_dirty = false;
    }
}

// mdbs-lint: allow(no-panic-in-scheduler, scope=item) — slot indices come from the interner and every row Vec is grown by ensure_*_rows/intern before use; the kernel-equivalence proptests and debug_validate exercise the invariant on random scripts.
impl Gtm2Scheme for Scheme1Dense {
    fn name(&self) -> &'static str {
        "Scheme 1"
    }

    fn cond(&self, op: &QueueOp, steps: &mut StepCounter) -> bool {
        steps.tick(StepKind::Cond);
        match op {
            QueueOp::Ser { txn, site } => {
                if let Some(ss) = self.sites.slot_of(site) {
                    if self.outstanding[ss as usize].is_some() {
                        return false;
                    }
                    if let Some(ts) = self.txns.slot_of(txn) {
                        if self.marked[ts as usize].contains(ss) {
                            return self.insert_front(ss) == Some(*txn);
                        }
                    }
                }
                true
            }
            QueueOp::Fin { txn } => {
                let sites = self
                    .txns
                    .slot_of(txn)
                    .and_then(|ts| self.sites_map[ts as usize].as_deref())
                    .unwrap_or(&[]);
                steps.bump(StepKind::Cond, sites.len() as u64);
                sites.iter().all(|&k| self.delete_front(k) == Some(*txn))
            }
            QueueOp::Init { .. } | QueueOp::Ack { .. } => true,
        }
    }

    fn act(&mut self, op: &QueueOp, steps: &mut StepCounter) -> Vec<SchemeEffect> {
        match op {
            QueueOp::Init { txn, sites } => {
                let ts = self.txns.intern(*txn);
                self.ensure_txn_rows(ts);
                // The marking rule below needs *pre-init* connectivity, so
                // any pending rebuild happens before Ĝ_i's edges land (a
                // freshly interned transaction contributes no edges).
                if self.dsu_dirty {
                    self.rebuild_dsu();
                }
                for &site in sites {
                    steps.tick(StepKind::Act);
                    let ss = self.sites.intern(site);
                    self.ensure_site_rows(ss);
                    if !self.iq_exists[ss as usize] {
                        self.iq_exists[ss as usize] = true;
                        self.site_nodes += 1;
                    }
                    if self.edges[ts as usize].insert(ss) {
                        self.edge_count += 1;
                        if !self.has_node[ts as usize] {
                            self.has_node[ts as usize] = true;
                            self.txn_nodes += 1;
                        }
                    }
                    self.insert_queues[ss as usize].push_back(*txn);
                }
                self.sites_map[ts as usize] = Some(sites.clone());
                // Same V + E charge as the reference's bridge DFS — the
                // union-find shortcut is a machine-cost optimization, not
                // an accounting one.
                steps.bump(
                    StepKind::Act,
                    (self.txn_nodes + self.site_nodes + self.edge_count) as u64,
                );
                // Edge (Ĝ_i, s_k) lies on a cycle iff s_k was connected to
                // another site of Ĝ_i before this init: collect pre-init
                // roots, mark slots whose root occurs twice, then fold
                // Ĝ_i's star into the DSU.
                self.dsu.grow(self.sites.capacity());
                self.scratch_roots.clear();
                for ss in self.edges[ts as usize].iter() {
                    let root = self.dsu.find(ss);
                    self.scratch_roots.push((ss, root));
                }
                for i in 0..self.scratch_roots.len() {
                    let (ss, root) = self.scratch_roots[i];
                    let shared = self
                        .scratch_roots
                        .iter()
                        .filter(|&&(_, r)| r == root)
                        .count()
                        >= 2;
                    if shared {
                        self.marked[ts as usize].insert(ss);
                    }
                }
                for i in 1..self.scratch_roots.len() {
                    let (first, _) = self.scratch_roots[0];
                    let (ss, _) = self.scratch_roots[i];
                    self.dsu.union(first, ss);
                }
                Vec::new()
            }
            QueueOp::Ser { txn, site } => {
                steps.tick(StepKind::Act);
                let ss = self.sites.intern(*site);
                self.ensure_site_rows(ss);
                self.outstanding[ss as usize] = Some(*txn);
                vec![SchemeEffect::SubmitSer {
                    txn: *txn,
                    site: *site,
                }]
            }
            QueueOp::Ack { txn, site } => {
                debug_assert_eq!(
                    self.sites
                        .slot_of(site)
                        .and_then(|ss| self.outstanding[ss as usize]),
                    Some(*txn)
                );
                if let Some(ss) = self.sites.slot_of(site) {
                    self.outstanding[ss as usize] = None;
                }
                let Some(ss) = self
                    .sites
                    .slot_of(site)
                    .filter(|&ss| self.iq_exists[ss as usize])
                else {
                    return vec![SchemeEffect::ProtocolViolation {
                        txn: *txn,
                        site: Some(*site),
                        kind: ProtocolViolationKind::UnknownSite,
                    }];
                };
                let q = &mut self.insert_queues[ss as usize];
                let Some(pos) = q.iter().position(|t| t == txn) else {
                    return vec![SchemeEffect::ProtocolViolation {
                        txn: *txn,
                        site: Some(*site),
                        kind: ProtocolViolationKind::AckNotQueued,
                    }];
                };
                steps.bump(StepKind::Act, pos as u64 + 1);
                q.remove(pos);
                if let Some(ts) = self.txns.slot_of(txn) {
                    self.marked[ts as usize].remove(ss);
                }
                self.dq_exists[ss as usize] = true;
                self.delete_queues[ss as usize].push_back(*txn);
                vec![SchemeEffect::ForwardAck {
                    txn: *txn,
                    site: *site,
                }]
            }
            QueueOp::Fin { txn } => {
                let Some(ts) = self.txns.slot_of(txn) else {
                    return vec![SchemeEffect::ProtocolViolation {
                        txn: *txn,
                        site: None,
                        kind: ProtocolViolationKind::UnmatchedFin,
                    }];
                };
                let Some(announced) = self.sites_map[ts as usize].take() else {
                    return vec![SchemeEffect::ProtocolViolation {
                        txn: *txn,
                        site: None,
                        kind: ProtocolViolationKind::UnmatchedFin,
                    }];
                };
                let mut effects = Vec::new();
                let mut removed_any = false;
                for &site in &announced {
                    steps.tick(StepKind::Act);
                    let Some(ss) = self
                        .sites
                        .slot_of(&site)
                        .filter(|&ss| self.dq_exists[ss as usize])
                    else {
                        effects.push(SchemeEffect::ProtocolViolation {
                            txn: *txn,
                            site: Some(site),
                            kind: ProtocolViolationKind::UnknownSite,
                        });
                        continue;
                    };
                    let front = self.delete_queues[ss as usize].pop_front();
                    debug_assert_eq!(front, Some(*txn), "cond(fin) guaranteed front");
                    if self.edges[ts as usize].remove(ss) {
                        self.edge_count -= 1;
                        removed_any = true;
                    }
                }
                // Mirror of the reference's `remove_node`: strip edges a
                // skipped (unknown-site) iteration left behind.
                let leftover = self.edges[ts as usize].len();
                if leftover > 0 {
                    self.edge_count -= leftover;
                    self.edges[ts as usize].clear();
                    removed_any = true;
                }
                if self.has_node[ts as usize] {
                    self.has_node[ts as usize] = false;
                    self.txn_nodes -= 1;
                }
                self.marked[ts as usize].clear();
                if removed_any {
                    self.dsu_dirty = true;
                }
                self.txns.release(txn);
                effects
            }
        }
    }

    fn wake_candidates(
        &self,
        acted: &QueueOp,
        wait: &WaitSet,
        steps: &mut StepCounter,
    ) -> WakeCandidates {
        steps.tick(StepKind::WaitScan);
        match acted {
            QueueOp::Ack { site, .. } => {
                steps.bump(
                    StepKind::WaitScan,
                    (wait.ser_count_at(*site) + wait.fin_count()) as u64,
                );
                WakeCandidates::SerAtThenFins(*site)
            }
            QueueOp::Fin { .. } => {
                steps.bump(StepKind::WaitScan, wait.fin_count() as u64);
                WakeCandidates::Fins
            }
            QueueOp::Init { .. } | QueueOp::Ser { .. } => WakeCandidates::None,
        }
    }

    fn wake_scope(&self, kind: QueueOpKind) -> WakeScope {
        match kind {
            QueueOpKind::Ack => WakeScope::ACTED_SITE_AND_SITELESS,
            QueueOpKind::Fin => WakeScope::SITELESS,
            QueueOpKind::Init | QueueOpKind::Ser => WakeScope::NOTHING,
        }
    }

    fn debug_validate(&self) {
        for (ss, out) in self.outstanding.iter().enumerate() {
            if let Some(t) = out {
                assert!(
                    self.insert_queues[ss].contains(t),
                    "outstanding {t} not in insert queue of site slot {ss}"
                );
            }
        }
        for (ss, iq) in self.insert_queues.iter().enumerate() {
            let dq = &self.delete_queues[ss];
            for t in iq {
                assert!(!dq.contains(t), "{t} in both queues at site slot {ss}");
            }
        }
    }

    fn export_metrics(&self, registry: &mut Registry) {
        registry.inc("gtm2.bridge_recompute", self.bridge_recomputes);
    }
}

// ---------------------------------------------------------------------------
// Scheme 2
// ---------------------------------------------------------------------------

/// Scheme 2 on the slot-indexed [`DenseTsgd`]: `cond(ser)` reads the
/// per-`(txn, site)` predecessor bitset (no dependency-list scan), and
/// `executed`/`acked` are bitsets over site slots.
///
/// The `fb_*` fallbacks hold `(txn, site)` pairs recorded when no TSG edge
/// pins the slots (protocol-violating inputs only — an `ack`/`ser` for a
/// transaction or site the TSGD does not know). The reference remembers
/// such pairs by id forever; storing them as bits would dangle once the
/// slot recycles, so they live in a plain set (never touched on valid
/// runs).
#[derive(Clone, Debug, Default)]
pub struct Scheme2Dense {
    tsgd: DenseTsgd,
    /// Txn slot → site slots whose `act(ser)` has run.
    executed: Vec<DenseBitSet>,
    /// Txn slot → site slots whose ack has been processed.
    acked: Vec<DenseBitSet>,
    fb_executed: BTreeSet<(GlobalTxnId, SiteId)>,
    fb_acked: BTreeSet<(GlobalTxnId, SiteId)>,
    /// Scratch for two-phase collect-then-mutate loops.
    scratch: Vec<GlobalTxnId>,
    /// Reusable scan state for the cursor-amortized `Eliminate_Cycles`.
    elim: EliminateScratch,
    /// True = drive `Eliminate_Cycles` through the full-rescan variant
    /// (the `dense-memo` oracle kernel) instead of the cursor-amortized
    /// one. Same Δ, same step charges, different machine cost.
    memo: bool,
}

impl Scheme2Dense {
    /// Fresh state on the cursor-amortized `Eliminate_Cycles` path.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fresh state on the full-rescan `Eliminate_Cycles` path — the second
    /// oracle ([`crate::scheme::KernelKind::DenseMemo`]) pinning the
    /// cursor-amortized kernel during this transition.
    pub fn new_memo() -> Self {
        Scheme2Dense {
            memo: true,
            ..Self::default()
        }
    }

    /// Read access to the dense TSGD (experiments, diagnostics).
    pub fn tsgd(&self) -> &DenseTsgd {
        &self.tsgd
    }

    fn ensure_rows(&mut self) {
        let cap = self.tsgd.txn_capacity();
        if self.executed.len() < cap {
            self.executed.resize_with(cap, DenseBitSet::new);
            self.acked.resize_with(cap, DenseBitSet::new);
        }
    }
}

// mdbs-lint: allow(no-panic-in-scheduler, scope=item) — slot indices come from the interner and every row Vec is grown by ensure_*_rows/intern before use; the kernel-equivalence proptests and debug_validate exercise the invariant on random scripts.
impl Gtm2Scheme for Scheme2Dense {
    fn name(&self) -> &'static str {
        "Scheme 2"
    }

    fn cond(&self, op: &QueueOp, steps: &mut StepCounter) -> bool {
        steps.tick(StepKind::Cond);
        match op {
            QueueOp::Ser { txn, site } => {
                match (self.tsgd.preds_at(*txn, *site), self.tsgd.site_slot(*site)) {
                    (Some(preds), Some(ss)) => {
                        steps.bump(StepKind::Cond, preds.len() as u64 + 1);
                        preds.iter().all(|p| {
                            self.acked[p as usize].contains(ss)
                                || (!self.fb_acked.is_empty()
                                    && self
                                        .tsgd
                                        .txn_at_slot(p)
                                        .is_some_and(|j| self.fb_acked.contains(&(j, *site))))
                        })
                    }
                    _ => {
                        steps.bump(StepKind::Cond, 1);
                        true
                    }
                }
            }
            QueueOp::Fin { txn } => {
                steps.bump(StepKind::Cond, self.tsgd.dep_count() as u64);
                self.tsgd.incoming_deps(*txn) == 0
            }
            QueueOp::Init { .. } | QueueOp::Ack { .. } => true,
        }
    }

    fn act(&mut self, op: &QueueOp, steps: &mut StepCounter) -> Vec<SchemeEffect> {
        match op {
            QueueOp::Init { txn, sites } => {
                self.tsgd.insert_txn(*txn, sites);
                self.ensure_rows();
                steps.bump(StepKind::Act, sites.len() as u64);
                for &site in sites {
                    let Some(ss) = self.tsgd.site_slot(site) else {
                        steps.bump(StepKind::Act, 1);
                        continue;
                    };
                    {
                        let Self {
                            tsgd,
                            executed,
                            fb_executed,
                            scratch,
                            ..
                        } = &mut *self;
                        scratch.clear();
                        for &(j, js) in tsgd.txns_col(ss) {
                            let ran = executed[js as usize].contains(ss)
                                || (!fb_executed.is_empty() && fb_executed.contains(&(j, site)));
                            if j != *txn && ran {
                                scratch.push(j);
                            }
                        }
                    }
                    steps.bump(StepKind::Act, self.scratch.len() as u64 + 1);
                    for idx in 0..self.scratch.len() {
                        let j = self.scratch[idx];
                        self.tsgd.add_dep(Dep {
                            site,
                            before: j,
                            after: *txn,
                        });
                    }
                }
                let delta = if self.memo {
                    eliminate_cycles_dense(&self.tsgd, *txn, steps)
                } else {
                    eliminate_cycles_dense_with(&self.tsgd, *txn, steps, &mut self.elim)
                };
                for d in delta {
                    self.tsgd.add_dep(d);
                }
                Vec::new()
            }
            QueueOp::Ser { txn, site } => {
                steps.tick(StepKind::Act);
                match (self.tsgd.txn_slot(*txn), self.tsgd.site_slot(*site)) {
                    (Some(ts), Some(ss)) if self.tsgd.has_edge(*txn, *site) => {
                        self.executed[ts as usize].insert(ss);
                    }
                    _ => {
                        self.fb_executed.insert((*txn, *site));
                    }
                }
                if let Some(ss) = self.tsgd.site_slot(*site) {
                    {
                        let Self {
                            tsgd,
                            executed,
                            fb_executed,
                            scratch,
                            ..
                        } = &mut *self;
                        scratch.clear();
                        for &(j, js) in tsgd.txns_col(ss) {
                            let ran = executed[js as usize].contains(ss)
                                || (!fb_executed.is_empty() && fb_executed.contains(&(j, *site)));
                            if j != *txn && !ran {
                                scratch.push(j);
                            }
                        }
                    }
                    steps.bump(StepKind::Act, self.scratch.len() as u64 + 1);
                    for idx in 0..self.scratch.len() {
                        let j = self.scratch[idx];
                        self.tsgd.add_dep(Dep {
                            site: *site,
                            before: *txn,
                            after: j,
                        });
                    }
                } else {
                    steps.bump(StepKind::Act, 1);
                }
                vec![SchemeEffect::SubmitSer {
                    txn: *txn,
                    site: *site,
                }]
            }
            QueueOp::Ack { txn, site } => {
                steps.tick(StepKind::Act);
                match (self.tsgd.txn_slot(*txn), self.tsgd.site_slot(*site)) {
                    (Some(ts), Some(ss)) if self.tsgd.has_edge(*txn, *site) => {
                        self.acked[ts as usize].insert(ss);
                    }
                    _ => {
                        self.fb_acked.insert((*txn, *site));
                    }
                }
                vec![SchemeEffect::ForwardAck {
                    txn: *txn,
                    site: *site,
                }]
            }
            QueueOp::Fin { txn } => {
                let ts = self.tsgd.txn_slot(*txn);
                let announced = ts.map_or(0, |t| self.tsgd.sites_row(t).len());
                steps.bump(StepKind::Act, announced as u64 + 1);
                self.tsgd.remove_txn(*txn);
                if let Some(t) = ts {
                    self.executed[t as usize].clear();
                    self.acked[t as usize].clear();
                }
                if !self.fb_executed.is_empty() {
                    self.fb_executed.retain(|(t, _)| t != txn);
                }
                if !self.fb_acked.is_empty() {
                    self.fb_acked.retain(|(t, _)| t != txn);
                }
                // A checked decrement failed inside remove_txn: surface it
                // as a counted violation instead of a scheduler panic.
                if self.tsgd.take_desync() > 0 {
                    return vec![SchemeEffect::ProtocolViolation {
                        txn: *txn,
                        site: None,
                        kind: ProtocolViolationKind::DesyncedDependency,
                    }];
                }
                Vec::new()
            }
        }
    }

    fn wake_candidates(
        &self,
        acted: &QueueOp,
        wait: &WaitSet,
        steps: &mut StepCounter,
    ) -> WakeCandidates {
        steps.tick(StepKind::WaitScan);
        match acted {
            QueueOp::Ack { site, .. } => {
                steps.bump(StepKind::WaitScan, wait.ser_count_at(*site) as u64);
                WakeCandidates::SerAt(*site)
            }
            QueueOp::Fin { .. } => {
                steps.bump(StepKind::WaitScan, wait.fin_count() as u64);
                WakeCandidates::Fins
            }
            QueueOp::Init { .. } | QueueOp::Ser { .. } => WakeCandidates::None,
        }
    }

    fn debug_validate(&self) {
        // Theorem 5's induction, via the exponential oracle (guarded by
        // size, like the reference). The cached polynomial walk runs
        // alongside: if it clears a transaction, the oracle must agree —
        // the walk may over-approximate but never under-approximate.
        if self.tsgd.live_txn_count() <= 10 {
            let none = BTreeSet::new();
            let txns: Vec<GlobalTxnId> = self.tsgd.txns().collect();
            for t in txns {
                let walk = self.tsgd.has_cycle_involving_cached(t);
                let oracle = self.tsgd.has_cycle_involving_oracle(t, &none);
                assert!(!oracle, "TSGD must remain acyclic (cycle through {t})");
                assert!(
                    walk || !oracle,
                    "polynomial walk missed a cycle through {t}"
                );
            }
        }
        // The incrementally maintained dependency order must stay a valid
        // topological order with every SCC group a singleton: a dependency
        // cycle would imply a TSGD closed walk Eliminate_Cycles missed.
        assert!(
            self.tsgd.dep_groups().is_empty(),
            "dependency digraph grew a cycle on a valid run"
        );
        assert!(
            self.tsgd.dep_order_consistent(),
            "incremental dependency order desynced from the dependency set"
        );
        assert_eq!(self.tsgd.desync_count(), 0, "checked decrement failed");
    }

    fn export_metrics(&self, registry: &mut Registry) {
        registry.inc("tsgd.reach_cache_hit", self.tsgd.reach_cache_hits());
        registry.inc("tsgd.delta_edges", self.tsgd.delta_edges());
        registry.inc("tsgd.topo_shift", self.tsgd.topo_shift());
    }
}

// ---------------------------------------------------------------------------
// Scheme 3
// ---------------------------------------------------------------------------

/// Scheme 3 on dense slots: `ser_bef` sets and the per-site `set_k` are
/// bitsets over transaction slots, so `cond(ser)`'s emptiness test is a
/// word-wise AND and `act(ser)`'s transitive propagation is a word-wise OR
/// into each target row.
///
/// Transaction slots recycle at `fin`; site slots are permanent (the
/// reference keeps `sets`/`last` entries for ever). Freed `ser_bef` rows
/// are pooled and reused, so steady-state `init`s allocate nothing.
#[derive(Clone, Debug, Default)]
pub struct Scheme3Dense {
    txns: DenseInterner<GlobalTxnId>,
    sites: DenseInterner<SiteId>,
    /// Txn slot → `ser_bef(Ĝ_i)` as a bitset over txn slots (`Some` iff
    /// the reference map has the entry, i.e. the txn was inited).
    ser_bef: Vec<Option<DenseBitSet>>,
    /// Number of `Some` rows — the reference's `ser_bef.len()`.
    ser_bef_len: usize,
    /// Cleared rows awaiting reuse.
    pool: Vec<DenseBitSet>,
    /// Site slot → `last_k` (stored by id, like the reference — the id may
    /// outlive the transaction's slot on violating runs).
    last: Vec<Option<GlobalTxnId>>,
    /// Site slot → `set_k` as a bitset over txn slots.
    sets: Vec<DenseBitSet>,
    /// Site slot → does the reference `sets` map have this entry (some
    /// `init` announced the site)?
    site_has_set: Vec<bool>,
    /// Txn slot → acked site slots.
    acked: Vec<DenseBitSet>,
    /// Acked pairs that must outlive the transaction's slot (acks at
    /// never-announced sites — violating runs only; the reference keeps
    /// them by id forever).
    fb_acked: BTreeSet<(GlobalTxnId, SiteId)>,
    /// Txn slot → announced site list.
    sites_map: Vec<Option<Vec<SiteId>>>,
    /// Scratch for `act(ser)`'s Set1 (reused across calls).
    scratch_set1: DenseBitSet,
    /// Scratch for `act(ser)`'s target list (reused across calls).
    scratch_targets: Vec<u32>,
}

// mdbs-lint: allow(no-panic-in-scheduler, scope=item) — slot indices come from the interner and every row Vec is grown by ensure_*_rows/intern before use; the kernel-equivalence proptests and debug_validate exercise the invariant on random scripts.
impl Scheme3Dense {
    /// Fresh state.
    pub fn new() -> Self {
        Self::default()
    }

    /// `ser_bef(Ĝ_i)` resolved back to ids (empty if unknown) — exposed
    /// for experiments.
    pub fn ser_bef(&self, txn: GlobalTxnId) -> BTreeSet<GlobalTxnId> {
        let Some(ts) = self.txns.slot_of(&txn) else {
            return BTreeSet::new();
        };
        let Some(bef) = self.ser_bef[ts as usize].as_ref() else {
            return BTreeSet::new();
        };
        bef.iter().filter_map(|b| self.txns.key_of(b)).collect()
    }

    fn ensure_txn_rows(&mut self, ts: u32) {
        let n = ts as usize + 1;
        if self.ser_bef.len() < n {
            self.ser_bef.resize_with(n, || None);
            self.acked.resize_with(n, DenseBitSet::new);
            self.sites_map.resize_with(n, || None);
        }
    }

    fn ensure_site_rows(&mut self, ss: u32) {
        let n = ss as usize + 1;
        if self.last.len() < n {
            self.last.resize(n, None);
            self.sets.resize_with(n, DenseBitSet::new);
            self.site_has_set.resize(n, false);
        }
    }

    fn acked_pair(&self, l: GlobalTxnId, site: SiteId) -> bool {
        if let (Some(lt), Some(ss)) = (self.txns.slot_of(&l), self.sites.slot_of(&site)) {
            if self.acked[lt as usize].contains(ss) {
                return true;
            }
        }
        !self.fb_acked.is_empty() && self.fb_acked.contains(&(l, site))
    }
}

// mdbs-lint: allow(no-panic-in-scheduler, scope=item) — slot indices come from the interner and every row Vec is grown by ensure_*_rows/intern before use; the kernel-equivalence proptests and debug_validate exercise the invariant on random scripts.
impl Gtm2Scheme for Scheme3Dense {
    fn name(&self) -> &'static str {
        "Scheme 3"
    }

    fn cond(&self, op: &QueueOp, steps: &mut StepCounter) -> bool {
        steps.tick(StepKind::Cond);
        match op {
            QueueOp::Ser { txn, site } => {
                if let Some(ss) = self.sites.slot_of(site) {
                    if let Some(l) = self.last[ss as usize] {
                        steps.tick(StepKind::Cond);
                        if !self.acked_pair(l, *site) {
                            return false;
                        }
                    }
                }
                let bef = self
                    .txns
                    .slot_of(txn)
                    .and_then(|ts| self.ser_bef[ts as usize].as_ref());
                let set = self
                    .sites
                    .slot_of(site)
                    .filter(|&ss| self.site_has_set[ss as usize])
                    .map(|ss| &self.sets[ss as usize]);
                match (bef, set) {
                    (Some(bef), Some(set)) => {
                        steps.bump(StepKind::Cond, bef.len().min(set.len()) as u64);
                        !bef.intersects(set)
                    }
                    _ => true,
                }
            }
            QueueOp::Fin { txn } => self
                .txns
                .slot_of(txn)
                .and_then(|ts| self.ser_bef[ts as usize].as_ref())
                .is_none_or(DenseBitSet::is_empty),
            QueueOp::Init { .. } | QueueOp::Ack { .. } => true,
        }
    }

    fn act(&mut self, op: &QueueOp, steps: &mut StepCounter) -> Vec<SchemeEffect> {
        match op {
            QueueOp::Init { txn, sites } => {
                let ts = self.txns.intern(*txn);
                self.ensure_txn_rows(ts);
                let mut bef = self.pool.pop().unwrap_or_default();
                debug_assert!(bef.is_empty(), "pooled rows are returned cleared");
                for &site in sites {
                    steps.tick(StepKind::Act);
                    let ss = self.sites.intern(site);
                    self.ensure_site_rows(ss);
                    self.site_has_set[ss as usize] = true;
                    self.sets[ss as usize].insert(ts);
                    if let Some(l) = self.last[ss as usize] {
                        if let Some(lt) = self.txns.slot_of(&l) {
                            if let Some(lb) = self.ser_bef[lt as usize].as_ref() {
                                steps.bump(StepKind::Act, lb.len() as u64);
                                bef.union_with(lb);
                            }
                            bef.insert(lt);
                        }
                        // A `last` id with no live slot can only arise on a
                        // protocol-violating run (its fin already
                        // processed); the reference would remember the
                        // dead id, which a recycling kernel cannot.
                    }
                }
                if let Some(mut old) = self.ser_bef[ts as usize].take() {
                    old.clear();
                    self.pool.push(old);
                } else {
                    self.ser_bef_len += 1;
                }
                self.ser_bef[ts as usize] = Some(bef);
                self.sites_map[ts as usize] = Some(sites.clone());
                Vec::new()
            }
            QueueOp::Ser { txn, site } => {
                steps.tick(StepKind::Act);
                let Some(ss) = self
                    .sites
                    .slot_of(site)
                    .filter(|&ss| self.site_has_set[ss as usize])
                else {
                    return vec![SchemeEffect::ProtocolViolation {
                        txn: *txn,
                        site: Some(*site),
                        kind: ProtocolViolationKind::SerWithoutInit,
                    }];
                };
                let ts = self.txns.intern(*txn);
                self.ensure_txn_rows(ts);
                self.sets[ss as usize].remove(ts);
                self.last[ss as usize] = Some(*txn);
                // Set1 = ser_bef(Ĝ_i) ∪ {Ĝ_i}, built in the reused scratch.
                let mut set1 = std::mem::take(&mut self.scratch_set1);
                set1.clear();
                if let Some(bef) = self.ser_bef[ts as usize].as_ref() {
                    set1.union_with(bef);
                }
                set1.insert(ts);
                let mut targets = std::mem::take(&mut self.scratch_targets);
                targets.clear();
                {
                    let set_k = &self.sets[ss as usize];
                    for (jslot, row) in self.ser_bef.iter().enumerate() {
                        if let Some(bef_j) = row {
                            if jslot as u32 != ts
                                && (set_k.contains(jslot as u32) || bef_j.intersects(set_k))
                            {
                                targets.push(jslot as u32);
                            }
                        }
                    }
                }
                steps.bump(StepKind::Act, self.ser_bef_len as u64);
                for &j in &targets {
                    if let Some(bef_j) = self.ser_bef[j as usize].as_mut() {
                        steps.bump(StepKind::Act, set1.len() as u64);
                        bef_j.union_with(&set1);
                        debug_assert!(!bef_j.contains(j), "slot {j} serialized before itself");
                    }
                }
                self.scratch_set1 = set1;
                self.scratch_targets = targets;
                vec![SchemeEffect::SubmitSer {
                    txn: *txn,
                    site: *site,
                }]
            }
            QueueOp::Ack { txn, site } => {
                steps.tick(StepKind::Act);
                let ts = self.txns.intern(*txn);
                self.ensure_txn_rows(ts);
                let ss = self.sites.intern(*site);
                self.ensure_site_rows(ss);
                self.acked[ts as usize].insert(ss);
                vec![SchemeEffect::ForwardAck {
                    txn: *txn,
                    site: *site,
                }]
            }
            QueueOp::Fin { txn } => {
                let ts_opt = self.txns.slot_of(txn);
                // Ĝ_i leaves: drop it from every ser_bef row (one counted
                // step per live entry, known or not — like the reference).
                for bef in self.ser_bef.iter_mut().flatten() {
                    steps.tick(StepKind::Act);
                    if let Some(ts) = ts_opt {
                        bef.remove(ts);
                    }
                }
                let Some(ts) = ts_opt else {
                    return Vec::new();
                };
                if let Some(mut own) = self.ser_bef[ts as usize].take() {
                    own.clear();
                    self.pool.push(own);
                    self.ser_bef_len -= 1;
                }
                let announced = self.sites_map[ts as usize].take().unwrap_or_default();
                for site in announced {
                    steps.tick(StepKind::Act);
                    if let Some(ss) = self.sites.slot_of(&site) {
                        if self.last[ss as usize] == Some(*txn) {
                            self.last[ss as usize] = None;
                        }
                        self.acked[ts as usize].remove(ss);
                    }
                }
                // The reference never prunes `set_k` at fin; on valid runs
                // the bits are already gone (every announced event ran).
                // Sweep defensively so a recycled slot cannot inherit one.
                for set in self.sets.iter_mut() {
                    set.remove(ts);
                }
                // Acked pairs at never-announced sites outlive the slot in
                // the reference; park them under the id before recycling.
                for ss in self.acked[ts as usize].iter() {
                    if let Some(site) = self.sites.key_of(ss) {
                        self.fb_acked.insert((*txn, site));
                    }
                }
                self.acked[ts as usize].clear();
                self.txns.release(txn);
                Vec::new()
            }
        }
    }

    fn wake_candidates(
        &self,
        acted: &QueueOp,
        wait: &WaitSet,
        steps: &mut StepCounter,
    ) -> WakeCandidates {
        steps.tick(StepKind::WaitScan);
        match acted {
            QueueOp::Ack { site, .. } => {
                steps.bump(StepKind::WaitScan, wait.ser_count_at(*site) as u64);
                WakeCandidates::SerAt(*site)
            }
            QueueOp::Fin { .. } => {
                steps.bump(StepKind::WaitScan, wait.fin_count() as u64);
                WakeCandidates::Fins
            }
            QueueOp::Init { .. } | QueueOp::Ser { .. } => WakeCandidates::None,
        }
    }

    fn debug_validate(&self) {
        for (t, row) in self.ser_bef.iter().enumerate() {
            let Some(bef) = row else { continue };
            assert!(!bef.contains(t as u32), "slot {t} serialized before itself");
            for b in bef.iter() {
                if let Some(bb) = self.ser_bef[b as usize].as_ref() {
                    for x in bb.iter() {
                        assert!(
                            bef.contains(x),
                            "transitivity broken: {x} < {b} < {t} (slots)"
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gtm2::Gtm2;
    use crate::scheme::{KernelKind, SchemeKind};

    fn g(i: u64) -> GlobalTxnId {
        GlobalTxnId(i)
    }
    fn s(i: u32) -> SiteId {
        SiteId(i)
    }
    fn init(i: u64, sites: &[u32]) -> QueueOp {
        QueueOp::Init {
            txn: g(i),
            sites: sites.iter().map(|&k| s(k)).collect(),
        }
    }
    fn ser(i: u64, k: u32) -> QueueOp {
        QueueOp::Ser {
            txn: g(i),
            site: s(k),
        }
    }
    fn ack(i: u64, k: u32) -> QueueOp {
        QueueOp::Ack {
            txn: g(i),
            site: s(k),
        }
    }
    fn fin(i: u64) -> QueueOp {
        QueueOp::Fin { txn: g(i) }
    }

    #[test]
    fn scheme0_dense_serializes_in_init_order() {
        let mut e = Gtm2::new(Box::new(Scheme0Dense::new()));
        e.enqueue(init(2, &[0, 1]));
        e.enqueue(init(1, &[0, 1]));
        e.enqueue(ser(1, 0));
        e.enqueue(ser(2, 0));
        let fx = e.pump();
        assert_eq!(
            fx,
            vec![SchemeEffect::SubmitSer {
                txn: g(2),
                site: s(0)
            }]
        );
        e.enqueue(ack(2, 0));
        let fx = e.pump();
        assert!(fx.contains(&SchemeEffect::SubmitSer {
            txn: g(1),
            site: s(0)
        }));
        assert!(e.ser_log().check().is_ok());
    }

    #[test]
    fn scheme1_dense_marks_and_orders_shared_pair() {
        let mut e = Gtm2::new(Box::new(Scheme1Dense::new()));
        e.enqueue(init(1, &[0, 1]));
        e.enqueue(init(2, &[0, 1]));
        e.enqueue(ser(2, 0));
        e.enqueue(ser(2, 1));
        let fx = e.pump();
        assert!(fx.is_empty(), "marked non-front ops must wait: {fx:?}");
        assert_eq!(e.stats().waited, 2);
        e.enqueue(ser(1, 0));
        e.enqueue(ser(1, 1));
        assert_eq!(e.pump().len(), 2);
        e.enqueue(ack(1, 0));
        e.enqueue(ack(1, 1));
        let fx = e.pump();
        assert!(fx.contains(&SchemeEffect::SubmitSer {
            txn: g(2),
            site: s(0)
        }));
        assert!(fx.contains(&SchemeEffect::SubmitSer {
            txn: g(2),
            site: s(1)
        }));
        assert!(e.ser_log().check().is_ok());
    }

    #[test]
    fn scheme1_dense_marked_count_tracks_cycle_edges() {
        let mut scheme = Scheme1Dense::new();
        let mut steps = StepCounter::new();
        scheme.act(&init(1, &[0, 1]), &mut steps);
        assert_eq!(scheme.marked_count(), 0, "no cycle with one txn");
        scheme.act(&init(2, &[0, 1]), &mut steps);
        assert_eq!(scheme.marked_count(), 2, "only G2's edges are marked");
    }

    #[test]
    fn scheme2_dense_overlapping_txns_safe_order() {
        let mut e = Gtm2::new(Box::new(Scheme2Dense::new()));
        e.set_validate(true);
        e.enqueue(init(1, &[0, 1]));
        e.enqueue(init(2, &[0, 1]));
        e.enqueue(ser(1, 0));
        e.enqueue(ser(2, 1));
        let fx = e.pump();
        assert_eq!(
            fx,
            vec![SchemeEffect::SubmitSer {
                txn: g(1),
                site: s(0)
            }]
        );
        assert_eq!(e.stats().waited, 1);
        e.enqueue(ack(1, 0));
        e.enqueue(ser(1, 1));
        e.pump();
        e.enqueue(ack(1, 1));
        let fx = e.pump();
        assert!(
            fx.contains(&SchemeEffect::SubmitSer {
                txn: g(2),
                site: s(1)
            }),
            "{fx:?}"
        );
        e.enqueue(ack(2, 1));
        e.enqueue(ser(2, 0));
        e.pump();
        e.enqueue(ack(2, 0));
        e.pump();
        assert!(e.ser_log().check().is_ok());
        assert_eq!(e.ser_log().site_order(s(0)), &[g(1), g(2)]);
        assert_eq!(e.ser_log().site_order(s(1)), &[g(1), g(2)]);
    }

    #[test]
    fn scheme2_dense_fin_respects_dependency_order() {
        let mut e = Gtm2::new(Box::new(Scheme2Dense::new()));
        e.set_validate(true);
        e.enqueue(init(1, &[0, 1]));
        e.enqueue(init(2, &[0, 1]));
        e.enqueue(ser(1, 0));
        e.enqueue(ser(1, 1));
        e.pump();
        e.enqueue(ack(1, 0));
        e.enqueue(ack(1, 1));
        e.enqueue(ser(2, 0));
        e.enqueue(ser(2, 1));
        e.pump();
        e.enqueue(ack(2, 0));
        e.enqueue(ack(2, 1));
        e.enqueue(fin(2));
        e.pump();
        assert_eq!(e.wait_len(), 1);
        e.enqueue(fin(1));
        e.pump();
        assert_eq!(e.wait_len(), 0);
        assert_eq!(e.stats().fins, 2);
        assert!(e.ser_log().check().is_ok());
    }

    #[test]
    fn scheme3_dense_blocks_exactly_the_nonserializable_order() {
        let mut e = Gtm2::new(Box::new(Scheme3Dense::new()));
        e.set_validate(true);
        e.enqueue(init(1, &[0, 1]));
        e.enqueue(init(2, &[0, 1]));
        e.enqueue(ser(1, 0));
        e.pump();
        e.enqueue(ack(1, 0));
        e.pump();
        e.enqueue(ser(2, 1));
        e.pump();
        assert_eq!(e.stats().waited, 1, "unsafe ser must wait");
        e.enqueue(ser(1, 1));
        e.pump();
        e.enqueue(ack(1, 1));
        let fx = e.pump();
        assert!(fx.contains(&SchemeEffect::SubmitSer {
            txn: g(2),
            site: s(1)
        }));
        assert!(e.ser_log().check().is_ok());
    }

    #[test]
    fn scheme3_dense_ser_bef_accessor_and_recycling() {
        let mut scheme = Scheme3Dense::new();
        let mut steps = StepCounter::new();
        scheme.act(&init(1, &[0]), &mut steps);
        scheme.act(&init(2, &[0]), &mut steps);
        scheme.act(&ser(1, 0), &mut steps);
        assert!(scheme.ser_bef(g(2)).contains(&g(1)));
        assert!(scheme.ser_bef(g(1)).is_empty());
        // Recycle G1's slot: a fresh transaction must inherit nothing.
        scheme.act(&ser(2, 0), &mut steps);
        scheme.act(&ack(1, 0), &mut steps);
        scheme.act(&ack(2, 0), &mut steps);
        scheme.act(&fin(1), &mut steps);
        scheme.act(&init(3, &[0]), &mut steps);
        assert!(
            scheme.ser_bef(g(3)).contains(&g(2)),
            "G2 is site 0's last event"
        );
        assert!(!scheme.ser_bef(g(3)).contains(&g(1)), "G1 is gone");
        scheme.debug_validate();
    }

    /// The load-bearing invariant, in miniature: a fixed mixed workload
    /// produces byte-identical steps, stats, and effects on both kernels
    /// of every conservative scheme. (The full randomized version lives in
    /// `tests/kernel_equivalence.rs`.)
    #[test]
    fn fixed_script_matches_reference_kernels() {
        let script: Vec<QueueOp> = vec![
            init(1, &[0, 1]),
            init(2, &[0, 1]),
            init(3, &[1, 2]),
            ser(1, 0),
            ser(2, 1),
            ack(1, 0),
            ser(1, 1),
            ack(1, 1),
            ser(2, 0),
            ack(2, 1),
            ack(2, 0),
            ser(3, 1),
            ser(3, 2),
            ack(3, 1),
            ack(3, 2),
            fin(1),
            fin(2),
            fin(3),
            // Recycled ids after fin.
            init(4, &[0, 2]),
            ser(4, 0),
            ack(4, 0),
            ser(4, 2),
            ack(4, 2),
            fin(4),
        ];
        for kind in SchemeKind::CONSERVATIVE {
            let mut reference = Gtm2::new(kind.build_kernel(KernelKind::BTree));
            let mut dense = Gtm2::new(kind.build_kernel(KernelKind::Dense));
            reference.set_validate(true);
            dense.set_validate(true);
            for op in &script {
                reference.enqueue(op.clone());
                dense.enqueue(op.clone());
                let fx_ref = reference.pump();
                let fx_dense = dense.pump();
                assert_eq!(fx_ref, fx_dense, "{kind}: effects diverged on {op:?}");
            }
            assert_eq!(
                reference.steps(),
                dense.steps(),
                "{kind}: step counters diverged"
            );
            assert_eq!(
                reference.stats(),
                dense.stats(),
                "{kind}: engine stats diverged"
            );
            assert_eq!(
                reference.ser_log().events(),
                dense.ser_log().events(),
                "{kind}: serialization order diverged"
            );
        }
    }
}
