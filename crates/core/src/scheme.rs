//! The conservative-scheme abstraction (Section 4 of the paper).
//!
//! A scheme is specified by its data structures plus `cond(o_j)` /
//! `act(o_j)` for the four queue operation kinds — exactly how the paper
//! specifies Schemes 0–3. One shared engine ([`crate::gtm2::Gtm2`]) runs
//! the Basic_Scheme loop of Figure 3 over any [`Gtm2Scheme`].
//!
//! The paper's complexity accounting charges a scheme for (1) `cond`
//! evaluations, (2) `act` executions, and (3) the work of determining which
//! waiting operations became eligible after an `act`. Point (3) is exposed
//! as [`Gtm2Scheme::wake_candidates`]: after `act(o)`, the scheme names the
//! waiting operations whose `cond` could have turned true. Scheme 0 returns
//! a single candidate (the new queue front) — that is how it achieves
//! `O(1)` wait rescans; a naive scheme may return
//! [`WakeCandidates::All`].

use mdbs_common::ids::{GlobalTxnId, SiteId};
use mdbs_common::instrument::Registry;
use mdbs_common::ops::{QueueOp, QueueOpKind};
use mdbs_common::step::StepCounter;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};

/// Unique identity of a queue operation (for the WAIT set). `site` is
/// `None` for `Init`/`Fin`.
pub type WaitKey = (QueueOpKind, GlobalTxnId, Option<SiteId>);

/// Compute the wait key of an operation.
pub fn wait_key(op: &QueueOp) -> WaitKey {
    (op.kind(), op.txn(), op.site())
}

/// The WAIT set: waiting operations keyed by identity, with deterministic
/// iteration order.
///
/// Beyond the key-ordered map, the set maintains per-site/per-txn counters
/// so schemes can charge their wake-scan steps (`|ser waiters at s_k|`,
/// `|fin waiters|`, …) in O(log n) instead of allocating the key vector
/// they are about to count — see [`WaitSet::resolve_into`] for the
/// allocation-free companion that materializes candidates into a reused
/// buffer.
#[derive(Clone, Debug, Default)]
pub struct WaitSet {
    ops: BTreeMap<WaitKey, QueueOp>,
    /// Waiting `Ser` count per site.
    ser_at: BTreeMap<SiteId, usize>,
    /// Waiting `Ser` count per transaction.
    ser_of: BTreeMap<GlobalTxnId, usize>,
    /// Waiting `Fin` count.
    fins: usize,
    /// Waiting `Init` count.
    inits: usize,
}

impl WaitSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    fn count(&mut self, key: &WaitKey, delta: isize) {
        match key.0 {
            QueueOpKind::Ser => {
                if let Some(site) = key.2 {
                    let c = self.ser_at.entry(site).or_default();
                    *c = c.wrapping_add_signed(delta);
                    if *c == 0 {
                        self.ser_at.remove(&site);
                    }
                }
                let c = self.ser_of.entry(key.1).or_default();
                *c = c.wrapping_add_signed(delta);
                if *c == 0 {
                    self.ser_of.remove(&key.1);
                }
            }
            QueueOpKind::Fin => self.fins = self.fins.wrapping_add_signed(delta),
            QueueOpKind::Init => self.inits = self.inits.wrapping_add_signed(delta),
            QueueOpKind::Ack => {}
        }
    }

    /// Insert a waiting operation.
    pub fn insert(&mut self, op: QueueOp) {
        let key = wait_key(&op);
        if self.ops.insert(key, op).is_none() {
            self.count(&key, 1);
        }
    }

    /// Remove by key, returning the operation.
    pub fn remove(&mut self, key: &WaitKey) -> Option<QueueOp> {
        let removed = self.ops.remove(key);
        if removed.is_some() {
            self.count(key, -1);
        }
        removed
    }

    /// Number of waiting operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Iterate the waiting operations in key order.
    pub fn iter(&self) -> impl Iterator<Item = &QueueOp> {
        self.ops.values()
    }

    /// All keys in order.
    pub fn keys(&self) -> Vec<WaitKey> {
        self.ops.keys().copied().collect()
    }

    /// Keys of waiting `Ser` operations at `site`.
    pub fn ser_keys_at(&self, site: SiteId) -> Vec<WaitKey> {
        self.ops
            .keys()
            .copied()
            .filter(|(kind, _, s)| *kind == QueueOpKind::Ser && *s == Some(site))
            .collect()
    }

    /// Keys of waiting `Fin` operations.
    pub fn fin_keys(&self) -> Vec<WaitKey> {
        self.ops
            .keys()
            .copied()
            .filter(|(kind, ..)| *kind == QueueOpKind::Fin)
            .collect()
    }

    /// Keys of waiting `Init` operations.
    pub fn init_keys(&self) -> Vec<WaitKey> {
        self.ops
            .keys()
            .copied()
            .filter(|(kind, ..)| *kind == QueueOpKind::Init)
            .collect()
    }

    /// Keys of waiting `Ser` operations of one transaction.
    pub fn ser_keys_of(&self, txn: GlobalTxnId) -> Vec<WaitKey> {
        self.ops
            .keys()
            .copied()
            .filter(|(kind, t, _)| *kind == QueueOpKind::Ser && *t == txn)
            .collect()
    }

    /// Key of a specific waiting `Ser` operation if present.
    pub fn ser_key(&self, txn: GlobalTxnId, site: SiteId) -> Option<WaitKey> {
        let key = (QueueOpKind::Ser, txn, Some(site));
        self.ops.contains_key(&key).then_some(key)
    }

    /// Number of waiting `Ser` operations at `site` (O(log n), maintained).
    pub fn ser_count_at(&self, site: SiteId) -> usize {
        self.ser_at.get(&site).copied().unwrap_or(0)
    }

    /// Number of waiting `Ser` operations of `txn` (O(log n), maintained).
    pub fn ser_count_of(&self, txn: GlobalTxnId) -> usize {
        self.ser_of.get(&txn).copied().unwrap_or(0)
    }

    /// Number of waiting `Fin` operations (O(1), maintained).
    pub fn fin_count(&self) -> usize {
        self.fins
    }

    /// Number of waiting `Init` operations (O(1), maintained).
    pub fn init_count(&self) -> usize {
        self.inits
    }

    fn kind_range(
        &self,
        kind: QueueOpKind,
    ) -> std::collections::btree_map::Range<'_, WaitKey, QueueOp> {
        let lo = (kind, GlobalTxnId(0), None);
        let hi = (kind, GlobalTxnId(u64::MAX), Some(SiteId(u32::MAX)));
        self.ops.range(lo..=hi)
    }

    /// Materialize `cands` into `out` without allocating: the symbolic
    /// variants ([`WakeCandidates::SerAt`], …) are resolved against the
    /// current WAIT set via range scans over the key-ordered map, producing
    /// exactly the keys (in exactly the order) the eager
    /// [`keys`](Self::keys)/[`ser_keys_at`](Self::ser_keys_at)-style
    /// helpers would have collected. Returns the number of keys appended.
    pub fn resolve_into(&self, cands: &WakeCandidates, out: &mut VecDeque<WaitKey>) -> usize {
        let before = out.len();
        match cands {
            WakeCandidates::None => {}
            WakeCandidates::All => out.extend(self.ops.keys().copied()),
            WakeCandidates::Keys(keys) => out.extend(keys.iter().copied()),
            WakeCandidates::One(key) => out.push_back(*key),
            WakeCandidates::SerAt(site) => out.extend(
                self.kind_range(QueueOpKind::Ser)
                    .filter(|((_, _, s), _)| *s == Some(*site))
                    .map(|(k, _)| *k),
            ),
            WakeCandidates::Fins => out.extend(self.kind_range(QueueOpKind::Fin).map(|(k, _)| *k)),
            WakeCandidates::SerAtThenFins(site) => {
                out.extend(
                    self.kind_range(QueueOpKind::Ser)
                        .filter(|((_, _, s), _)| *s == Some(*site))
                        .map(|(k, _)| *k),
                );
                out.extend(self.kind_range(QueueOpKind::Fin).map(|(k, _)| *k));
            }
            WakeCandidates::Inits => {
                out.extend(self.kind_range(QueueOpKind::Init).map(|(k, _)| *k))
            }
            WakeCandidates::SerOf(txn) => {
                let lo = (QueueOpKind::Ser, *txn, None);
                let hi = (QueueOpKind::Ser, *txn, Some(SiteId(u32::MAX)));
                out.extend(self.ops.range(lo..=hi).map(|(k, _)| *k));
            }
        }
        out.len() - before
    }
}

/// Which waiting operations may have become eligible after an `act`.
///
/// The symbolic variants (`One`, `SerAt`, `Fins`, …) describe a candidate
/// set *by predicate* instead of materializing it: the engine expands them
/// against the WAIT set via [`WaitSet::resolve_into`] into a reused buffer,
/// so a scheme's `wake_candidates` never allocates on the hot path. `Keys`
/// remains for schemes with genuinely irregular candidate sets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WakeCandidates {
    /// Nothing can have changed.
    None,
    /// Re-evaluate every waiting operation (cost: the whole WAIT set).
    All,
    /// Re-evaluate exactly these.
    Keys(Vec<WaitKey>),
    /// Re-evaluate exactly this key.
    One(WaitKey),
    /// Every waiting `Ser` at the site.
    SerAt(SiteId),
    /// Every waiting `Fin`.
    Fins,
    /// Every waiting `Ser` at the site, then every waiting `Fin` (the
    /// order Scheme 1's ack path re-tests in).
    SerAtThenFins(SiteId),
    /// Every waiting `Init`.
    Inits,
    /// Every waiting `Ser` of one transaction.
    SerOf(GlobalTxnId),
}

/// Conservative bound on *where* the keys returned by
/// [`Gtm2Scheme::wake_candidates`] can live, as a function of the acted
/// operation's kind.
///
/// The sharded engine ([`crate::sharded::ShardedGtm2`]) partitions the
/// WAIT set by site; after an `act` it consults this bound to decide which
/// other partitions need a cross-shard handoff. A scheme that over-claims
/// (says a partition cannot hold candidates when it can) loses wakeups —
/// the differential-equivalence suite exists to catch exactly that — while
/// [`WakeScope::ANYWHERE`] is always safe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WakeScope {
    /// Candidates may include `ser`/`ack` keys at the acted operation's
    /// own site.
    pub acted_site: bool,
    /// Candidates may include siteless keys (`init`/`fin` waiters).
    pub siteless: bool,
    /// Candidates may include keys at arbitrary other sites.
    pub elsewhere: bool,
}

impl WakeScope {
    /// No constraint — candidates can be anywhere (the safe default).
    pub const ANYWHERE: WakeScope = WakeScope {
        acted_site: true,
        siteless: true,
        elsewhere: true,
    };
    /// The act never wakes anything.
    pub const NOTHING: WakeScope = WakeScope {
        acted_site: false,
        siteless: false,
        elsewhere: false,
    };
    /// Only waiters keyed to the acted operation's own site.
    pub const ACTED_SITE: WakeScope = WakeScope {
        acted_site: true,
        siteless: false,
        elsewhere: false,
    };
    /// Only siteless waiters (`init`/`fin` keys).
    pub const SITELESS: WakeScope = WakeScope {
        acted_site: false,
        siteless: true,
        elsewhere: false,
    };
    /// Acted-site and siteless waiters, but nothing at other sites.
    pub const ACTED_SITE_AND_SITELESS: WakeScope = WakeScope {
        acted_site: true,
        siteless: true,
        elsewhere: false,
    };
}

/// How a queue operation violated the GTM2 protocol (malformed input —
/// distinct from scheduling decisions, which never produce these).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProtocolViolationKind {
    /// An `ack` referenced a site the scheme has no queue/bookkeeping for.
    UnknownSite,
    /// An `ack` arrived for a transaction that is queued at the site but
    /// not at the front — acknowledgements must match submission order.
    AckOutOfOrder,
    /// An `ack` arrived for a transaction with no pending `ser` at the
    /// site at all.
    AckNotQueued,
    /// A `fin` arrived with no matching active transaction.
    UnmatchedFin,
    /// A `ser` arrived for a transaction whose `init` was never
    /// processed — GTM1 must announce a transaction before serializing it.
    SerWithoutInit,
    /// Internal dependency accounting desynced: a checked decrement in the
    /// dense TSGD's `remove_txn` found its counter already at zero. Never
    /// produced on well-formed inputs; counted instead of panicking in the
    /// scheduler.
    DesyncedDependency,
}

impl std::fmt::Display for ProtocolViolationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ProtocolViolationKind::UnknownSite => "ack for unknown site",
            ProtocolViolationKind::AckOutOfOrder => "ack out of submission order",
            ProtocolViolationKind::AckNotQueued => "ack with no pending ser",
            ProtocolViolationKind::UnmatchedFin => "fin with no active txn",
            ProtocolViolationKind::SerWithoutInit => "ser before init",
            ProtocolViolationKind::DesyncedDependency => "dependency accounting desynced",
        };
        f.write_str(s)
    }
}

/// Effects an `act` can request from the surrounding system.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchemeEffect {
    /// Submit `ser_k(G_i)` to the local DBMS through the site's server.
    SubmitSer {
        /// Transaction whose serialization event runs.
        txn: GlobalTxnId,
        /// Site of the event.
        site: SiteId,
    },
    /// Forward `ack(ser_k(G_i))` to GTM1.
    ForwardAck {
        /// Transaction acknowledged.
        txn: GlobalTxnId,
        /// Site acknowledging.
        site: SiteId,
    },
    /// Abort the global transaction (non-conservative baselines only; the
    /// paper's conservative schemes never emit this).
    AbortGlobal {
        /// Victim.
        txn: GlobalTxnId,
    },
    /// The operation was malformed with respect to the GTM2 protocol
    /// (e.g. an out-of-order or unknown-site `ack`). The scheme keeps its
    /// data structures consistent and reports instead of panicking; the
    /// engine counts these in `Gtm2Stats::protocol_violations`.
    ProtocolViolation {
        /// Transaction named by the offending operation.
        txn: GlobalTxnId,
        /// Site named by the offending operation, if any.
        site: Option<SiteId>,
        /// What was violated.
        kind: ProtocolViolationKind,
    },
}

/// A GTM2 scheduling scheme: data structures plus `cond`/`act`.
pub trait Gtm2Scheme {
    /// Display name ("Scheme 0", ...).
    fn name(&self) -> &'static str;

    /// Evaluate `cond(op)` over the scheme's data structures. Must be free
    /// of side effects on scheduling state; charges its work to `steps`.
    fn cond(&self, op: &QueueOp, steps: &mut StepCounter) -> bool;

    /// Execute `act(op)`, mutating the data structures and returning
    /// effects. Only called when `cond(op)` holds.
    fn act(&mut self, op: &QueueOp, steps: &mut StepCounter) -> Vec<SchemeEffect>;

    /// After `act(acted)`, which waiting operations might now satisfy their
    /// `cond`? Charged to `steps` as wait-scan work.
    fn wake_candidates(
        &self,
        acted: &QueueOp,
        wait: &WaitSet,
        steps: &mut StepCounter,
    ) -> WakeCandidates {
        let _ = acted;
        steps.bump(mdbs_common::step::StepKind::WaitScan, wait.len() as u64);
        WakeCandidates::All
    }

    /// Bound on where [`wake_candidates`](Self::wake_candidates) keys can
    /// live after acting an operation of kind `kind` — consulted by the
    /// sharded engine to suppress cross-shard handoffs that provably
    /// cannot wake anyone. The default gives no guarantee.
    fn wake_scope(&self, kind: QueueOpKind) -> WakeScope {
        let _ = kind;
        WakeScope::ANYWHERE
    }

    /// Internal consistency check, called by the engine after every act in
    /// tests. Panics on violation.
    fn debug_validate(&self) {}

    /// Export scheme-internal counters (cache hit rates, recompute counts)
    /// into `registry`. Called once by the engine's own `export_metrics`;
    /// the default exports nothing.
    fn export_metrics(&self, registry: &mut Registry) {
        let _ = registry;
    }
}

/// Wraps a scheme, discarding its wake hints in favor of re-examining the
/// whole WAIT set after every act — the naive reading of Figure 3's inner
/// loop. Behaviorally identical to the wrapped scheme (property-tested),
/// but pays `O(|WAIT|)` rescan steps per act; the EXP-WAIT experiment uses
/// it to measure what the paper's wake-targeting accounting saves.
pub struct FullRescan(pub Box<dyn Gtm2Scheme + Send>);

impl Gtm2Scheme for FullRescan {
    fn name(&self) -> &'static str {
        self.0.name()
    }
    fn cond(&self, op: &QueueOp, steps: &mut StepCounter) -> bool {
        self.0.cond(op, steps)
    }
    fn act(&mut self, op: &QueueOp, steps: &mut StepCounter) -> Vec<SchemeEffect> {
        self.0.act(op, steps)
    }
    fn wake_candidates(
        &self,
        _acted: &QueueOp,
        wait: &WaitSet,
        steps: &mut StepCounter,
    ) -> WakeCandidates {
        steps.bump(mdbs_common::step::StepKind::WaitScan, wait.len() as u64);
        WakeCandidates::All
    }
    fn debug_validate(&self) {
        self.0.debug_validate();
    }
    fn export_metrics(&self, registry: &mut Registry) {
        self.0.export_metrics(registry);
    }
}

/// Which data-structure realization of a scheme to instantiate.
///
/// Both kernels implement the *same* scheme — identical `cond`/`act`
/// decisions and bit-for-bit identical paper-step accounting (property
/// tested in `tests/kernel_equivalence.rs`). They differ only in machine
/// cost: the `BTree` kernels realize the paper's sets as id-keyed
/// `BTreeMap`/`BTreeSet`; the `Dense` kernels intern live ids into compact
/// slots ([`mdbs_common::DenseInterner`]) and run the set algebra on
/// bitsets ([`mdbs_common::DenseBitSet`]), making the per-op hot path
/// allocation-free.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KernelKind {
    /// Reference kernels: id-keyed ordered maps/sets. Kept as the oracle.
    BTree,
    /// Interned-slot + bitset kernels (the default). Scheme 2 runs the
    /// incremental path: cursor-amortized `Eliminate_Cycles` plus batched
    /// online maintenance of the dependency order.
    Dense,
    /// Dense kernels with Scheme 2 on the full-rescan `Eliminate_Cycles`
    /// (PR 5 behaviour) — the second oracle pinning the incremental path.
    /// Identical to [`KernelKind::Dense`] for every other scheme.
    DenseMemo,
}

impl KernelKind {
    /// Display name ("btree" / "dense" / "dense-memo").
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::BTree => "btree",
            KernelKind::Dense => "dense",
            KernelKind::DenseMemo => "dense-memo",
        }
    }
}

impl std::fmt::Display for KernelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Enumeration of the provided GTM2 schemes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchemeKind {
    /// Scheme 0 — per-site FIFO queues (conservative-TO-like).
    Scheme0,
    /// Scheme 1 — transaction-site graph.
    Scheme1,
    /// Scheme 2 — TSG with dependencies.
    Scheme2,
    /// Ablation: Scheme 2 with exact minimum Δ (Theorem 7's NP-hard
    /// variant) instead of `Eliminate_Cycles`.
    Scheme2Minimal,
    /// Historical negative baseline: the naive BS88-style site-graph
    /// scheme with fin-time edge deletion — **unsound** (see
    /// [`crate::scheme_sg`]); kept to demonstrate the flaw Scheme 1's
    /// delete queues fix.
    SiteGraph,
    /// Scheme 3 — the O-scheme admitting all serializable schedules.
    Scheme3,
    /// Baseline: aborting timestamp scheduler on `ser(S)`.
    AbortingTo,
    /// Baseline: optimistic validation at `fin` (ticket-method flavor).
    OptimisticTicket,
}

impl SchemeKind {
    /// The four conservative schemes of the paper.
    pub const CONSERVATIVE: [SchemeKind; 4] = [
        SchemeKind::Scheme0,
        SchemeKind::Scheme1,
        SchemeKind::Scheme2,
        SchemeKind::Scheme3,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            SchemeKind::Scheme0 => "Scheme 0",
            SchemeKind::Scheme1 => "Scheme 1",
            SchemeKind::Scheme2 => "Scheme 2",
            SchemeKind::Scheme2Minimal => "Scheme 2-MIN",
            SchemeKind::SiteGraph => "Naive-SG (BS88)",
            SchemeKind::Scheme3 => "Scheme 3",
            SchemeKind::AbortingTo => "Aborting-TO",
            SchemeKind::OptimisticTicket => "Optimistic-Ticket",
        }
    }

    /// Instantiate the scheme with the default ([`KernelKind::Dense`])
    /// kernel where one exists.
    pub fn build(self) -> Box<dyn Gtm2Scheme + Send> {
        self.build_kernel(KernelKind::Dense)
    }

    /// Instantiate the scheme on a specific kernel. Only the four
    /// conservative schemes have dense kernels; every other kind (and
    /// every kind under [`KernelKind::BTree`]) gets the reference
    /// realization.
    pub fn build_kernel(self, kernel: KernelKind) -> Box<dyn Gtm2Scheme + Send> {
        if matches!(kernel, KernelKind::Dense | KernelKind::DenseMemo) {
            match self {
                SchemeKind::Scheme0 => {
                    return Box::new(crate::kernel_dense::Scheme0Dense::new());
                }
                SchemeKind::Scheme1 => {
                    return Box::new(crate::kernel_dense::Scheme1Dense::new());
                }
                SchemeKind::Scheme2 => {
                    return Box::new(if kernel == KernelKind::DenseMemo {
                        crate::kernel_dense::Scheme2Dense::new_memo()
                    } else {
                        crate::kernel_dense::Scheme2Dense::new()
                    });
                }
                SchemeKind::Scheme3 => {
                    return Box::new(crate::kernel_dense::Scheme3Dense::new());
                }
                SchemeKind::Scheme2Minimal
                | SchemeKind::SiteGraph
                | SchemeKind::AbortingTo
                | SchemeKind::OptimisticTicket => {}
            }
        }
        match self {
            SchemeKind::Scheme0 => Box::new(crate::scheme0::Scheme0::new()),
            SchemeKind::Scheme1 => Box::new(crate::scheme1::Scheme1::new()),
            SchemeKind::Scheme2 => Box::new(crate::scheme2::Scheme2::new()),
            SchemeKind::Scheme2Minimal => Box::new(crate::scheme2::Scheme2::new_minimal()),
            SchemeKind::SiteGraph => Box::new(crate::scheme_sg::SiteGraphScheme::new()),
            SchemeKind::Scheme3 => Box::new(crate::scheme3::Scheme3::new()),
            SchemeKind::AbortingTo => Box::new(crate::baselines::AbortingTo::new()),
            SchemeKind::OptimisticTicket => Box::new(crate::baselines::OptimisticTicket::new()),
        }
    }

    /// True for the paper's conservative schemes (never abort).
    pub fn is_conservative(self) -> bool {
        !matches!(self, SchemeKind::AbortingTo | SchemeKind::OptimisticTicket)
    }
}

impl std::fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wait_set_basics() {
        let mut w = WaitSet::new();
        let op = QueueOp::Ser {
            txn: GlobalTxnId(1),
            site: SiteId(2),
        };
        w.insert(op.clone());
        assert_eq!(w.len(), 1);
        assert_eq!(w.ser_keys_at(SiteId(2)).len(), 1);
        assert_eq!(w.ser_keys_at(SiteId(3)).len(), 0);
        assert!(w.ser_key(GlobalTxnId(1), SiteId(2)).is_some());
        let key = wait_key(&op);
        assert_eq!(w.remove(&key), Some(op));
        assert!(w.is_empty());
    }

    #[test]
    fn fin_keys_filtered() {
        let mut w = WaitSet::new();
        w.insert(QueueOp::Fin {
            txn: GlobalTxnId(1),
        });
        w.insert(QueueOp::Ser {
            txn: GlobalTxnId(2),
            site: SiteId(0),
        });
        assert_eq!(w.fin_keys().len(), 1);
    }

    #[test]
    fn counters_and_resolve_match_eager_helpers() {
        let mut w = WaitSet::new();
        w.insert(QueueOp::Ser {
            txn: GlobalTxnId(1),
            site: SiteId(0),
        });
        w.insert(QueueOp::Ser {
            txn: GlobalTxnId(2),
            site: SiteId(0),
        });
        w.insert(QueueOp::Ser {
            txn: GlobalTxnId(2),
            site: SiteId(1),
        });
        w.insert(QueueOp::Fin {
            txn: GlobalTxnId(3),
        });
        w.insert(QueueOp::Init {
            txn: GlobalTxnId(4),
            sites: vec![SiteId(0)],
        });
        assert_eq!(w.ser_count_at(SiteId(0)), w.ser_keys_at(SiteId(0)).len());
        assert_eq!(w.ser_count_of(GlobalTxnId(2)), 2);
        assert_eq!(w.fin_count(), 1);
        assert_eq!(w.init_count(), 1);

        let mut buf = VecDeque::new();
        let n = w.resolve_into(&WakeCandidates::SerAtThenFins(SiteId(0)), &mut buf);
        let mut expect = w.ser_keys_at(SiteId(0));
        expect.extend(w.fin_keys());
        assert_eq!(n, expect.len());
        assert_eq!(Vec::from(buf.clone()), expect);

        buf.clear();
        w.resolve_into(&WakeCandidates::SerOf(GlobalTxnId(2)), &mut buf);
        assert_eq!(Vec::from(buf.clone()), w.ser_keys_of(GlobalTxnId(2)));

        buf.clear();
        w.resolve_into(&WakeCandidates::Inits, &mut buf);
        assert_eq!(Vec::from(buf.clone()), w.init_keys());

        // Replacing an op must not double-count; removal must decrement.
        w.insert(QueueOp::Ser {
            txn: GlobalTxnId(1),
            site: SiteId(0),
        });
        assert_eq!(w.ser_count_at(SiteId(0)), 2);
        w.remove(&(QueueOpKind::Ser, GlobalTxnId(1), Some(SiteId(0))));
        assert_eq!(w.ser_count_at(SiteId(0)), 1);
        w.remove(&(QueueOpKind::Fin, GlobalTxnId(3), None));
        assert_eq!(w.fin_count(), 0);
    }

    #[test]
    fn scheme_kind_metadata() {
        assert!(SchemeKind::Scheme3.is_conservative());
        assert!(!SchemeKind::AbortingTo.is_conservative());
        assert_eq!(SchemeKind::CONSERVATIVE.len(), 4);
        assert_eq!(SchemeKind::Scheme1.to_string(), "Scheme 1");
    }
}
