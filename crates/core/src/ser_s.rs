//! `ser(S)` — the schedule of serialization events.
//!
//! Theorem 2 of the paper: a global schedule `S` is serializable if
//! `ser(S)` is serializable, where the operations of `ser(S)` are the
//! `ser_k(G_i)` events and two operations conflict **iff they occur at the
//! same site**. GTM2 controls the execution order of these events, so its
//! act order per site *is* the local conflict order; `ser(S)` is
//! serializable iff the union of the per-site total orders is acyclic over
//! transactions.
//!
//! [`SerSLog`] records the act order and performs that check — the
//! empirical verification of Theorems 3, 5 and 8 for each scheme.

use mdbs_common::ids::{GlobalTxnId, SiteId};
use mdbs_schedule::DiGraph;
use std::collections::BTreeMap;

/// The recorded `ser(S)`: per-site sequences of serialization events in
/// execution (act) order.
#[derive(Clone, Debug, Default)]
pub struct SerSLog {
    per_site: BTreeMap<SiteId, Vec<GlobalTxnId>>,
    total: Vec<(GlobalTxnId, SiteId)>,
}

impl SerSLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that `ser_site(txn)` was acted (submitted for execution).
    pub fn record(&mut self, txn: GlobalTxnId, site: SiteId) {
        self.per_site.entry(site).or_default().push(txn);
        self.total.push((txn, site));
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.total.len()
    }

    /// True iff nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total.is_empty()
    }

    /// All events in global act order.
    pub fn events(&self) -> &[(GlobalTxnId, SiteId)] {
        &self.total
    }

    /// The event sequence of one site.
    pub fn site_order(&self, site: SiteId) -> &[GlobalTxnId] {
        self.per_site.get(&site).map_or(&[], Vec::as_slice)
    }

    /// Build the serialization graph of `ser(S)`: an edge `a -> b` iff `a`
    /// precedes `b` at some site (all same-site pairs conflict).
    pub fn graph(&self) -> DiGraph<GlobalTxnId> {
        let mut g = DiGraph::new();
        for (txn, _) in &self.total {
            g.add_node(*txn);
        }
        for order in self.per_site.values() {
            for (i, &a) in order.iter().enumerate() {
                for &b in order.iter().skip(i + 1) {
                    if a != b {
                        g.add_edge(a, b);
                    }
                }
            }
        }
        g
    }

    /// Check serializability of the recorded `ser(S)`. Returns the witness
    /// total order (Theorem 1's total order on global transactions), or the
    /// offending cycle.
    pub fn check(&self) -> Result<Vec<GlobalTxnId>, Vec<GlobalTxnId>> {
        let g = self.graph();
        g.topo_sort()
            // mdbs-lint: allow(no-panic-in-scheduler) — a failed topo_sort means the graph is cyclic, so find_cycle always succeeds.
            .ok_or_else(|| g.find_cycle().expect("cyclic graph has a cycle"))
    }

    /// Check serializability of the *committed projection* of `ser(S)` —
    /// events of aborted transactions excluded. Non-conservative baselines
    /// execute events of transactions they later abort, so their
    /// correctness claim is over this projection (exactly like the
    /// committed projection of a history).
    pub fn check_excluding(
        &self,
        aborted: &[GlobalTxnId],
    ) -> Result<Vec<GlobalTxnId>, Vec<GlobalTxnId>> {
        let mut g = self.graph();
        for t in aborted {
            g.remove_node(*t);
        }
        g.topo_sort()
            // mdbs-lint: allow(no-panic-in-scheduler) — same invariant as `check`: a failed topo_sort guarantees a cycle exists.
            .ok_or_else(|| g.find_cycle().expect("cyclic graph has a cycle"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(i: u64) -> GlobalTxnId {
        GlobalTxnId(i)
    }
    fn s(i: u32) -> SiteId {
        SiteId(i)
    }

    #[test]
    fn consistent_orders_serializable() {
        let mut log = SerSLog::new();
        log.record(g(1), s(0));
        log.record(g(1), s(1));
        log.record(g(2), s(0));
        log.record(g(2), s(1));
        let order = log.check().expect("serializable");
        let pos = |t| order.iter().position(|&x| x == t).unwrap();
        assert!(pos(g(1)) < pos(g(2)));
    }

    #[test]
    fn opposite_orders_cycle() {
        let mut log = SerSLog::new();
        log.record(g(1), s(0));
        log.record(g(2), s(0));
        log.record(g(2), s(1));
        log.record(g(1), s(1));
        let cycle = log.check().expect_err("must cycle");
        assert_eq!(cycle.len(), 2);
    }

    #[test]
    fn single_site_is_always_serializable() {
        let mut log = SerSLog::new();
        for i in (1..=5).rev() {
            log.record(g(i), s(0));
        }
        assert_eq!(log.check().unwrap(), vec![g(5), g(4), g(3), g(2), g(1)]);
    }

    #[test]
    fn disjoint_sites_never_conflict() {
        let mut log = SerSLog::new();
        log.record(g(1), s(0));
        log.record(g(2), s(1));
        assert!(log.check().is_ok());
        assert_eq!(log.graph().edge_count(), 0);
    }

    #[test]
    fn site_order_accessor() {
        let mut log = SerSLog::new();
        log.record(g(2), s(3));
        log.record(g(1), s(3));
        assert_eq!(log.site_order(s(3)), &[g(2), g(1)]);
        assert_eq!(log.site_order(s(9)), &[] as &[GlobalTxnId]);
        assert_eq!(log.len(), 2);
    }
}
