//! `ser(S)` — the schedule of serialization events.
//!
//! Theorem 2 of the paper: a global schedule `S` is serializable if
//! `ser(S)` is serializable, where the operations of `ser(S)` are the
//! `ser_k(G_i)` events and two operations conflict **iff they occur at the
//! same site**. GTM2 controls the execution order of these events, so its
//! act order per site *is* the local conflict order; `ser(S)` is
//! serializable iff the union of the per-site total orders is acyclic over
//! transactions.
//!
//! [`SerSLog`] records the act order and performs that check — the
//! empirical verification of Theorems 3, 5 and 8 for each scheme.

use mdbs_common::ids::{GlobalTxnId, SiteId};
use mdbs_schedule::DiGraph;
use std::collections::BTreeMap;

/// The recorded `ser(S)`: per-site sequences of serialization events in
/// execution (act) order.
#[derive(Clone, Debug, Default)]
pub struct SerSLog {
    per_site: BTreeMap<SiteId, Vec<GlobalTxnId>>,
    total: Vec<(GlobalTxnId, SiteId)>,
}

impl SerSLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that `ser_site(txn)` was acted (submitted for execution).
    pub fn record(&mut self, txn: GlobalTxnId, site: SiteId) {
        self.per_site.entry(site).or_default().push(txn);
        self.total.push((txn, site));
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.total.len()
    }

    /// True iff nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total.is_empty()
    }

    /// All events in global act order.
    pub fn events(&self) -> &[(GlobalTxnId, SiteId)] {
        &self.total
    }

    /// The event sequence of one site.
    pub fn site_order(&self, site: SiteId) -> &[GlobalTxnId] {
        self.per_site.get(&site).map_or(&[], Vec::as_slice)
    }

    /// Build the serialization graph of `ser(S)` in transitive-reduction
    /// form: per site, an edge between *consecutive* events only. A site's
    /// act order is a total order, so its full conflict relation is the
    /// transitive closure of this chain — reachability (and therefore the
    /// acyclicity verdict and any topological witness) is identical, while
    /// construction is `O(events)` instead of `O(events²)` per site. The
    /// quadratic all-pairs build used to dominate large-replay wall-clock
    /// (~97% of Scheme 0 at 1000 txns) and capped every engine speedup.
    pub fn graph(&self) -> DiGraph<GlobalTxnId> {
        self.graph_excluding(&[])
    }

    /// [`graph`](SerSLog::graph) over the committed projection: events of
    /// `aborted` transactions are dropped *before* chaining, so surviving
    /// neighbours of an excluded event stay connected (removing a node
    /// from an already-built chain would break transitivity).
    pub fn graph_excluding(&self, aborted: &[GlobalTxnId]) -> DiGraph<GlobalTxnId> {
        let mut g = DiGraph::new();
        for (txn, _) in &self.total {
            if !aborted.contains(txn) {
                g.add_node(*txn);
            }
        }
        for order in self.per_site.values() {
            let mut prev: Option<GlobalTxnId> = None;
            for &b in order.iter().filter(|t| !aborted.contains(t)) {
                if let Some(a) = prev {
                    if a != b {
                        g.add_edge(a, b);
                    }
                }
                prev = Some(b);
            }
        }
        g
    }

    /// Check serializability of the recorded `ser(S)`. Returns the witness
    /// total order (Theorem 1's total order on global transactions), or the
    /// offending cycle.
    pub fn check(&self) -> Result<Vec<GlobalTxnId>, Vec<GlobalTxnId>> {
        self.check_excluding(&[])
    }

    /// Check serializability of the *committed projection* of `ser(S)` —
    /// events of aborted transactions excluded. Non-conservative baselines
    /// execute events of transactions they later abort, so their
    /// correctness claim is over this projection (exactly like the
    /// committed projection of a history).
    pub fn check_excluding(
        &self,
        aborted: &[GlobalTxnId],
    ) -> Result<Vec<GlobalTxnId>, Vec<GlobalTxnId>> {
        let g = self.graph_excluding(aborted);
        g.topo_sort()
            // mdbs-lint: allow(no-panic-in-scheduler) — a failed topo_sort means the graph is cyclic, so find_cycle always succeeds.
            .ok_or_else(|| g.find_cycle().expect("cyclic graph has a cycle"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(i: u64) -> GlobalTxnId {
        GlobalTxnId(i)
    }
    fn s(i: u32) -> SiteId {
        SiteId(i)
    }

    #[test]
    fn consistent_orders_serializable() {
        let mut log = SerSLog::new();
        log.record(g(1), s(0));
        log.record(g(1), s(1));
        log.record(g(2), s(0));
        log.record(g(2), s(1));
        let order = log.check().expect("serializable");
        let pos = |t| order.iter().position(|&x| x == t).unwrap();
        assert!(pos(g(1)) < pos(g(2)));
    }

    #[test]
    fn opposite_orders_cycle() {
        let mut log = SerSLog::new();
        log.record(g(1), s(0));
        log.record(g(2), s(0));
        log.record(g(2), s(1));
        log.record(g(1), s(1));
        let cycle = log.check().expect_err("must cycle");
        assert_eq!(cycle.len(), 2);
    }

    #[test]
    fn single_site_is_always_serializable() {
        let mut log = SerSLog::new();
        for i in (1..=5).rev() {
            log.record(g(i), s(0));
        }
        assert_eq!(log.check().unwrap(), vec![g(5), g(4), g(3), g(2), g(1)]);
    }

    #[test]
    fn disjoint_sites_never_conflict() {
        let mut log = SerSLog::new();
        log.record(g(1), s(0));
        log.record(g(2), s(1));
        assert!(log.check().is_ok());
        assert_eq!(log.graph().edge_count(), 0);
    }

    /// The chain-edge graph must give the same acyclicity verdict as the
    /// full all-pairs conflict graph it is the transitive reduction of —
    /// including under exclusion, where events must be filtered *before*
    /// chaining.
    #[test]
    fn chain_graph_verdict_matches_all_pairs() {
        let mut state = 0x5e75u64;
        let mut next = move || {
            state = state.wrapping_add(1);
            mdbs_common::rng::splitmix64(state)
        };
        for case in 0..200u64 {
            let mut log = SerSLog::new();
            let txns = 2 + (next() % 8);
            let sites = 1 + (next() % 4) as u32;
            for _ in 0..(txns * 2) {
                log.record(g(1 + next() % txns), s((next() % u64::from(sites)) as u32));
            }
            let aborted: Vec<GlobalTxnId> = (1..=txns).filter(|_| next() % 4 == 0).map(g).collect();
            // Brute-force all-pairs graph over the committed projection.
            let mut full = DiGraph::new();
            for (txn, _) in log.events() {
                if !aborted.contains(txn) {
                    full.add_node(*txn);
                }
            }
            for (_, order) in log.per_site.iter() {
                let kept: Vec<_> = order.iter().filter(|t| !aborted.contains(t)).collect();
                for i in 0..kept.len() {
                    for j in (i + 1)..kept.len() {
                        if kept[i] != kept[j] {
                            full.add_edge(*kept[i], *kept[j]);
                        }
                    }
                }
            }
            assert_eq!(
                log.check_excluding(&aborted).is_ok(),
                full.topo_sort().is_some(),
                "case {case}: chain and all-pairs verdicts diverge"
            );
        }
    }

    #[test]
    fn site_order_accessor() {
        let mut log = SerSLog::new();
        log.record(g(2), s(3));
        log.record(g(1), s(3));
        assert_eq!(log.site_order(s(3)), &[g(2), g(1)]);
        assert_eq!(log.site_order(s(9)), &[] as &[GlobalTxnId]);
        assert_eq!(log.len(), 2);
    }
}
