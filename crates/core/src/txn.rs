//! Global transactions and their per-site programs.

use mdbs_common::ids::{DataItemId, GlobalTxnId, SiteId};
use mdbs_localdb::serfn::SerializationEvent;
use mdbs_localdb::storage::Value;
use serde::{Deserialize, Serialize};

/// What a single step of a global transaction does at its target site.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum StepKind {
    /// Begin the subtransaction at the site.
    Begin,
    /// Read a data item.
    Read(DataItemId),
    /// Write a data item.
    Write(DataItemId, Value),
    /// Add `delta` to a data item (read-modify-write). Used by example
    /// workloads (transfers, inventory decrements); GTM1 executes it as a
    /// read followed by a write of the adjusted value.
    Add(DataItemId, Value),
    /// Commit the subtransaction at the site.
    Commit,
}

/// One sequential step of a global transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Step {
    /// Target site.
    pub site: SiteId,
    /// Action at that site.
    pub kind: StepKind,
}

impl Step {
    /// Convenience constructor.
    pub fn new(site: SiteId, kind: StepKind) -> Self {
        Step { site, kind }
    }
}

/// A global transaction: a totally ordered list of steps spanning one or
/// more sites. GTM1 executes the steps in order, one outstanding at a time
/// (the paper's submission rule), inserting serialization events where the
/// site's protocol requires them.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct GlobalTransaction {
    /// Identifier.
    pub id: GlobalTxnId,
    /// The program.
    pub steps: Vec<Step>,
}

impl GlobalTransaction {
    /// Create a transaction, validating the program shape: per site exactly
    /// one `Begin` (first step at that site) and one `Commit` (last step at
    /// that site), with accesses in between.
    pub fn new(id: GlobalTxnId, steps: Vec<Step>) -> Result<Self, String> {
        use std::collections::BTreeMap;
        #[derive(PartialEq)]
        enum Phase {
            Fresh,
            Active,
            Done,
        }
        let mut phases: BTreeMap<SiteId, Phase> = BTreeMap::new();
        if steps.is_empty() {
            return Err(format!("{id}: empty program"));
        }
        for step in &steps {
            let p = phases.entry(step.site).or_insert(Phase::Fresh);
            match step.kind {
                StepKind::Begin => {
                    if *p != Phase::Fresh {
                        return Err(format!("{id}: duplicate begin at {}", step.site));
                    }
                    *p = Phase::Active;
                }
                StepKind::Read(_) | StepKind::Write(..) | StepKind::Add(..) => {
                    if *p != Phase::Active {
                        return Err(format!(
                            "{id}: access outside begin/commit at {}",
                            step.site
                        ));
                    }
                }
                StepKind::Commit => {
                    if *p != Phase::Active {
                        return Err(format!("{id}: commit without begin at {}", step.site));
                    }
                    *p = Phase::Done;
                }
            }
        }
        for (site, p) in &phases {
            if *p != Phase::Done {
                return Err(format!("{id}: subtransaction at {site} never commits"));
            }
        }
        Ok(GlobalTransaction { id, steps })
    }

    /// Builder: start a program.
    pub fn builder(id: GlobalTxnId) -> GlobalTxnBuilder {
        GlobalTxnBuilder {
            id,
            steps: Vec::new(),
        }
    }

    /// The distinct sites this transaction executes at, ascending. This is
    /// the site set announced in `init_i` (the contents of `Ĝ_i`).
    pub fn sites(&self) -> Vec<SiteId> {
        let mut sites: Vec<SiteId> = self.steps.iter().map(|s| s.site).collect();
        sites.sort_unstable();
        sites.dedup();
        sites
    }

    /// `d_i` — the number of sites, i.e. the number of operations of `Ĝ_i`.
    pub fn degree(&self) -> usize {
        self.sites().len()
    }
}

/// Builder for [`GlobalTransaction`] programs that handles per-site
/// begin/commit bracketing automatically.
#[derive(Clone, Debug)]
pub struct GlobalTxnBuilder {
    id: GlobalTxnId,
    steps: Vec<Step>,
}

impl GlobalTxnBuilder {
    fn ensure_begun(&mut self, site: SiteId) {
        let begun = self.steps.iter().any(|s| s.site == site);
        if !begun {
            self.steps.push(Step::new(site, StepKind::Begin));
        }
    }

    /// Append a read at `site`.
    pub fn read(mut self, site: SiteId, item: DataItemId) -> Self {
        self.ensure_begun(site);
        self.steps.push(Step::new(site, StepKind::Read(item)));
        self
    }

    /// Append a write at `site`.
    pub fn write(mut self, site: SiteId, item: DataItemId, value: Value) -> Self {
        self.ensure_begun(site);
        self.steps
            .push(Step::new(site, StepKind::Write(item, value)));
        self
    }

    /// Append a read-modify-write adding `delta` at `site`.
    pub fn add(mut self, site: SiteId, item: DataItemId, delta: Value) -> Self {
        self.ensure_begun(site);
        self.steps.push(Step::new(site, StepKind::Add(item, delta)));
        self
    }

    /// Finish: appends a commit per begun site (in site order) and
    /// validates.
    pub fn build(mut self) -> Result<GlobalTransaction, String> {
        let mut sites: Vec<SiteId> = self.steps.iter().map(|s| s.site).collect();
        sites.sort_unstable();
        sites.dedup();
        for site in sites {
            self.steps.push(Step::new(site, StepKind::Commit));
        }
        GlobalTransaction::new(self.id, self.steps)
    }
}

/// Which operation of a subtransaction serves as its serialization event —
/// re-exported shape used in system configuration. This mirrors
/// [`SerializationEvent`] but is the name applications see.
pub type SerializationFnKind = SerializationEvent;

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u32) -> SiteId {
        SiteId(i)
    }
    fn x(i: u64) -> DataItemId {
        DataItemId(i)
    }

    #[test]
    fn builder_brackets_sites() {
        let t = GlobalTransaction::builder(GlobalTxnId(1))
            .read(s(0), x(1))
            .write(s(1), x(2), 5)
            .read(s(0), x(3))
            .build()
            .unwrap();
        assert_eq!(t.sites(), vec![s(0), s(1)]);
        assert_eq!(t.degree(), 2);
        // One begin and one commit per site.
        let begins = t
            .steps
            .iter()
            .filter(|st| st.kind == StepKind::Begin)
            .count();
        let commits = t
            .steps
            .iter()
            .filter(|st| st.kind == StepKind::Commit)
            .count();
        assert_eq!(begins, 2);
        assert_eq!(commits, 2);
    }

    #[test]
    fn validation_rejects_access_after_commit() {
        let bad = vec![
            Step::new(s(0), StepKind::Begin),
            Step::new(s(0), StepKind::Commit),
            Step::new(s(0), StepKind::Read(x(1))),
        ];
        assert!(GlobalTransaction::new(GlobalTxnId(1), bad).is_err());
    }

    #[test]
    fn validation_rejects_missing_commit() {
        let bad = vec![
            Step::new(s(0), StepKind::Begin),
            Step::new(s(0), StepKind::Read(x(1))),
        ];
        assert!(GlobalTransaction::new(GlobalTxnId(1), bad).is_err());
    }

    #[test]
    fn validation_rejects_empty() {
        assert!(GlobalTransaction::new(GlobalTxnId(1), vec![]).is_err());
    }

    #[test]
    fn validation_rejects_duplicate_begin() {
        let bad = vec![
            Step::new(s(0), StepKind::Begin),
            Step::new(s(0), StepKind::Begin),
            Step::new(s(0), StepKind::Commit),
        ];
        assert!(GlobalTransaction::new(GlobalTxnId(1), bad).is_err());
    }
}
