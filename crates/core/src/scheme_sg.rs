//! The **naive** site-graph scheme — a literal reading of the
//! Breitbart–Silberschatz site graph the paper's Scheme 1 improves on
//! (its TSG is "a data structure similar to the site graph introduced in
//! \[BS88\]").
//!
//! The **site graph** has one node per site; an active global transaction
//! contributes edges connecting its sites (a path over them). A new
//! transaction may become active only if its edges keep the site graph
//! **acyclic as a multigraph**; edges are deleted when the transaction
//! finishes.
//!
//! ## This scheme is (demonstrably) unsound
//!
//! Deleting a transaction's edges at its `fin` is not safe: serialization
//! orders persist after the transaction is gone, and a cycle can thread
//! through *transitive overlap chains* — e.g. `T2 < T1` at `s1`,
//! `T1 < T3` at `s0` (T3 starts after T1's edges left the graph),
//! `T3 < T4` at `s3`, `T4 < T2` at `s2`, with the site graph a forest at
//! every instant. Experiment EXP-SG measures the violation rate; the
//! paper's Scheme 1 fixes precisely this with its **delete queues** (a
//! transaction's TSG edges leave only when its acks head every delete
//! queue, which orders fins consistently with the serialization order).
//!
//! The scheme is kept as a *negative baseline*: historically instructive,
//! high wait counts, and a concrete demonstration of why Scheme 1's
//! bookkeeping is shaped the way it is. It is not in
//! [`SchemeKind::CONSERVATIVE`](crate::scheme::SchemeKind) and must not be
//! used for correctness-critical scheduling.

use crate::scheme::{Gtm2Scheme, SchemeEffect, WaitSet, WakeCandidates};
use mdbs_common::ids::{GlobalTxnId, SiteId};
use mdbs_common::ops::QueueOp;
use mdbs_common::step::{StepCounter, StepKind};
use mdbs_schedule::UnGraph;
use std::collections::BTreeMap;

/// BS88 site-graph scheme state.
#[derive(Clone, Debug, Default)]
pub struct SiteGraphScheme {
    /// Active transactions and their site lists (init acted, fin pending).
    active: BTreeMap<GlobalTxnId, Vec<SiteId>>,
    /// Submitted-but-unacked event per site.
    outstanding: BTreeMap<SiteId, GlobalTxnId>,
}

impl SiteGraphScheme {
    /// Fresh state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Would activating `candidate` keep the site graph acyclic?
    ///
    /// The multigraph is rebuilt from the active set: each transaction
    /// contributes the path `s_1 - s_2 - … - s_d` over its (sorted) sites.
    /// A multigraph is a forest iff every added edge joins two previously
    /// disconnected components — parallel edges therefore count as cycles.
    fn admits(&self, candidate: &[SiteId], steps: &mut StepCounter) -> bool {
        let mut graph: UnGraph<SiteId> = UnGraph::new();
        let paths = self
            .active
            .values()
            .map(Vec::as_slice)
            .chain(std::iter::once(candidate));
        for path in paths {
            steps.bump(StepKind::Cond, path.len() as u64);
            for pair in path.windows(2) {
                let (a, b) = (pair[0], pair[1]);
                // Joining already-connected sites (including via a parallel
                // edge) closes a cycle.
                if graph.contains_node(a) && graph.contains_node(b) && graph.connected(a, b) {
                    return false;
                }
                graph.add_edge(a, b);
            }
            // Single-site transactions still occupy their node.
            if let [only] = path {
                graph.add_node(*only);
            }
        }
        true
    }
}

impl Gtm2Scheme for SiteGraphScheme {
    fn name(&self) -> &'static str {
        "Naive-SG (BS88)"
    }

    fn cond(&self, op: &QueueOp, steps: &mut StepCounter) -> bool {
        steps.tick(StepKind::Cond);
        match op {
            // The defining restriction: a transaction activates only when
            // the site graph stays a forest.
            QueueOp::Init { txn, sites } => {
                debug_assert!(!self.active.contains_key(txn));
                self.admits(sites, steps)
            }
            QueueOp::Ser { txn, site } => {
                // Must be active (its init may still be waiting), and the
                // site must have no outstanding event.
                self.active.contains_key(txn) && !self.outstanding.contains_key(site)
            }
            QueueOp::Ack { .. } | QueueOp::Fin { .. } => true,
        }
    }

    fn act(&mut self, op: &QueueOp, steps: &mut StepCounter) -> Vec<SchemeEffect> {
        steps.tick(StepKind::Act);
        match op {
            QueueOp::Init { txn, sites } => {
                self.active.insert(*txn, sites.clone());
                Vec::new()
            }
            QueueOp::Ser { txn, site } => {
                self.outstanding.insert(*site, *txn);
                vec![SchemeEffect::SubmitSer {
                    txn: *txn,
                    site: *site,
                }]
            }
            QueueOp::Ack { txn, site } => {
                debug_assert_eq!(self.outstanding.get(site), Some(txn));
                self.outstanding.remove(site);
                vec![SchemeEffect::ForwardAck {
                    txn: *txn,
                    site: *site,
                }]
            }
            QueueOp::Fin { txn } => {
                self.active.remove(txn);
                Vec::new()
            }
        }
    }

    fn wake_candidates(
        &self,
        acted: &QueueOp,
        wait: &WaitSet,
        steps: &mut StepCounter,
    ) -> WakeCandidates {
        steps.tick(StepKind::WaitScan);
        match acted {
            // A fin frees site-graph edges: waiting inits are candidates.
            QueueOp::Fin { .. } => {
                steps.bump(StepKind::WaitScan, wait.init_count() as u64);
                WakeCandidates::Inits
            }
            // An activated transaction's ser ops may already be waiting.
            QueueOp::Init { txn, .. } => {
                steps.bump(StepKind::WaitScan, wait.ser_count_of(*txn) as u64);
                WakeCandidates::SerOf(*txn)
            }
            QueueOp::Ack { site, .. } => {
                steps.bump(StepKind::WaitScan, wait.ser_count_at(*site) as u64);
                WakeCandidates::SerAt(*site)
            }
            QueueOp::Ser { .. } => WakeCandidates::None,
        }
    }

    fn debug_validate(&self) {
        // The active set must always form a forest.
        let mut steps = StepCounter::new();
        assert!(
            self.admits(&[], &mut steps),
            "site graph cycle among active txns"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gtm2::Gtm2;

    fn g(i: u64) -> GlobalTxnId {
        GlobalTxnId(i)
    }
    fn s(i: u32) -> SiteId {
        SiteId(i)
    }
    fn init(i: u64, sites: &[u32]) -> QueueOp {
        QueueOp::Init {
            txn: g(i),
            sites: sites.iter().map(|&k| s(k)).collect(),
        }
    }
    fn ser(i: u64, k: u32) -> QueueOp {
        QueueOp::Ser {
            txn: g(i),
            site: s(k),
        }
    }
    fn ack(i: u64, k: u32) -> QueueOp {
        QueueOp::Ack {
            txn: g(i),
            site: s(k),
        }
    }
    fn fin(i: u64) -> QueueOp {
        QueueOp::Fin { txn: g(i) }
    }

    fn engine() -> Gtm2 {
        let mut e = Gtm2::new(Box::new(SiteGraphScheme::new()));
        e.set_validate(true);
        e
    }

    /// Two transactions over the same two sites: the second INIT waits
    /// (parallel edge = cycle) — coarser than any of the paper's schemes.
    #[test]
    fn overlapping_txn_init_waits() {
        let mut e = engine();
        e.enqueue(init(1, &[0, 1]));
        e.enqueue(init(2, &[0, 1]));
        e.enqueue(ser(1, 0));
        e.pump();
        assert_eq!(e.stats().waited_kind[0], 1, "second init waits");
        e.enqueue(ack(1, 0));
        e.enqueue(ser(1, 1));
        e.pump();
        e.enqueue(ack(1, 1));
        e.enqueue(fin(1));
        let _ = e.pump();
        // G1's fin frees the edges; G2 activates.
        assert_eq!(e.stats().inits, 2);
        assert_eq!(e.wait_len(), 0);
    }

    /// Sharing one site is fine (no cycle).
    #[test]
    fn single_shared_site_concurrent() {
        let mut e = engine();
        e.enqueue(init(1, &[0, 1]));
        e.enqueue(init(2, &[1, 2]));
        e.enqueue(ser(1, 0));
        e.enqueue(ser(2, 2));
        let fx = e.pump();
        assert_eq!(fx.len(), 2);
        assert_eq!(e.stats().waited, 0);
    }

    /// A ser op arriving before its (waiting) init waits too, and both run
    /// once the graph frees up.
    #[test]
    fn ser_waits_for_waiting_init() {
        let mut e = engine();
        e.enqueue(init(1, &[0, 1]));
        e.enqueue(init(2, &[0, 1]));
        e.enqueue(ser(2, 0));
        e.pump();
        assert_eq!(e.stats().waited_kind[1], 1, "ser of inactive txn waits");
        e.enqueue(ser(1, 0));
        e.pump();
        e.enqueue(ack(1, 0));
        e.enqueue(ser(1, 1));
        e.pump();
        e.enqueue(ack(1, 1));
        e.enqueue(fin(1));
        let fx = e.pump();
        // fin(G1) -> init(G2) activates -> its waiting ser runs.
        assert!(
            fx.contains(&SchemeEffect::SubmitSer {
                txn: g(2),
                site: s(0)
            }),
            "{fx:?}"
        );
        assert!(e.ser_log().check().is_ok());
    }

    /// Three transactions forming a ring over three sites: the third init
    /// waits until one of the others finishes.
    #[test]
    fn ring_blocks_third() {
        let mut e = engine();
        e.enqueue(init(1, &[0, 1]));
        e.enqueue(init(2, &[1, 2]));
        e.enqueue(init(3, &[2, 0]));
        e.pump();
        assert_eq!(e.stats().inits, 2);
        assert_eq!(e.stats().waited_kind[0], 1);
    }
}
