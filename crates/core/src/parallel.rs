//! Genuinely-parallel replay of the partitioned schemes on the
//! work-stealing pool.
//!
//! [`replay_sharded`](crate::replay::replay_sharded) routes operations to
//! per-site shards but still pumps them from one thread; this module runs
//! the shards *concurrently* on [`mdbs_common::pool`] tasks. The paper's
//! structure is what makes that possible:
//!
//! - **Scheme 0** is zero-communication: `cond`/`act`/wake for every
//!   operation touch only one site's FIFO queue, `init`/`fin` engine
//!   bookkeeping is a handful of counters. Each site runs as an
//!   independent task over its statically-known event stream; the only
//!   shared state is the per-transaction outstanding-ack count (an
//!   atomic), which decides where the `fin` is processed.
//! - **Scheme 1** splits by data: insert queues, marks and the
//!   one-outstanding rule are per-site (site tasks), while the TSG,
//!   delete queues and fin waiters are transaction-scoped (one *domain*
//!   task). The domain walks the script in insertion order, processing
//!   `init`s itself and consuming each site's acknowledgement stream in
//!   lockstep ([`Mailbox`] wakes replace the sharded engine's handoff
//!   sweeps), so every global state transition happens in the exact order
//!   the single engine would apply it.
//! - Schemes 2/3 and the baselines have engine-global `cond`s, so they
//!   funnel through a single pool task running the standard replay —
//!   bit-identical by construction.
//!
//! ## Exactness
//!
//! Per-site `ser(S)` orders, violation counts, `waited`/`waited_kind`,
//! `enqueued`/`processed`/`inits`/`fins` and the paper-step totals
//! (`cond`/`act`/`wait_scan`, plus the wake-scan count/sum) are
//! **bit-identical** to the single engine: each charge in
//! [`Gtm2::pump`](crate::gtm2::Gtm2)'s cond/act/wake cycle is mirrored at
//! the task that owns the data it describes, and the totals are sums over
//! disjoint owners. The merged `ser_events` total order is reconstructed
//! from `(script event index, within-drain sequence)` tags — exact,
//! because every serialization event of one drain happens at one site.
//! Two documented approximations: `peak_wait` and `peak_active` are
//! maintained with atomic max over concurrent tasks, so they are valid
//! peaks of the parallel interleaving rather than the sequential one
//! (neither is a paper-step quantity; both remain exact lower bounds of
//! WAIT/active populations actually reached).
//!
//! Two charge models in Scheme 1 deserve spelling out, both proved
//! against the replay harness's structure (`fin_i` enters QUEUE only
//! after all of `Ĝ_i`'s acks were forwarded):
//!
//! - **Acks never enable waiting fins.** An ack appends to a delete
//!   queue; appends change a front only when the queue was empty, and the
//!   appended transaction's own fin cannot be waiting yet. So the
//!   per-ack fin re-tests all fail, and their step charges aggregate to
//!   `Cond += fin_live + Σ|Ĝ|` / `WaitScan += fin_live` per ack — O(1)
//!   with maintained sums, eliminating the single engine's dominant
//!   wake-storm cost while charging identical step totals.
//! - **Cycle marking via site-pair counts.** A TSG edge `(Ĝ, s_k)` lies
//!   on a cycle iff `s_k` connects to another site of `Ĝ` in TSG − Ĝ;
//!   site-to-site connectivity is the transitive closure of "some other
//!   live transaction spans both sites", maintained as per-pair counts
//!   and resolved with a union-find over the ≤ m site nodes. The
//!   prescribed `V + E` act charge is bumped from maintained node/edge
//!   counters — the paper's cost model is charged exactly while the
//!   machine does O(m²) work per init instead of a full bridge DFS.

use crate::gtm2::Gtm2Stats;
use crate::replay::{replay_kernel, ReplayOutcome, Script, ScriptEvent};
use crate::scheme::{KernelKind, SchemeKind};
use crate::ser_s::SerSLog;
use mdbs_common::ids::{GlobalTxnId, SiteId};
use mdbs_common::pool::{Mailbox, Poll, Pool};
use mdbs_common::step::{StepCounter, StepKind};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How long the pool may take to drain before the replay is declared
/// wedged (a liveness bug, mirroring the threaded runtime's deadline).
const DRAIN_DEADLINE: Duration = Duration::from_secs(60);

/// Replay `script` on `workers` pool workers. Schemes 0/1 execute
/// genuinely in parallel; every other scheme funnels through one task.
pub fn replay_parallel(kind: SchemeKind, workers: usize, script: &Script) -> ReplayOutcome {
    replay_parallel_kernel(kind, KernelKind::Dense, workers, script)
}

/// [`replay_parallel`] with an explicit kernel choice. The parallel
/// Scheme 0/1 engines implement the schemes' charge model directly (both
/// kernels charge identically by construction, which the step gate
/// pins), so the kernel only selects the funnel path's implementation.
pub fn replay_parallel_kernel(
    kind: SchemeKind,
    kernel: KernelKind,
    workers: usize,
    script: &Script,
) -> ReplayOutcome {
    match kind {
        SchemeKind::Scheme0 => scheme0_parallel(script, workers),
        SchemeKind::Scheme1 => scheme1_parallel(script, workers),
        other => funnel(other, kernel, workers, script),
    }
}

/// Run a non-partitioned scheme as a single pool task.
// mdbs-lint: allow(no-panic-in-scheduler, scope=item) — the funnel task writes its slot exactly once before the pool drains; a poisoned or empty slot means the replay already panicked and the harness must surface it
fn funnel(kind: SchemeKind, kernel: KernelKind, workers: usize, script: &Script) -> ReplayOutcome {
    let pool = Pool::new(workers);
    let slot: Arc<Mutex<Option<ReplayOutcome>>> = Arc::new(Mutex::new(None));
    let out = Arc::clone(&slot);
    let script = script.clone();
    let h = pool.spawn(move || {
        *out.lock().expect("funnel slot") = Some(replay_kernel(kind, kernel, &script));
        Poll::Done
    });
    h.wake();
    assert!(
        pool.wait_idle(DRAIN_DEADLINE),
        "parallel replay wedged (funnel)"
    );
    let mut guard = slot.lock().expect("funnel slot");
    guard.take().expect("funnel task completed")
}

// ----------------------------------------------------------------------
// Shared accounting.
// ----------------------------------------------------------------------

/// Per-task slice of the engine counters; summed at the end.
#[derive(Default)]
struct Partial {
    steps: StepCounter,
    enqueued: u64,
    processed: u64,
    waited: u64,
    waited_kind: [u64; 4],
    inits: u64,
    fins: u64,
    wake_count: u64,
    wake_sum: u64,
    /// `(script event index, within-drain seq, txn, site)` — per-site
    /// order is the emission order; the total order is the sort by the
    /// first two fields.
    ser_events: Vec<(u64, u32, GlobalTxnId, SiteId)>,
}

impl Partial {
    /// One wake-scan histogram observation of `appended` candidates.
    fn observe_wake(&mut self, appended: u64) {
        self.wake_count += 1;
        self.wake_sum += appended;
    }
}

/// Cross-task gauges (documented approximations — peaks of the parallel
/// interleaving).
#[derive(Default)]
struct Gauges {
    active: AtomicU64,
    peak_active: AtomicU64,
    wait: AtomicU64,
    peak_wait: AtomicU64,
}

impl Gauges {
    fn active_inc(&self) {
        let now = self.active.fetch_add(1, Ordering::SeqCst) + 1;
        self.peak_active.fetch_max(now, Ordering::SeqCst);
    }
    fn active_dec(&self) {
        self.active.fetch_sub(1, Ordering::SeqCst);
    }
    fn wait_inc(&self) {
        let now = self.wait.fetch_add(1, Ordering::SeqCst) + 1;
        self.peak_wait.fetch_max(now, Ordering::SeqCst);
    }
    fn wait_dec(&self) {
        self.wait.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Static per-transaction facts shared by all tasks.
struct TxnInfo {
    gid: GlobalTxnId,
    sites: Vec<SiteId>,
}

/// Index the script: transaction table + id → index map.
fn index_txns(script: &Script) -> (Vec<TxnInfo>, BTreeMap<GlobalTxnId, usize>) {
    let mut txns = Vec::new();
    let mut by_id = BTreeMap::new();
    for ev in &script.events {
        if let ScriptEvent::Init(txn, sites) = ev {
            by_id.insert(*txn, txns.len());
            txns.push(TxnInfo {
                gid: *txn,
                sites: sites.clone(),
            });
        }
    }
    (txns, by_id)
}

/// Merge the per-task partials into a [`ReplayOutcome`]. Conservative
/// schemes never abort, so the committed projection is the whole log.
fn assemble(partials: Vec<Partial>, gauges: &Gauges, txn_count: usize) -> ReplayOutcome {
    let mut steps = StepCounter::new();
    let mut stats = Gtm2Stats::default();
    let mut wake_count = 0u64;
    let mut wake_sum = 0u64;
    let mut tagged: Vec<(u64, u32, GlobalTxnId, SiteId)> = Vec::new();
    for p in partials {
        steps.merge(&p.steps);
        stats.enqueued += p.enqueued;
        stats.processed += p.processed;
        stats.waited += p.waited;
        for (dst, src) in stats.waited_kind.iter_mut().zip(p.waited_kind) {
            *dst += src;
        }
        stats.inits += p.inits;
        stats.fins += p.fins;
        wake_count += p.wake_count;
        wake_sum += p.wake_sum;
        tagged.extend(p.ser_events);
    }
    stats.peak_wait = gauges.peak_wait.load(Ordering::SeqCst);
    stats.peak_active = gauges.peak_active.load(Ordering::SeqCst);
    tagged.sort_unstable_by_key(|&(idx, seq, ..)| (idx, seq));
    let mut log = SerSLog::new();
    for &(_, _, txn, site) in &tagged {
        log.record(txn, site);
    }
    assert_eq!(
        stats.fins as usize, txn_count,
        "parallel replay lost transactions"
    );
    ReplayOutcome {
        completed: stats.fins as usize,
        ser_serializable: log.check().is_ok(),
        ser_events: tagged
            .into_iter()
            .map(|(_, _, txn, site)| (txn, site))
            .collect(),
        stats,
        steps,
        aborted: Vec::new(),
        protocol_violations: 0,
        wake_scan_count: wake_count,
        wake_scan_sum: wake_sum,
    }
}

// ----------------------------------------------------------------------
// Scheme 0 — zero-communication site tasks.
// ----------------------------------------------------------------------

/// A site-stream event for Scheme 0.
enum S0Ev {
    /// This transaction's `init` pushed it onto this site's queue. The
    /// owner site (first site of `Ĝ`) also charges the init's engine
    /// steps.
    Push { t: usize, owner: bool },
    /// `ser` insertion, tagged with its script event index.
    Ser { t: usize, idx: u64 },
}

// mdbs-lint: allow(no-panic-in-scheduler, scope=item) — txn indices are dense script positions produced by `index_txns` from the same validated script every lookup derives from; a miss is an engine bug that must fail the differential harness loudly, not degrade into a wrong-but-quiet charge count
fn scheme0_parallel(script: &Script, workers: usize) -> ReplayOutcome {
    let (txns, by_id) = index_txns(script);
    let mut streams: BTreeMap<SiteId, Vec<S0Ev>> = BTreeMap::new();
    for (idx, ev) in script.events.iter().enumerate() {
        match ev {
            ScriptEvent::Init(txn, sites) => {
                let t = by_id[txn];
                for (i, &k) in sites.iter().enumerate() {
                    streams
                        .entry(k)
                        .or_default()
                        .push(S0Ev::Push { t, owner: i == 0 });
                }
            }
            ScriptEvent::Ser(txn, site) => {
                streams.entry(*site).or_default().push(S0Ev::Ser {
                    t: by_id[txn],
                    idx: idx as u64,
                });
            }
        }
    }
    let txns = Arc::new(txns);
    let acks_left: Arc<Vec<AtomicUsize>> = Arc::new(
        txns.iter()
            .map(|t| AtomicUsize::new(t.sites.len()))
            .collect(),
    );
    let gauges = Arc::new(Gauges::default());
    let results: Arc<Mutex<Vec<Partial>>> = Arc::new(Mutex::new(Vec::new()));

    let pool = Pool::new(workers);
    let mut handles = Vec::new();
    for (site, stream) in streams {
        let mut task = S0Site {
            site,
            stream: stream.into(),
            txns: Arc::clone(&txns),
            acks_left: Arc::clone(&acks_left),
            gauges: Arc::clone(&gauges),
            results: Arc::clone(&results),
            queue: VecDeque::new(),
            waiting: BTreeSet::new(),
            p: Partial::default(),
        };
        handles.push(pool.spawn(move || task.run()));
    }
    for h in &handles {
        h.wake();
    }
    assert!(
        pool.wait_idle(DRAIN_DEADLINE),
        "parallel replay wedged (scheme 0)"
    );
    let partials = std::mem::take(&mut *results.lock().expect("scheme0 results"));
    assemble(partials, &gauges, txns.len())
}

struct S0Site {
    site: SiteId,
    stream: VecDeque<S0Ev>,
    txns: Arc<Vec<TxnInfo>>,
    acks_left: Arc<Vec<AtomicUsize>>,
    gauges: Arc<Gauges>,
    results: Arc<Mutex<Vec<Partial>>>,
    /// This site's FIFO (txn indices in init order, popped by acks).
    queue: VecDeque<usize>,
    /// Waiting `ser` operations at this site. Wake lookup is by the
    /// queue's new front only (Scheme 0's `One` candidate), so a plain
    /// set suffices.
    waiting: BTreeSet<usize>,
    p: Partial,
}

// mdbs-lint: allow(no-panic-in-scheduler, scope=item) — txn indices are dense script positions produced by `index_txns` from the same validated script every lookup derives from; a miss is an engine bug that must fail the differential harness loudly, not degrade into a wrong-but-quiet charge count
impl S0Site {
    /// The whole stream is statically known, so one run suffices.
    fn run(&mut self) -> Poll {
        while let Some(ev) = self.stream.pop_front() {
            match ev {
                S0Ev::Push { t, owner } => self.push(t, owner),
                S0Ev::Ser { t, idx } => self.ser(t, idx),
            }
        }
        assert!(self.waiting.is_empty(), "scheme0 site left ser waiters");
        assert!(self.queue.is_empty(), "scheme0 site queue not drained");
        self.results
            .lock()
            .expect("scheme0 results")
            .push(std::mem::take(&mut self.p));
        Poll::Done
    }

    /// Apply an `init` push; the owner site charges the init's engine
    /// steps (cond, act × |Ĝ|, wake scan) exactly once.
    fn push(&mut self, t: usize, owner: bool) {
        if owner {
            self.p.enqueued += 1;
            self.p.steps.tick(StepKind::Cond);
            self.p.processed += 1;
            self.p.inits += 1;
            self.gauges.active_inc();
            self.p
                .steps
                .bump(StepKind::Act, self.txns[t].sites.len() as u64);
            self.p.steps.tick(StepKind::WaitScan);
            self.p.observe_wake(0);
        }
        self.queue.push_back(t);
    }

    /// `ser` insertion: front-of-queue cond, else WAIT.
    fn ser(&mut self, t: usize, idx: u64) {
        self.p.enqueued += 1;
        self.p.steps.tick(StepKind::Cond);
        if self.queue.front() == Some(&t) {
            self.chain(t, idx);
        } else {
            self.p.waited += 1;
            self.p.waited_kind[1] += 1;
            self.waiting.insert(t);
            self.gauges.wait_inc();
        }
    }

    /// Submit `t`, then run the ack → wake → submit chain to quiescence,
    /// mirroring the engine's cascade + the harness's zero-latency acks.
    fn chain(&mut self, t: usize, idx: u64) {
        let mut seq = 0u32;
        self.act_ser(t, idx, &mut seq);
        let mut cur = t;
        loop {
            // Ack of `cur` (harness-enqueued, always eligible).
            self.p.enqueued += 1;
            self.p.steps.tick(StepKind::Cond);
            self.p.processed += 1;
            self.p.steps.tick(StepKind::Act);
            let popped = self.queue.pop_front();
            debug_assert_eq!(popped, Some(cur));
            let fin_ready = self.acks_left[cur].fetch_sub(1, Ordering::SeqCst) == 1;
            // Wake scan: only the new front can have become eligible.
            self.p.steps.tick(StepKind::WaitScan);
            let woken = self
                .queue
                .front()
                .copied()
                .filter(|f| self.waiting.contains(f));
            self.p.observe_wake(u64::from(woken.is_some()));
            if let Some(f) = woken {
                self.waiting.remove(&f);
                self.gauges.wait_dec();
                self.p.steps.tick(StepKind::Cond);
                self.act_ser(f, idx, &mut seq);
            }
            // The fin enters QUEUE behind the cascade's submit and ahead
            // of the next ack; its processing is engine-global only, so
            // the forwarding site charges it inline.
            if fin_ready {
                self.fin_inline();
            }
            match woken {
                Some(f) => cur = f,
                None => break,
            }
        }
    }

    /// `act(ser)`: submit + record, with the act's empty wake scan.
    fn act_ser(&mut self, t: usize, idx: u64, seq: &mut u32) {
        self.p.processed += 1;
        self.p.steps.tick(StepKind::Act);
        self.p
            .ser_events
            .push((idx, *seq, self.txns[t].gid, self.site));
        *seq += 1;
        self.p.steps.tick(StepKind::WaitScan);
        self.p.observe_wake(0);
    }

    /// Process `fin` at the site that forwarded the last ack.
    fn fin_inline(&mut self) {
        self.p.enqueued += 1;
        self.p.steps.tick(StepKind::Cond);
        self.p.processed += 1;
        self.p.fins += 1;
        self.p.steps.tick(StepKind::Act);
        self.p.steps.tick(StepKind::WaitScan);
        self.p.observe_wake(0);
        self.gauges.active_dec();
    }
}

// ----------------------------------------------------------------------
// Scheme 1 — site tasks + one ordered domain task.
// ----------------------------------------------------------------------

/// Domain-side stream: the script in insertion order.
enum DomEv {
    Init {
        t: usize,
    },
    /// A `ser` script event at this site: consume that site's emission
    /// batch (acks + terminator) before advancing.
    Drain {
        site: SiteId,
    },
}

/// Site-side stream: `ser` events with the number of pushes that must
/// have been applied first (inits preceding it in the script).
struct S1SerEv {
    t: usize,
    idx: u64,
    pushes_needed: usize,
}

/// What a site tells the domain, in engine order.
enum S1Emit {
    /// An ack was acted at the site (`ForwardAck` left the scheme).
    Ack { t: usize },
    /// The drain for one script event is complete.
    End,
}

// mdbs-lint: allow(no-panic-in-scheduler, scope=item) — txn indices are dense script positions produced by `index_txns` from the same validated script every lookup derives from; a miss is an engine bug that must fail the differential harness loudly, not degrade into a wrong-but-quiet charge count
fn scheme1_parallel(script: &Script, workers: usize) -> ReplayOutcome {
    let (txns, by_id) = index_txns(script);
    let mut dom_stream: Vec<DomEv> = Vec::new();
    let mut site_streams: BTreeMap<SiteId, Vec<S1SerEv>> = BTreeMap::new();
    let mut pushes_so_far: BTreeMap<SiteId, usize> = BTreeMap::new();
    for (idx, ev) in script.events.iter().enumerate() {
        match ev {
            ScriptEvent::Init(txn, sites) => {
                dom_stream.push(DomEv::Init { t: by_id[txn] });
                for &k in sites {
                    *pushes_so_far.entry(k).or_default() += 1;
                }
            }
            ScriptEvent::Ser(txn, site) => {
                dom_stream.push(DomEv::Drain { site: *site });
                site_streams.entry(*site).or_default().push(S1SerEv {
                    t: by_id[txn],
                    idx: idx as u64,
                    pushes_needed: pushes_so_far.get(site).copied().unwrap_or(0),
                });
            }
        }
    }
    let txns = Arc::new(txns);
    let gauges = Arc::new(Gauges::default());
    let results: Arc<Mutex<Vec<Partial>>> = Arc::new(Mutex::new(Vec::new()));
    let sites: Vec<SiteId> = site_streams.keys().copied().collect();
    let push_boxes: BTreeMap<SiteId, Arc<Mailbox<(usize, bool)>>> = sites
        .iter()
        .map(|&k| (k, Arc::new(Mailbox::new())))
        .collect();
    let emit_boxes: BTreeMap<SiteId, Arc<Mailbox<S1Emit>>> = sites
        .iter()
        .map(|&k| (k, Arc::new(Mailbox::new())))
        .collect();

    let pool = Pool::new(workers);
    let mut handles = Vec::new();
    for (site, stream) in site_streams {
        let mut task = S1Site {
            site,
            stream,
            pos: 0,
            pushes_applied: 0,
            pushes: Arc::clone(&push_boxes[&site]),
            emit: Arc::clone(&emit_boxes[&site]),
            txns: Arc::clone(&txns),
            gauges: Arc::clone(&gauges),
            results: Arc::clone(&results),
            queue: VecDeque::new(),
            marked: BTreeSet::new(),
            outstanding: None,
            waiting: BTreeMap::new(),
            p: Partial::default(),
        };
        let h = pool.spawn(move || task.run());
        handles.push((site, h));
    }
    for (site, h) in &handles {
        push_boxes[site].bind(h.clone());
    }
    let mut domain = S1Domain::new(
        dom_stream,
        Arc::clone(&txns),
        push_boxes.clone(),
        emit_boxes.clone(),
        Arc::clone(&gauges),
        Arc::clone(&results),
    );
    let dh = pool.spawn(move || domain.run());
    for ebox in emit_boxes.values() {
        ebox.bind(dh.clone());
    }
    dh.wake();
    for (_, h) in &handles {
        h.wake();
    }
    assert!(
        pool.wait_idle(DRAIN_DEADLINE),
        "parallel replay wedged (scheme 1)"
    );
    let partials = std::mem::take(&mut *results.lock().expect("scheme1 results"));
    assemble(partials, &gauges, txns.len())
}

struct S1Site {
    site: SiteId,
    stream: Vec<S1SerEv>,
    pos: usize,
    pushes_applied: usize,
    pushes: Arc<Mailbox<(usize, bool)>>,
    emit: Arc<Mailbox<S1Emit>>,
    txns: Arc<Vec<TxnInfo>>,
    gauges: Arc<Gauges>,
    results: Arc<Mutex<Vec<Partial>>>,
    /// Insert queue (txn indices, init order; removed at ack).
    queue: VecDeque<usize>,
    /// Txns whose edge at this site was marked at init (cleared by the
    /// ack's queue removal).
    marked: BTreeSet<usize>,
    /// Submitted-but-unacked txn at this site.
    outstanding: Option<usize>,
    /// Waiting `ser` ops, in WaitKey (txn id) order.
    waiting: BTreeMap<GlobalTxnId, usize>,
    p: Partial,
}

// mdbs-lint: allow(no-panic-in-scheduler, scope=item) — txn indices are dense script positions produced by `index_txns` from the same validated script every lookup derives from; a miss is an engine bug that must fail the differential harness loudly, not degrade into a wrong-but-quiet charge count
impl S1Site {
    fn run(&mut self) -> Poll {
        while self.pos < self.stream.len() {
            // Apply insert-queue pushes up to this event's script prefix;
            // park until the domain has shipped them.
            while self.pushes_applied < self.stream[self.pos].pushes_needed {
                let Some((t, marked)) = self.pushes.pop() else {
                    return Poll::Pending;
                };
                self.queue.push_back(t);
                if marked {
                    self.marked.insert(t);
                }
                self.pushes_applied += 1;
            }
            let S1SerEv { t, idx, .. } = self.stream[self.pos];
            self.ser(t, idx);
            self.emit.send(S1Emit::End);
            self.pos += 1;
        }
        assert!(self.waiting.is_empty(), "scheme1 site left ser waiters");
        self.results
            .lock()
            .expect("scheme1 results")
            .push(std::mem::take(&mut self.p));
        Poll::Done
    }

    /// `cond(ser)`: no outstanding op, and a marked op must head the
    /// insert queue.
    fn ser_eligible(&self, t: usize) -> bool {
        if self.outstanding.is_some() {
            return false;
        }
        !self.marked.contains(&t) || self.queue.front() == Some(&t)
    }

    fn ser(&mut self, t: usize, idx: u64) {
        self.p.enqueued += 1;
        self.p.steps.tick(StepKind::Cond);
        if !self.ser_eligible(t) {
            self.p.waited += 1;
            self.p.waited_kind[1] += 1;
            self.waiting.insert(self.txns[t].gid, t);
            self.gauges.wait_inc();
            return;
        }
        let mut seq = 0u32;
        self.act_ser(t, idx, &mut seq);
        let mut cur = t;
        loop {
            // Ack of `cur`: remove from the insert queue (position scan
            // is the act charge), clear outstanding, forward.
            self.p.enqueued += 1;
            self.p.steps.tick(StepKind::Cond);
            self.p.processed += 1;
            self.outstanding = None;
            let pos = self
                .queue
                .iter()
                .position(|&x| x == cur)
                .expect("acked txn in insert queue");
            self.p.steps.bump(StepKind::Act, pos as u64 + 1);
            self.queue.remove(pos);
            self.marked.remove(&cur);
            self.emit.send(S1Emit::Ack { t: cur });
            // Wake scan: sers at this site (charged here), then fins
            // (charged at the domain when it processes the Ack above).
            self.p.steps.tick(StepKind::WaitScan);
            self.p
                .steps
                .bump(StepKind::WaitScan, self.waiting.len() as u64);
            self.p.observe_wake(self.waiting.len() as u64);
            // Cascade over the ser candidates in key order: every one is
            // cond-charged; the first eligible acts (setting outstanding,
            // so the rest fail and stay waiting without a waited++).
            let mut acted: Option<usize> = None;
            let candidates: Vec<(GlobalTxnId, usize)> =
                self.waiting.iter().map(|(&g, &w)| (g, w)).collect();
            for (gid, w) in candidates {
                self.p.steps.tick(StepKind::Cond);
                if acted.is_none() && self.ser_eligible(w) {
                    self.waiting.remove(&gid);
                    self.gauges.wait_dec();
                    self.act_ser(w, idx, &mut seq);
                    acted = Some(w);
                }
            }
            match acted {
                Some(w) => cur = w,
                None => break,
            }
        }
    }

    /// `act(ser)`: submit + record + the act's empty wake scan.
    fn act_ser(&mut self, t: usize, idx: u64, seq: &mut u32) {
        self.p.processed += 1;
        self.p.steps.tick(StepKind::Act);
        self.outstanding = Some(t);
        self.p
            .ser_events
            .push((idx, *seq, self.txns[t].gid, self.site));
        *seq += 1;
        self.p.steps.tick(StepKind::WaitScan);
        self.p.observe_wake(0);
    }
}

struct S1Domain {
    stream: Vec<DomEv>,
    pos: usize,
    txns: Arc<Vec<TxnInfo>>,
    push_boxes: BTreeMap<SiteId, Arc<Mailbox<(usize, bool)>>>,
    emit_boxes: BTreeMap<SiteId, Arc<Mailbox<S1Emit>>>,
    gauges: Arc<Gauges>,
    results: Arc<Mutex<Vec<Partial>>>,
    acks_left: Vec<usize>,
    delete_q: BTreeMap<SiteId, VecDeque<usize>>,
    /// Sites where txn `t` currently heads the delete queue; `fin(t)` is
    /// eligible iff `have[t] == |Ĝ_t|`.
    have: Vec<usize>,
    /// Waiting fins in WaitKey (txn id) order.
    fin_wait: BTreeMap<GlobalTxnId, usize>,
    fin_live: u64,
    /// Σ |Ĝ| over waiting fins (the per-ack re-test Cond aggregate).
    fin_sites_sum: u64,
    // TSG mirrors: the charge model's V and E.
    live_txns: u64,
    site_nodes: BTreeSet<SiteId>,
    edge_count: u64,
    /// Live transactions spanning each site pair (connectivity source
    /// for cycle marking). Keys are `(min, max)`.
    pair_counts: BTreeMap<(SiteId, SiteId), u64>,
    p: Partial,
}

// mdbs-lint: allow(no-panic-in-scheduler, scope=item) — txn indices are dense script positions produced by `index_txns` from the same validated script every lookup derives from; a miss is an engine bug that must fail the differential harness loudly, not degrade into a wrong-but-quiet charge count
impl S1Domain {
    fn new(
        stream: Vec<DomEv>,
        txns: Arc<Vec<TxnInfo>>,
        push_boxes: BTreeMap<SiteId, Arc<Mailbox<(usize, bool)>>>,
        emit_boxes: BTreeMap<SiteId, Arc<Mailbox<S1Emit>>>,
        gauges: Arc<Gauges>,
        results: Arc<Mutex<Vec<Partial>>>,
    ) -> Self {
        let n = txns.len();
        S1Domain {
            stream,
            pos: 0,
            txns,
            push_boxes,
            emit_boxes,
            gauges,
            results,
            acks_left: vec![0; n],
            delete_q: BTreeMap::new(),
            have: vec![0; n],
            fin_wait: BTreeMap::new(),
            fin_live: 0,
            fin_sites_sum: 0,
            live_txns: 0,
            site_nodes: BTreeSet::new(),
            edge_count: 0,
            pair_counts: BTreeMap::new(),
            p: Partial::default(),
        }
    }

    fn run(&mut self) -> Poll {
        while self.pos < self.stream.len() {
            match self.stream[self.pos] {
                DomEv::Init { t } => self.init(t),
                DomEv::Drain { site } => loop {
                    match self.emit_boxes[&site].pop() {
                        Some(S1Emit::Ack { t }) => self.ack_part(t, site),
                        Some(S1Emit::End) => break,
                        None => return Poll::Pending,
                    }
                },
            }
            self.pos += 1;
        }
        assert!(self.fin_wait.is_empty(), "scheme1 domain left fin waiters");
        self.results
            .lock()
            .expect("scheme1 results")
            .push(std::mem::take(&mut self.p));
        Poll::Done
    }

    /// `init`: TSG insert + cycle marking + insert-queue pushes.
    fn init(&mut self, t: usize) {
        self.p.enqueued += 1;
        self.p.steps.tick(StepKind::Cond);
        self.p.processed += 1;
        self.p.inits += 1;
        self.gauges.active_inc();
        let sites = self.txns[t].sites.clone();
        let d = sites.len() as u64;
        // act: one tick per queue push / TSG edge.
        self.p.steps.bump(StepKind::Act, d);
        self.live_txns += 1;
        self.site_nodes.extend(sites.iter().copied());
        self.edge_count += d;
        // The prescribed bridge-DFS charge: V + E after inserting Ĝ_t
        // (site nodes are never removed from the TSG, matching UnGraph).
        self.p.steps.bump(
            StepKind::Act,
            self.live_txns + self.site_nodes.len() as u64 + self.edge_count,
        );
        // Cycle marking: an edge (Ĝ_t, k) is on a cycle iff k connects to
        // another site of Ĝ_t through *other* live transactions. The pair
        // counts still exclude Ĝ_t here, so a union-find over site nodes
        // resolves TSG − Ĝ_t connectivity directly.
        let marked = self.marked_sites(&sites);
        for (i, &a) in sites.iter().enumerate() {
            for &b in &sites[i + 1..] {
                let key = if a < b { (a, b) } else { (b, a) };
                *self.pair_counts.entry(key).or_default() += 1;
            }
        }
        for &k in &sites {
            self.push_boxes[&k].send((t, marked.contains(&k)));
        }
        self.acks_left[t] = sites.len();
        // Wake scan after act(init): nothing can have changed.
        self.p.steps.tick(StepKind::WaitScan);
        self.p.observe_wake(0);
    }

    /// Sites of `Ĝ` whose TSG edge lies on a cycle, via connected
    /// components of the pair graph (which excludes `Ĝ` itself).
    fn marked_sites(&self, sites: &[SiteId]) -> BTreeSet<SiteId> {
        let verts: Vec<SiteId> = self.site_nodes.iter().copied().collect();
        let index: BTreeMap<SiteId, usize> =
            verts.iter().enumerate().map(|(i, &s)| (s, i)).collect();
        let mut dsu: Vec<usize> = (0..verts.len()).collect();
        fn find(dsu: &mut [usize], mut x: usize) -> usize {
            while dsu[x] != x {
                dsu[x] = dsu[dsu[x]];
                x = dsu[x];
            }
            x
        }
        for (&(a, b), &count) in &self.pair_counts {
            if count == 0 {
                continue;
            }
            let (ra, rb) = (find(&mut dsu, index[&a]), find(&mut dsu, index[&b]));
            if ra != rb {
                dsu[ra] = rb;
            }
        }
        // Group Ĝ's sites by component; edges in components holding ≥ 2
        // of them are on a cycle.
        let mut by_comp: BTreeMap<usize, Vec<SiteId>> = BTreeMap::new();
        for &k in sites {
            let root = find(&mut dsu, index[&k]);
            by_comp.entry(root).or_default().push(k);
        }
        by_comp
            .into_values()
            .filter(|group| group.len() >= 2)
            .flatten()
            .collect()
    }

    /// Domain half of an acked operation: delete-queue append, the fin
    /// re-test aggregate, and the harness's fin insertion.
    fn ack_part(&mut self, t: usize, site: SiteId) {
        let q = self.delete_q.entry(site).or_default();
        if q.is_empty() {
            self.have[t] += 1;
        }
        q.push_back(t);
        // Fin half of the ack's wake scan: every waiting fin is appended
        // and re-tested (Cond 1 + |Ĝ| each) — and provably fails, since
        // an append can't change an occupied front and an empty front
        // becomes the acked txn, whose own fin can't be waiting yet. The
        // charges aggregate; no state changes.
        self.p.steps.bump(StepKind::WaitScan, self.fin_live);
        self.p.wake_sum += self.fin_live;
        self.p
            .steps
            .bump(StepKind::Cond, self.fin_live + self.fin_sites_sum);
        // Harness: the forwarded ack may complete Ĝ_t, enqueuing fin_t
        // ahead of the drain's next ack.
        self.acks_left[t] -= 1;
        if self.acks_left[t] == 0 {
            self.fin_enqueue(t);
        }
    }

    fn fin_eligible(&self, t: usize) -> bool {
        self.have[t] == self.txns[t].sites.len()
    }

    /// `fin` enters QUEUE: cond it, act or WAIT.
    fn fin_enqueue(&mut self, t: usize) {
        self.p.enqueued += 1;
        self.p.steps.tick(StepKind::Cond);
        let d = self.txns[t].sites.len() as u64;
        self.p.steps.bump(StepKind::Cond, d);
        if self.fin_eligible(t) {
            self.fin_cascade(t);
        } else {
            self.p.waited += 1;
            self.p.waited_kind[3] += 1;
            self.fin_wait.insert(self.txns[t].gid, t);
            self.fin_live += 1;
            self.fin_sites_sum += d;
            self.gauges.wait_inc();
        }
    }

    /// `act(fin)` plus the engine's cascading WAIT re-examination — the
    /// one place fin re-tests can succeed, so the candidate buffer is
    /// simulated literally (duplicates, re-tests and all).
    fn fin_cascade(&mut self, t0: usize) {
        let mut buffer: VecDeque<GlobalTxnId> = VecDeque::new();
        self.act_fin(t0, &mut buffer);
        while let Some(gid) = buffer.pop_front() {
            let Some(&ft) = self.fin_wait.get(&gid) else {
                continue; // already woken by an earlier duplicate
            };
            let d = self.txns[ft].sites.len() as u64;
            self.fin_wait.remove(&gid);
            self.fin_live -= 1;
            self.fin_sites_sum -= d;
            self.gauges.wait_dec();
            self.p.steps.tick(StepKind::Cond);
            self.p.steps.bump(StepKind::Cond, d);
            if self.fin_eligible(ft) {
                self.act_fin(ft, &mut buffer);
            } else {
                self.fin_wait.insert(gid, ft);
                self.fin_live += 1;
                self.fin_sites_sum += d;
                self.gauges.wait_inc();
            }
        }
    }

    /// `act(fin)`: delete-queue pops + TSG removal, then append every
    /// waiting fin to the cascade buffer (the act's wake scan).
    fn act_fin(&mut self, t: usize, buffer: &mut VecDeque<GlobalTxnId>) {
        self.p.processed += 1;
        self.p.fins += 1;
        self.gauges.active_dec();
        let sites = self.txns[t].sites.clone();
        let d = sites.len() as u64;
        self.p.steps.bump(StepKind::Act, d);
        for &k in &sites {
            let q = self.delete_q.get_mut(&k).expect("fin site has deletes");
            let popped = q.pop_front();
            debug_assert_eq!(popped, Some(t), "cond(fin) guaranteed front");
            if let Some(&next) = q.front() {
                self.have[next] += 1;
            }
        }
        self.live_txns -= 1;
        self.edge_count -= d;
        for (i, &a) in sites.iter().enumerate() {
            for &b in &sites[i + 1..] {
                let key = if a < b { (a, b) } else { (b, a) };
                if let Some(c) = self.pair_counts.get_mut(&key) {
                    *c -= 1;
                }
            }
        }
        // Wake scan: every waiting fin is a candidate again.
        self.p.steps.tick(StepKind::WaitScan);
        self.p.steps.bump(StepKind::WaitScan, self.fin_live);
        self.p.observe_wake(self.fin_live);
        buffer.extend(self.fin_wait.keys().copied());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::replay;

    fn assert_equiv(kind: SchemeKind, script: &Script, workers: usize) {
        let single = replay(kind, script);
        let par = replay_parallel(kind, workers, script);
        assert_eq!(par.steps, single.steps, "{kind} steps");
        assert_eq!(par.stats.enqueued, single.stats.enqueued, "{kind} enq");
        assert_eq!(par.stats.processed, single.stats.processed, "{kind} proc");
        assert_eq!(par.stats.waited, single.stats.waited, "{kind} waited");
        assert_eq!(par.stats.waited_kind, single.stats.waited_kind);
        assert_eq!(par.stats.inits, single.stats.inits);
        assert_eq!(par.stats.fins, single.stats.fins);
        assert_eq!(par.wake_scan_count, single.wake_scan_count, "{kind} wc");
        assert_eq!(par.wake_scan_sum, single.wake_scan_sum, "{kind} ws");
        assert_eq!(par.completed, single.completed);
        assert_eq!(par.protocol_violations, 0);
        assert!(par.ser_serializable);
        // Per-site ser(S) orders must match exactly.
        let mut per_site: BTreeMap<SiteId, Vec<GlobalTxnId>> = BTreeMap::new();
        for (txn, site) in &single.ser_events {
            per_site.entry(*site).or_default().push(*txn);
        }
        let mut par_site: BTreeMap<SiteId, Vec<GlobalTxnId>> = BTreeMap::new();
        for (txn, site) in &par.ser_events {
            par_site.entry(*site).or_default().push(*txn);
        }
        assert_eq!(par_site, per_site, "{kind} per-site ser(S)");
    }

    #[test]
    fn scheme0_matches_single_engine() {
        for seed in 0..15 {
            let script = Script::random(12, 4, 2.5, seed);
            for workers in [1, 2, 4] {
                assert_equiv(SchemeKind::Scheme0, &script, workers);
            }
        }
    }

    #[test]
    fn scheme1_matches_single_engine() {
        for seed in 0..15 {
            let script = Script::random(12, 4, 2.5, seed);
            for workers in [1, 2, 4] {
                assert_equiv(SchemeKind::Scheme1, &script, workers);
            }
        }
    }

    #[test]
    fn funnel_schemes_match_single_engine() {
        let script = Script::random(10, 4, 2.2, 7);
        for kind in [SchemeKind::Scheme2, SchemeKind::Scheme3] {
            let single = replay(kind, &script);
            let par = replay_parallel(kind, 2, &script);
            assert_eq!(par.steps, single.steps);
            assert_eq!(par.stats, single.stats);
            assert_eq!(par.ser_events, single.ser_events);
        }
    }

    #[test]
    fn scheme0_total_order_matches_at_larger_scale() {
        let script = Script::random(60, 6, 2.5, 42);
        let single = replay(SchemeKind::Scheme0, &script);
        let par = replay_parallel(SchemeKind::Scheme0, 4, &script);
        // Scheme 0's drains are single-site, so even the merged total
        // order reconstructs exactly.
        assert_eq!(par.ser_events, single.ser_events);
    }

    #[test]
    fn scheme1_total_order_matches_at_larger_scale() {
        let script = Script::random(60, 6, 2.5, 42);
        let single = replay(SchemeKind::Scheme1, &script);
        let par = replay_parallel(SchemeKind::Scheme1, 4, &script);
        assert_eq!(par.ser_events, single.ser_events);
    }
}
