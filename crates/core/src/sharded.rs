//! `ShardedGtm2` — the Basic_Scheme loop with a site-partitioned WAIT set.
//!
//! Theorem 2 reduces global serializability to the serializability of
//! `ser(S)`, whose conflict relation is *per site*: two `ser_k(G_i)`
//! events conflict only when they occur at the same site. This engine
//! exploits that structure. QUEUE and WAIT are partitioned into shards
//! (site `k` owns shard `k mod nshards`), each pumped independently —
//! by its own [`SiteWorker`](../../mdbs_sim/threaded/index.html) thread in
//! the threaded runtime — while the scheme state itself, the one structure
//! whose updates must stay totally ordered, lives in a single global core
//! behind its own lock.
//!
//! ## Routing
//!
//! - **Scheme 0 / Scheme 1** partition cleanly: `ser`/`ack` operations are
//!   examined in the shard owning their site; siteless `init`/`fin` go to
//!   shard 0. Their `wake_candidates` hints are site-local (Scheme 0) or
//!   site-local-plus-fins (Scheme 1), so most wakes never leave a shard.
//! - **Schemes 2/3 and the baselines**: `cond` depends on cross-site state
//!   (`ser_bef` sets, TSGD paths), so all operations funnel through shard
//!   0 — the global shard — and the other shards stay empty. In this
//!   configuration the engine is operation-for-operation identical to
//!   [`Gtm2`](crate::gtm2::Gtm2).
//!
//! ## Cross-shard handoff
//!
//! After `act(o)` in shard `j`, waiters in *other* shards may have become
//! eligible. The acting thread consults the scheme's
//! [`wake_scope`](crate::scheme::Gtm2Scheme::wake_scope) bound to compute
//! the target shards, appends `o` to each target's handoff queue, and
//! pumps those shards itself (work conservation: a cross-shard wake never
//! waits for the target's next poll tick). Receiving shards re-run
//! `wake_candidates`/`cond` against *current* global state, so handoffs
//! are idempotent re-test hints: a stale or duplicate handoff finds the
//! waiter already gone (its key is removed from WAIT before the re-test)
//! and wakes nothing — this is what makes the wake exactly-once.
//!
//! ## Lock order
//!
//! The discipline is strict `shard → global`: a shard lock may be held
//! when the global lock is taken, never the reverse, and never two shard
//! locks together (handoffs are delivered after the source shard's guard
//! is dropped). Both locks are bounded spins ([`OrderedMutex`]), so the
//! pump path never blocks; the acquisition order is visible in the
//! `lock_order.dot` artifact emitted by mdbs-lint.

use crate::gtm2::Gtm2Stats;
use crate::scheme::{Gtm2Scheme, KernelKind, SchemeEffect, SchemeKind, WaitKey, WaitSet};
use crate::ser_s::SerSLog;
use mdbs_common::ids::GlobalTxnId;
use mdbs_common::instrument::{Histogram, Registry, SchedEvent, StderrSink, TraceSink};
use mdbs_common::ops::{QueueOp, QueueOpKind};
use mdbs_common::step::StepCounter;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, TryLockError};

/// A mutex with an adaptive spin-then-park acquire path for the pump and
/// a declared place in the engine's lock order (`shard` before `global`,
/// see module docs).
///
/// Critical sections are short and bounded (no I/O, no channel
/// operations, no nested shard locks), so the common contended case
/// resolves within a few dozen spin iterations; past that bound the
/// acquirer parks on the OS mutex instead of burning a core (the old
/// `try_lock` + `yield_now` loop busy-waited unboundedly, which starves
/// the holder on oversubscribed pools). Contended acquires and parks are
/// counted and exported as `gtm2.shard_lock_contended` /
/// `gtm2.shard_lock_parks`.
struct OrderedMutex<T> {
    raw: Mutex<T>,
    /// Acquires that found the lock held at least once.
    contended: AtomicU64,
    /// Acquires that exhausted the spin budget and parked on `raw`.
    parks: AtomicU64,
}

/// Spin budget before parking: each iteration issues a `spin_loop` hint
/// with exponentially growing repeat counts (1, 2, 4, ... capped), which
/// is the usual adaptive shape — cheap for near-instant handoffs, quickly
/// backing off when the holder is descheduled.
const SPIN_LIMIT: u32 = 6;

impl<T> OrderedMutex<T> {
    fn new(value: T) -> Self {
        OrderedMutex {
            raw: Mutex::new(value),
            contended: AtomicU64::new(0),
            parks: AtomicU64::new(0),
        }
    }

    /// Acquire from coordinator-facing entry points. Same implementation
    /// as [`spin`](OrderedMutex::spin); the distinct name marks the call
    /// sites that define the engine's lock-acquisition order for review.
    fn lock(&self) -> MutexGuard<'_, T> {
        self.spin()
    }

    /// Acquire by adaptive spin, then park (the pump path).
    fn spin(&self) -> MutexGuard<'_, T> {
        for round in 0..=SPIN_LIMIT {
            match self.raw.try_lock() {
                Ok(guard) => return guard,
                // A panicked holder cannot leave the scheduler state
                // half-updated in a way we can repair; keep going with
                // whatever is there, as Gtm2's embedders do.
                Err(TryLockError::Poisoned(poisoned)) => return poisoned.into_inner(),
                Err(TryLockError::WouldBlock) => {
                    if round == 0 {
                        self.contended.fetch_add(1, Ordering::Relaxed);
                    }
                    for _ in 0..(1u32 << round.min(SPIN_LIMIT)) {
                        std::hint::spin_loop();
                    }
                }
            }
        }
        self.parks.fetch_add(1, Ordering::Relaxed);
        // mdbs-lint: allow(blocking-in-pump) — the designed backoff: 2^7 bounded spins above always run first, and shard locks never nest (deliver() drops the source guard), so this park is deadlock-free and brief by construction.
        match self.raw.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// `(contended acquires, parks)` recorded on this mutex so far.
    fn contention(&self) -> (u64, u64) {
        (
            self.contended.load(Ordering::Relaxed),
            self.parks.load(Ordering::Relaxed),
        )
    }

    /// Exclusive access without locking (deterministic single-threaded
    /// callers).
    fn get_mut(&mut self) -> &mut T {
        match self.raw.get_mut() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Per-shard mutable state: this shard's slice of QUEUE and WAIT.
struct ShardCore {
    /// Arrival-stamped operations routed to this shard (`QUEUE ∩ shard`).
    inbox: VecDeque<(u64, QueueOp)>,
    /// Acted operations handed off from other shards, pending re-test.
    handoff: VecDeque<QueueOp>,
    /// This shard's partition of the WAIT set.
    wait: WaitSet,
    /// `ser` operations that raced ahead of their `init` (possible only
    /// under partitioned routing): parked here until the `init`'s act is
    /// handed off from shard 0.
    pre_init: BTreeMap<GlobalTxnId, Vec<(u64, QueueOp)>>,
    /// Wake candidates examined per act in this shard (log₂ histogram).
    wake_scan: Histogram,
    /// Reusable buffer for the cascading wake worklist (no per-act
    /// allocation).
    wake_buf: VecDeque<WaitKey>,
    /// Peak size of this shard's WAIT partition.
    wait_peak: u64,
    /// Handoff messages actually delivered into this shard.
    handoffs_in: u64,
}

impl ShardCore {
    fn new() -> Self {
        ShardCore {
            inbox: VecDeque::new(),
            handoff: VecDeque::new(),
            wait: WaitSet::new(),
            pre_init: BTreeMap::new(),
            wake_scan: Histogram::new(),
            wake_buf: VecDeque::new(),
            wait_peak: 0,
            handoffs_in: 0,
        }
    }

    /// True if a handoff delivered here could possibly do anything.
    fn has_waiters(&self) -> bool {
        !self.wait.is_empty() || !self.pre_init.is_empty()
    }

    fn backlog(&self) -> usize {
        let parked: usize = self.pre_init.values().map(Vec::len).sum();
        self.inbox.len() + self.handoff.len() + parked
    }
}

/// One shard cell. The field is named `shard` so the lock appears as
/// `shard` in the mdbs-lint lock-order graph.
struct ShardCell {
    shard: OrderedMutex<ShardCore>,
    /// Lock-free mirrors of this shard's `wake_scan` histogram totals,
    /// refreshed (under the shard lock, so writes never race) at the end
    /// of every drained slot. Concurrent pumps of *other* shards can't
    /// lose or tear these updates, so aggregation across shards is
    /// coherent mid-run without taking every shard lock.
    wake_scan_count: AtomicU64,
    wake_scan_sum: AtomicU64,
}

impl ShardCell {
    fn new(core: ShardCore) -> Self {
        ShardCell {
            shard: OrderedMutex::new(core),
            wake_scan_count: AtomicU64::new(0),
            wake_scan_sum: AtomicU64::new(0),
        }
    }

    /// Refresh the atomic mirrors from the locked core (caller holds the
    /// shard guard, making this the only writer).
    fn publish_wake_scan(&self, core: &ShardCore) {
        self.wake_scan_sum
            .store(core.wake_scan.sum(), Ordering::Release);
        self.wake_scan_count
            .store(core.wake_scan.count(), Ordering::Release);
    }
}

/// Global (unsharded) state: the scheme and every counter whose updates
/// must be totally ordered.
struct GlobalCore {
    scheme: Box<dyn Gtm2Scheme + Send>,
    steps: StepCounter,
    stats: Gtm2Stats,
    ser_log: SerSLog,
    /// Transactions whose `init` has been acted. Never pruned within a
    /// run: a late `ser` must not re-trip the pre-init gate after `fin`.
    inited: BTreeSet<GlobalTxnId>,
    /// Currently active transactions (`init`ed, not `fin`ished).
    active: u64,
    /// Exact current WAIT population across all shards (every WAIT
    /// mutation happens under this lock, so the count is race-free).
    wait_live: u64,
    /// Validate scheme invariants after every act (used by tests).
    validate: bool,
    /// Structured event sink; `None` = tracing disabled.
    sink: Option<Box<dyn TraceSink + Send>>,
    /// Clock stamped onto sink events (stays 0: no simulated clock here).
    clock: u64,
}

/// Effects plus the acted operations (with their handoff targets)
/// produced while one shard's slot was being drained.
#[derive(Default)]
struct PumpOut {
    effects: Vec<SchemeEffect>,
    /// `(acted op, shards to hand it off to)`.
    handoffs: Vec<(QueueOp, Vec<usize>)>,
}

/// Routing facts a slot needs while holding its locks.
#[derive(Clone, Copy)]
struct SlotCtx {
    /// Index of the shard being pumped.
    shard: usize,
    /// Total shard count.
    nshards: usize,
    /// Whether ops are actually spread over shards (Schemes 0/1).
    partitioned: bool,
}

/// The GTM2 scheduler with QUEUE and WAIT partitioned by site.
///
/// Shared-reference methods ([`submit`](ShardedGtm2::submit) /
/// [`pump_shard`](ShardedGtm2::pump_shard)) are safe to call from many
/// threads; the `_mut` pair ([`enqueue_mut`](ShardedGtm2::enqueue_mut) /
/// [`pump_all`](ShardedGtm2::pump_all)) gives deterministic single-owner
/// replay with zero locking cost.
///
/// ```
/// use mdbs_core::sharded::ShardedGtm2;
/// use mdbs_core::scheme::{SchemeEffect, SchemeKind};
/// use mdbs_common::ids::{GlobalTxnId, SiteId};
/// use mdbs_common::ops::QueueOp;
///
/// let mut gtm2 = ShardedGtm2::new(SchemeKind::Scheme0, 2);
/// gtm2.enqueue_mut(QueueOp::Init { txn: GlobalTxnId(1), sites: vec![SiteId(0)] });
/// gtm2.enqueue_mut(QueueOp::Ser { txn: GlobalTxnId(1), site: SiteId(0) });
/// let effects = gtm2.pump_all();
/// assert_eq!(
///     effects,
///     vec![SchemeEffect::SubmitSer { txn: GlobalTxnId(1), site: SiteId(0) }],
/// );
/// ```
pub struct ShardedGtm2 {
    kind: SchemeKind,
    partitioned: bool,
    cells: Vec<ShardCell>,
    global: OrderedMutex<GlobalCore>,
    next_seq: AtomicU64,
}

impl ShardedGtm2 {
    /// Create an engine for `kind` with `nshards` pump shards (clamped to
    /// at least 1). As with [`Gtm2::new`](crate::gtm2::Gtm2::new), the
    /// `MDBS_TRACE` environment variable attaches a stderr trace sink.
    pub fn new(kind: SchemeKind, nshards: usize) -> Self {
        Self::new_with_kernel(kind, KernelKind::Dense, nshards)
    }

    /// Like [`new`](ShardedGtm2::new), but selecting the scheme kernel
    /// ([`KernelKind::BTree`] reference maps vs [`KernelKind::Dense`]
    /// slot/bitset) explicitly. Both kernels are step-for-step identical;
    /// only machine cost differs.
    pub fn new_with_kernel(kind: SchemeKind, kernel: KernelKind, nshards: usize) -> Self {
        let nshards = nshards.max(1);
        let sink: Option<Box<dyn TraceSink + Send>> = if std::env::var_os("MDBS_TRACE").is_some() {
            Some(Box::new(StderrSink))
        } else {
            None
        };
        // Only schemes whose cond/wake structure is per-site may spread
        // operations over shards; everything else runs in shard 0 and is
        // identical to the single engine by construction.
        let partitioned = match kind {
            SchemeKind::Scheme0 | SchemeKind::Scheme1 => nshards > 1,
            SchemeKind::Scheme2
            | SchemeKind::Scheme2Minimal
            | SchemeKind::SiteGraph
            | SchemeKind::Scheme3
            | SchemeKind::AbortingTo
            | SchemeKind::OptimisticTicket => false,
        };
        ShardedGtm2 {
            kind,
            partitioned,
            cells: (0..nshards)
                .map(|_| ShardCell::new(ShardCore::new()))
                .collect(),
            global: OrderedMutex::new(GlobalCore {
                scheme: kind.build_kernel(kernel),
                steps: StepCounter::new(),
                stats: Gtm2Stats::default(),
                ser_log: SerSLog::new(),
                inited: BTreeSet::new(),
                active: 0,
                wait_live: 0,
                validate: cfg!(debug_assertions),
                sink,
                clock: 0,
            }),
            next_seq: AtomicU64::new(0),
        }
    }

    /// Number of pump shards.
    pub fn shard_count(&self) -> usize {
        self.cells.len()
    }

    /// The shard that examines (and, if it waits, holds) `op`.
    fn route(&self, op: &QueueOp) -> usize {
        if !self.partitioned {
            return 0;
        }
        match op.site() {
            Some(site) => site.index() % self.cells.len(),
            None => 0,
        }
    }

    /// Enable/disable per-act scheme invariant validation.
    pub fn set_validate(&mut self, on: bool) {
        self.global.get_mut().validate = on;
    }

    /// Attach (or with `None`, detach) a structured event sink.
    pub fn set_sink(&mut self, sink: Option<Box<dyn TraceSink + Send>>) {
        self.global.get_mut().sink = sink;
    }

    /// The scheme's display name.
    pub fn scheme_name(&self) -> &'static str {
        self.kind.name()
    }

    // ------------------------------------------------------------------
    // Thread-shared API (site workers + coordinator).
    // ------------------------------------------------------------------

    /// Insert an operation into its shard's slice of QUEUE from a pump
    /// thread. Returns the shard index, to be passed to
    /// [`pump_shard`](ShardedGtm2::pump_shard).
    pub fn submit(&self, op: QueueOp) -> usize {
        let j = self.route(&op);
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        if let Some(cell) = self.cells.get(j) {
            let mut core = cell.shard.spin();
            let mut global = self.global.spin();
            enqueue_into(&mut core, &mut global, seq, op);
        }
        j
    }

    /// Insert an operation from the coordinating thread. Behaviorally
    /// identical to [`submit`](ShardedGtm2::submit); this entry point uses
    /// the ordered `lock` acquisitions, making it the canonical statement
    /// of the `shard → global` lock order in the mdbs-lint graph.
    pub fn enqueue(&self, op: QueueOp) -> usize {
        let j = self.route(&op);
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        if let Some(cell) = self.cells.get(j) {
            let mut core = cell.shard.lock();
            let mut global = self.global.lock();
            enqueue_into(&mut core, &mut global, seq, op);
        }
        j
    }

    /// Run the Basic_Scheme loop over shard `start`'s slice of QUEUE and
    /// any pending handoffs, following cross-shard handoffs to their
    /// target shards until no reachable work remains. Returns the effects
    /// produced, in order.
    pub fn pump_shard(&self, start: usize) -> Vec<SchemeEffect> {
        let mut effects = Vec::new();
        let mut worklist: VecDeque<usize> = VecDeque::new();
        worklist.push_back(start);
        while let Some(j) = worklist.pop_front() {
            let Some(cell) = self.cells.get(j) else {
                continue;
            };
            let mut out = PumpOut::default();
            {
                let mut core = cell.shard.spin();
                if core.handoff.is_empty() && core.inbox.is_empty() {
                    continue;
                }
                let mut global = self.global.spin();
                let ctx = SlotCtx {
                    shard: j,
                    nshards: self.cells.len(),
                    partitioned: self.partitioned,
                };
                drain_slot(ctx, &mut core, &mut global, &mut out);
                cell.publish_wake_scan(&core);
            }
            effects.append(&mut out.effects);
            for target in self.deliver(j, &out) {
                if !worklist.contains(&target) {
                    worklist.push_back(target);
                }
            }
        }
        effects
    }

    /// Pump only shard `start`, delivering any cross-shard handoffs it
    /// produces without following them into the target shards' locks.
    /// Returns the effects plus the shards that received a handoff —
    /// **waker hints** for a task runtime where every shard has an owning
    /// pump task: instead of this thread contending the target shard, the
    /// caller wakes the owner, which re-tests against current global
    /// state on its next poll (handoffs are idempotent re-test hints, so
    /// a hint raced by the owner's own pump is harmless).
    pub fn pump_shard_hinted(&self, start: usize) -> (Vec<SchemeEffect>, Vec<usize>) {
        let mut out = PumpOut::default();
        {
            let Some(cell) = self.cells.get(start) else {
                return (Vec::new(), Vec::new());
            };
            let mut core = cell.shard.spin();
            if core.handoff.is_empty() && core.inbox.is_empty() {
                return (Vec::new(), Vec::new());
            }
            let mut global = self.global.spin();
            let ctx = SlotCtx {
                shard: start,
                nshards: self.cells.len(),
                partitioned: self.partitioned,
            };
            drain_slot(ctx, &mut core, &mut global, &mut out);
            cell.publish_wake_scan(&core);
        }
        let hints = self.deliver(start, &out);
        (out.effects, hints)
    }

    /// Deliver `out`'s handoffs (source shard's guards must already be
    /// dropped — shard locks never nest). Returns the shards that received
    /// at least one message; deliveries to shards with no waiters are
    /// skipped and not counted.
    fn deliver(&self, source: usize, out: &PumpOut) -> Vec<usize> {
        let mut touched = Vec::new();
        for (op, targets) in &out.handoffs {
            for &t in targets {
                if t == source {
                    continue;
                }
                let Some(cell) = self.cells.get(t) else {
                    continue;
                };
                let mut core = cell.shard.spin();
                if !core.has_waiters() {
                    continue;
                }
                core.handoff.push_back(op.clone());
                core.handoffs_in += 1;
                if !touched.contains(&t) {
                    touched.push(t);
                }
            }
        }
        touched
    }

    // ------------------------------------------------------------------
    // Deterministic single-owner API (replay, tests).
    // ------------------------------------------------------------------

    /// Insert an operation at the end of its shard's QUEUE slice
    /// (lock-free: requires exclusive ownership).
    pub fn enqueue_mut(&mut self, op: QueueOp) {
        let j = self.route(&op);
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let ShardedGtm2 { cells, global, .. } = self;
        if let Some(cell) = cells.get_mut(j) {
            enqueue_into(cell.shard.get_mut(), global.get_mut(), seq, op);
        }
    }

    /// Deterministically run all shards dry: pending handoffs first, then
    /// always the globally oldest queued operation (which reproduces the
    /// single engine's FIFO examination order). Returns the effects in
    /// order.
    pub fn pump_all(&mut self) -> Vec<SchemeEffect> {
        let mut effects = Vec::new();
        loop {
            if self.drain_handoffs_mut(&mut effects) {
                continue;
            }
            let next = self
                .cells
                .iter_mut()
                .enumerate()
                .filter_map(|(j, cell)| {
                    let front = cell.shard.get_mut().inbox.front();
                    front.map(|&(seq, _)| (seq, j))
                })
                .min();
            let Some((_, j)) = next else {
                break;
            };
            let out = self.step_slot_mut(j, SlotStep::Inbox);
            effects.extend(out.effects.iter().copied());
            self.deliver_mut(j, &out);
        }
        effects
    }

    /// Process one unit of work in shard `j` without locking.
    fn step_slot_mut(&mut self, j: usize, what: SlotStep) -> PumpOut {
        let ctx = SlotCtx {
            shard: j,
            nshards: self.cells.len(),
            partitioned: self.partitioned,
        };
        let mut out = PumpOut::default();
        let ShardedGtm2 { cells, global, .. } = self;
        if let Some(cell) = cells.get_mut(j) {
            let core = cell.shard.get_mut();
            let global = global.get_mut();
            match what {
                SlotStep::Inbox => {
                    if let Some((seq, op)) = core.inbox.pop_front() {
                        process_op(ctx, seq, op, core, global, &mut out);
                    }
                }
                SlotStep::Handoff => {
                    if let Some(acted) = core.handoff.pop_front() {
                        process_handoff(ctx, acted, core, global, &mut out);
                    }
                }
            }
            cell.wake_scan_sum
                .store(core.wake_scan.sum(), Ordering::Release);
            cell.wake_scan_count
                .store(core.wake_scan.count(), Ordering::Release);
        }
        out
    }

    /// Lock-free twin of [`deliver`](ShardedGtm2::deliver).
    fn deliver_mut(&mut self, source: usize, out: &PumpOut) {
        for (op, targets) in &out.handoffs {
            for &t in targets {
                if t == source {
                    continue;
                }
                if let Some(cell) = self.cells.get_mut(t) {
                    let core = cell.shard.get_mut();
                    if !core.has_waiters() {
                        continue;
                    }
                    core.handoff.push_back(op.clone());
                    core.handoffs_in += 1;
                }
            }
        }
    }

    /// Process every pending handoff to a fixpoint. Returns whether any
    /// work was done.
    fn drain_handoffs_mut(&mut self, effects: &mut Vec<SchemeEffect>) -> bool {
        let mut any = false;
        loop {
            let mut progressed = false;
            for j in 0..self.cells.len() {
                loop {
                    let pending = match self.cells.get_mut(j) {
                        Some(cell) => !cell.shard.get_mut().handoff.is_empty(),
                        None => false,
                    };
                    if !pending {
                        break;
                    }
                    let out = self.step_slot_mut(j, SlotStep::Handoff);
                    effects.extend(out.effects.iter().copied());
                    self.deliver_mut(j, &out);
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
            any = true;
        }
        any
    }

    // ------------------------------------------------------------------
    // Observers.
    // ------------------------------------------------------------------

    /// Accumulated abstract step counts.
    pub fn steps(&self) -> StepCounter {
        self.global.lock().steps
    }

    /// Engine counters.
    pub fn stats(&self) -> Gtm2Stats {
        self.global.lock().stats
    }

    /// Clone of the recorded `ser(S)` log.
    pub fn ser_log_snapshot(&self) -> SerSLog {
        self.global.lock().ser_log.clone()
    }

    /// Number of operations currently waiting, across all shards.
    pub fn wait_len(&self) -> usize {
        self.global.lock().wait_live as usize
    }

    /// Operations queued (inboxes + handoffs + pre-init parkings) but not
    /// yet examined, across all shards.
    pub fn queue_len(&self) -> usize {
        let mut total = 0;
        for cell in &self.cells {
            total += cell.shard.spin().backlog();
        }
        total
    }

    /// Total handoff messages delivered across shards so far.
    pub fn cross_shard_handoffs(&self) -> u64 {
        let mut total = 0;
        for cell in &self.cells {
            total += cell.shard.spin().handoffs_in;
        }
        total
    }

    /// Merged wake-scan histogram totals across shards: `(count, sum)`.
    /// Reads the per-shard atomic mirrors, so it is safe (and lock-free)
    /// to call while other threads pump shards — no sampled shard's
    /// totals can be lost or torn, each is a drain-boundary snapshot.
    pub fn wake_scan_totals(&self) -> (u64, u64) {
        let mut count = 0u64;
        let mut sum = 0u64;
        for cell in &self.cells {
            count += cell.wake_scan_count.load(Ordering::Acquire);
            sum += cell.wake_scan_sum.load(Ordering::Acquire);
        }
        (count, sum)
    }

    /// Shard-lock contention counters summed over every shard plus the
    /// global core: `(contended acquires, parks)`.
    pub fn lock_contention(&self) -> (u64, u64) {
        let (mut contended, mut parks) = self.global.contention();
        for cell in &self.cells {
            let (c, p) = cell.shard.contention();
            contended += c;
            parks += p;
        }
        (contended, parks)
    }

    /// Export counters, gauges and histograms into `registry` under the
    /// `gtm2.` prefix — the same names as
    /// [`Gtm2::export_metrics`](crate::gtm2::Gtm2::export_metrics), plus
    /// the per-shard series (`gtm2.shard<j>.wake_scan`,
    /// `gtm2.shard_wait_peak`) and `gtm2.cross_shard_handoff`.
    pub fn export_metrics(&self, registry: &mut Registry) {
        let mut merged = Histogram::new();
        let mut handoffs = 0u64;
        for (j, cell) in self.cells.iter().enumerate() {
            let core = cell.shard.spin();
            registry.merge_histogram(&format!("gtm2.shard{j}.wake_scan"), &core.wake_scan);
            registry.max_gauge("gtm2.shard_wait_peak", core.wait_peak as i64);
            merged.merge(&core.wake_scan);
            handoffs += core.handoffs_in;
        }
        let global = self.global.lock();
        let s = &global.stats;
        registry.inc("gtm2.enqueued", s.enqueued);
        registry.inc("gtm2.processed", s.processed);
        registry.inc("gtm2.waited", s.waited);
        registry.inc("gtm2.waited.init", s.waited_kind[0]);
        registry.inc("gtm2.waited.ser", s.waited_kind[1]);
        registry.inc("gtm2.waited.ack", s.waited_kind[2]);
        registry.inc("gtm2.waited.fin", s.waited_kind[3]);
        registry.inc("gtm2.scheme_aborts", s.scheme_aborts);
        registry.inc("gtm2.inits", s.inits);
        registry.inc("gtm2.fins", s.fins);
        registry.inc("gtm2.protocol_violations", s.protocol_violations);
        registry.inc("gtm2.steps.cond", global.steps.cond);
        registry.inc("gtm2.steps.act", global.steps.act);
        registry.inc("gtm2.steps.wait_scan", global.steps.wait_scan);
        registry.inc("gtm2.cross_shard_handoff", handoffs);
        let (lock_contended, lock_parks) = self.lock_contention();
        registry.inc("gtm2.shard_lock_contended", lock_contended);
        registry.inc("gtm2.shard_lock_parks", lock_parks);
        registry.max_gauge("gtm2.peak_wait", s.peak_wait as i64);
        registry.max_gauge("gtm2.peak_active", s.peak_active as i64);
        registry.merge_histogram("gtm2.wake_scan", &merged);
        global.scheme.export_metrics(registry);
    }
}

/// Which end of a shard's work to take in a deterministic step.
enum SlotStep {
    Inbox,
    Handoff,
}

impl std::fmt::Debug for ShardedGtm2 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedGtm2")
            .field("scheme", &self.kind.name())
            .field("shards", &self.cells.len())
            .field("partitioned", &self.partitioned)
            .finish()
    }
}

// ----------------------------------------------------------------------
// The Basic_Scheme slot logic, shared by the locked and lock-free paths.
// The free functions operate on a shard core + the global core and mirror
// `Gtm2::pump`/`Gtm2::do_act` exactly (same stats, steps, sink events and
// effect bookkeeping), with one addition: acted operations also collect
// their cross-shard handoff targets.
// ----------------------------------------------------------------------

/// Record and count an arriving operation (`Gtm2::enqueue` equivalent).
fn enqueue_into(core: &mut ShardCore, global: &mut GlobalCore, seq: u64, op: QueueOp) {
    if let Some(sink) = &mut global.sink {
        sink.record(global.clock, SchedEvent::enqueue(&op));
    }
    global.stats.enqueued += 1;
    core.inbox.push_back((seq, op));
}

/// Drain everything currently actionable in one shard: handoffs first
/// (they re-test existing waiters), then the shard's inbox in FIFO order.
fn drain_slot(ctx: SlotCtx, core: &mut ShardCore, global: &mut GlobalCore, out: &mut PumpOut) {
    loop {
        if let Some(acted) = core.handoff.pop_front() {
            process_handoff(ctx, acted, core, global, out);
        } else if let Some((seq, op)) = core.inbox.pop_front() {
            process_op(ctx, seq, op, core, global, out);
        } else {
            break;
        }
    }
}

/// Examine one operation from the front of this shard's QUEUE slice
/// (the body of `Gtm2::pump`'s loop).
fn process_op(
    ctx: SlotCtx,
    seq: u64,
    op: QueueOp,
    core: &mut ShardCore,
    global: &mut GlobalCore,
    out: &mut PumpOut,
) {
    // Pre-init gate: under partitioned routing a `ser` can reach its site
    // shard before shard 0 has acted the `init`. Park it; the `init`'s
    // handoff releases it. (The single engine would instead flag a
    // genuinely init-less `ser` as SerWithoutInit; for well-formed input —
    // GTM1 always announces before serializing — the gate never observably
    // differs.)
    if ctx.partitioned && op.kind() == QueueOpKind::Ser && !global.inited.contains(&op.txn()) {
        core.pre_init.entry(op.txn()).or_default().push((seq, op));
        return;
    }
    let eligible = global.scheme.cond(&op, &mut global.steps);
    if let Some(sink) = &mut global.sink {
        sink.record(global.clock, SchedEvent::cond(&op, eligible));
    }
    if eligible {
        let mut candidates = std::mem::take(&mut core.wake_buf);
        candidates.clear();
        act_one(ctx, &op, false, core, global, out, &mut candidates);
        cascade(ctx, candidates, core, global, out);
    } else {
        if let Some(sink) = &mut global.sink {
            sink.record(global.clock, SchedEvent::wait(&op));
        }
        global.stats.waited += 1;
        bump_waited_kind(&mut global.stats, op.kind());
        core.wait.insert(op);
        global.wait_live += 1;
        global.stats.peak_wait = global.stats.peak_wait.max(global.wait_live);
        core.wait_peak = core.wait_peak.max(core.wait.len() as u64);
    }
}

/// Re-test this shard's waiters against an operation acted elsewhere.
fn process_handoff(
    ctx: SlotCtx,
    acted: QueueOp,
    core: &mut ShardCore,
    global: &mut GlobalCore,
    out: &mut PumpOut,
) {
    // An init acted at shard 0 releases any ser ops parked behind it here.
    if acted.kind() == QueueOpKind::Init {
        if let Some(mut parked) = core.pre_init.remove(&acted.txn()) {
            parked.sort_unstable_by_key(|&(seq, _)| seq);
            for (seq, op) in parked {
                process_op(ctx, seq, op, core, global, out);
            }
        }
    }
    let mut candidates = std::mem::take(&mut core.wake_buf);
    candidates.clear();
    local_candidates(&acted, core, global, &mut candidates);
    cascade(ctx, candidates, core, global, out);
}

/// `act(op)` (the `act_now` closure of `Gtm2::do_act`): bookkeeping,
/// scheme act, effect recording, handoff-target computation, and this
/// shard's wake candidates.
fn act_one(
    ctx: SlotCtx,
    acted: &QueueOp,
    woken: bool,
    core: &mut ShardCore,
    global: &mut GlobalCore,
    out: &mut PumpOut,
    candidates: &mut VecDeque<WaitKey>,
) {
    if let Some(sink) = &mut global.sink {
        let ev = if woken {
            SchedEvent::wake(acted)
        } else {
            SchedEvent::act(acted)
        };
        sink.record(global.clock, ev);
    }
    note_processed(acted, global);
    let fx = global.scheme.act(acted, &mut global.steps);
    if global.validate {
        global.scheme.debug_validate();
    }
    for effect in &fx {
        match effect {
            SchemeEffect::SubmitSer { txn, site } => global.ser_log.record(*txn, *site),
            SchemeEffect::AbortGlobal { txn } => {
                global.stats.scheme_aborts += 1;
                if let Some(sink) = &mut global.sink {
                    sink.record(global.clock, SchedEvent::Abort { txn: *txn });
                }
            }
            SchemeEffect::ForwardAck { .. } => {}
            SchemeEffect::ProtocolViolation { .. } => {
                global.stats.protocol_violations += 1;
            }
        }
    }
    out.effects.extend(fx.iter().copied());
    if acted.kind() == QueueOpKind::Init {
        global.inited.insert(acted.txn());
    }
    let targets = handoff_targets(ctx, acted, global.scheme.as_ref());
    if !targets.is_empty() {
        out.handoffs.push((acted.clone(), targets));
    }
    local_candidates(acted, core, global, candidates);
}

/// This shard's wake candidates for an acted operation, appended to
/// `candidates` (resolved against this shard's WAIT partition without
/// allocating).
fn local_candidates(
    acted: &QueueOp,
    core: &mut ShardCore,
    global: &mut GlobalCore,
    candidates: &mut VecDeque<WaitKey>,
) {
    let wake = global
        .scheme
        .wake_candidates(acted, &core.wait, &mut global.steps);
    let appended = core.wait.resolve_into(&wake, candidates);
    core.wake_scan.observe(appended as u64);
}

/// Figure 3's inner loop over this shard's WAIT partition: act each
/// eligible waiter immediately, feeding its own candidates back in. Takes
/// ownership of the seeded worklist (the shard's reusable buffer) and
/// parks it back on the core when drained.
fn cascade(
    ctx: SlotCtx,
    mut candidates: VecDeque<WaitKey>,
    core: &mut ShardCore,
    global: &mut GlobalCore,
    out: &mut PumpOut,
) {
    while let Some(key) = candidates.pop_front() {
        // The op may have been woken (or re-examined) already — this is
        // also what makes stale/duplicate handoff hints harmless.
        let Some(waiting) = core.wait.remove(&key) else {
            continue;
        };
        global.wait_live = global.wait_live.saturating_sub(1);
        let eligible = global.scheme.cond(&waiting, &mut global.steps);
        if let Some(sink) = &mut global.sink {
            sink.record(global.clock, SchedEvent::cond(&waiting, eligible));
        }
        if eligible {
            act_one(ctx, &waiting, true, core, global, out, &mut candidates);
        } else {
            core.wait.insert(waiting);
            global.wait_live += 1;
        }
    }
    core.wake_buf = candidates;
}

/// Which shards (other than the acting one) must re-test their waiters
/// after `acted` was acted, per the scheme's `wake_scope` bound plus the
/// engine-level pre-init gate (an `init` must reach the shards of its
/// announced sites to release parked sers).
fn handoff_targets(ctx: SlotCtx, acted: &QueueOp, scheme: &dyn Gtm2Scheme) -> Vec<usize> {
    if ctx.nshards <= 1 {
        return Vec::new();
    }
    let mut targets = BTreeSet::new();
    let scope = scheme.wake_scope(acted.kind());
    if scope.elsewhere {
        for j in 0..ctx.nshards {
            targets.insert(j);
        }
    } else {
        if scope.acted_site {
            if let Some(site) = acted.site() {
                targets.insert(if ctx.partitioned {
                    site.index() % ctx.nshards
                } else {
                    0
                });
            }
        }
        if scope.siteless {
            // Siteless (init/fin) waiters always live in shard 0.
            targets.insert(0);
        }
    }
    if ctx.partitioned {
        if let QueueOp::Init { sites, .. } = acted {
            for site in sites {
                targets.insert(site.index() % ctx.nshards);
            }
        }
    }
    targets.remove(&ctx.shard);
    targets.into_iter().collect()
}

/// Stats bookkeeping for a processed operation (`Gtm2::note_processed`).
fn note_processed(op: &QueueOp, global: &mut GlobalCore) {
    global.stats.processed += 1;
    match op.kind() {
        QueueOpKind::Init => {
            global.stats.inits += 1;
            global.active += 1;
            global.stats.peak_active = global.stats.peak_active.max(global.active);
        }
        QueueOpKind::Fin => {
            global.stats.fins += 1;
            // An unmatched fin must not underflow the active count.
            match global.active.checked_sub(1) {
                Some(a) => global.active = a,
                None => global.stats.protocol_violations += 1,
            }
        }
        QueueOpKind::Ser | QueueOpKind::Ack => {}
    }
}

/// Count a newly waiting operation by kind, without indexing by a
/// computed value.
fn bump_waited_kind(stats: &mut Gtm2Stats, kind: QueueOpKind) {
    match kind {
        QueueOpKind::Init => stats.waited_kind[0] += 1,
        QueueOpKind::Ser => stats.waited_kind[1] += 1,
        QueueOpKind::Ack => stats.waited_kind[2] += 1,
        QueueOpKind::Fin => stats.waited_kind[3] += 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gtm2::Gtm2;
    use mdbs_common::ids::SiteId;

    fn g(i: u64) -> GlobalTxnId {
        GlobalTxnId(i)
    }
    fn s(i: u32) -> SiteId {
        SiteId(i)
    }
    fn init(txn: u64, sites: &[u32]) -> QueueOp {
        QueueOp::Init {
            txn: g(txn),
            sites: sites.iter().map(|&i| s(i)).collect(),
        }
    }
    fn ser(txn: u64, site: u32) -> QueueOp {
        QueueOp::Ser {
            txn: g(txn),
            site: s(site),
        }
    }
    fn ack(txn: u64, site: u32) -> QueueOp {
        QueueOp::Ack {
            txn: g(txn),
            site: s(site),
        }
    }
    fn fin(txn: u64) -> QueueOp {
        QueueOp::Fin { txn: g(txn) }
    }

    /// Full lifecycle of `txns` single-site transactions at `site`,
    /// submitted through the shared-reference API.
    fn run_site_lifecycles(engine: &ShardedGtm2, site: u32, txns: &[u64]) {
        for &t in txns {
            let j = engine.submit(init(t, &[site]));
            engine.pump_shard(j);
        }
        for &t in txns {
            let j = engine.submit(ser(t, site));
            engine.pump_shard(j);
        }
        for &t in txns {
            let j = engine.submit(ack(t, site));
            engine.pump_shard(j);
            let j = engine.submit(fin(t));
            engine.pump_shard(j);
        }
    }

    #[test]
    fn cross_shard_ack_wakes_fin_exactly_once() {
        // Scheme 1, 2 shards: site 1 lives in shard 1, fins in shard 0.
        // fin(2) waits in shard 0 until ack(2, 1) is acted in shard 1 —
        // the wake must cross shards, exactly once.
        let engine = ShardedGtm2::new(SchemeKind::Scheme1, 2);
        for op in [init(1, &[1]), init(2, &[1])] {
            let j = engine.submit(op);
            assert_eq!(j, 0, "inits route to shard 0");
            engine.pump_shard(j);
        }
        for op in [ser(1, 1), ack(1, 1)] {
            let j = engine.submit(op);
            assert_eq!(j, 1, "site-1 ops route to shard 1");
            engine.pump_shard(j);
        }
        let j = engine.submit(fin(1));
        engine.pump_shard(j);
        let j = engine.submit(ser(2, 1));
        engine.pump_shard(j);
        let j = engine.submit(fin(2));
        engine.pump_shard(j);
        assert_eq!(engine.wait_len(), 1, "fin(2) must wait for ack(2,1)");

        let j = engine.submit(ack(2, 1));
        let effects = engine.pump_shard(j);
        assert!(
            effects.contains(&SchemeEffect::ForwardAck {
                txn: g(2),
                site: s(1)
            }),
            "{effects:?}"
        );
        let stats = engine.stats();
        assert_eq!(stats.fins, 2, "each fin acted exactly once");
        assert_eq!(engine.wait_len(), 0);
        assert_eq!(engine.queue_len(), 0);
        assert!(
            engine.cross_shard_handoffs() >= 1,
            "the fin wakeup must travel via handoff"
        );
        assert_eq!(stats.protocol_violations, 0);
    }

    #[test]
    fn handoff_to_empty_shard_is_skipped() {
        // All traffic at site 0 (shard 0); shard 1 never has waiters, so
        // nothing may be delivered to it.
        let engine = ShardedGtm2::new(SchemeKind::Scheme1, 2);
        run_site_lifecycles(&engine, 0, &[1, 2]);
        assert_eq!(engine.stats().fins, 2);
        assert_eq!(engine.wait_len(), 0);
        assert_eq!(engine.queue_len(), 0);
        assert_eq!(
            engine.cross_shard_handoffs(),
            0,
            "deliveries to waiter-less shards must be skipped"
        );
    }

    #[test]
    fn self_handoff_stays_local() {
        // Scheme 0, 2 shards, contention at one site: the ack wakes the
        // waiting ser through the local cascade, not the handoff queue.
        let engine = ShardedGtm2::new(SchemeKind::Scheme0, 2);
        for op in [init(1, &[1]), init(2, &[1])] {
            let j = engine.submit(op);
            engine.pump_shard(j);
        }
        let j = engine.submit(ser(1, 1));
        engine.pump_shard(j);
        let j = engine.submit(ser(2, 1));
        engine.pump_shard(j);
        assert_eq!(engine.wait_len(), 1, "ser(2,1) waits behind ser(1,1)");
        let j = engine.submit(ack(1, 1));
        let effects = engine.pump_shard(j);
        let woken = effects
            .iter()
            .filter(|fx| {
                matches!(
                    fx,
                    SchemeEffect::SubmitSer { txn, site } if *txn == g(2) && *site == s(1)
                )
            })
            .count();
        assert_eq!(woken, 1, "ser(2,1) woken exactly once: {effects:?}");
        assert_eq!(
            engine.cross_shard_handoffs(),
            0,
            "a same-shard wake must not use the handoff queue"
        );
    }

    #[test]
    fn stale_handoff_after_waiter_left_is_harmless() {
        // Scheme 1, 2 shards: two acks are acted back-to-back in shard 1
        // before shard 0 runs. The first handoff wakes both waiting fins
        // (the second fin's cond is true once the first acts); the second
        // handoff then finds no candidates — it must do nothing, not
        // double-act a fin.
        let engine = ShardedGtm2::new(SchemeKind::Scheme1, 2);
        for op in [init(2, &[1]), init(3, &[1])] {
            let j = engine.submit(op);
            engine.pump_shard(j);
        }
        for op in [ser(2, 1), ack(2, 1), ser(3, 1), ack(3, 1)] {
            let j = engine.submit(op);
            engine.pump_shard(j);
        }
        // Delete queue at site 1 is now [G2, G3]; fins act immediately in
        // order. Re-run the shape with the fins *waiting* instead:
        let engine = ShardedGtm2::new(SchemeKind::Scheme1, 2);
        for op in [init(2, &[1]), init(3, &[1])] {
            engine.pump_shard(engine.submit(op));
        }
        for op in [ser(2, 1), ser(3, 1)] {
            engine.pump_shard(engine.submit(op));
        }
        // ser(3,1) waits behind ser(2,1)'s outstanding slot; fins wait too.
        for op in [fin(2), fin(3)] {
            engine.pump_shard(engine.submit(op));
        }
        assert!(engine.wait_len() >= 2);
        // Both acks into shard 1's inbox, then one pump: their two
        // handoffs land in shard 0 together.
        engine.submit(ack(2, 1));
        engine.submit(ack(3, 1));
        engine.pump_shard(1);
        let stats = engine.stats();
        assert_eq!(stats.fins, 2, "fins acted exactly once each");
        assert_eq!(stats.processed, 8, "2 init + 2 ser + 2 ack + 2 fin");
        assert_eq!(engine.wait_len(), 0);
        assert_eq!(engine.queue_len(), 0);
        assert_eq!(stats.protocol_violations, 0);
    }

    #[test]
    fn pre_init_gate_parks_and_releases() {
        // A ser that reaches its site shard before the init is parked,
        // then released exactly once by the init's handoff.
        let engine = ShardedGtm2::new(SchemeKind::Scheme0, 2);
        engine.submit(ser(1, 1)); // shard 1, but G1 not inited yet
        engine.pump_shard(1);
        assert_eq!(engine.queue_len(), 1, "ser parked behind missing init");
        assert_eq!(engine.stats().protocol_violations, 0);
        let j = engine.submit(init(1, &[1]));
        let effects = engine.pump_shard(j);
        assert_eq!(
            effects,
            vec![SchemeEffect::SubmitSer {
                txn: g(1),
                site: s(1)
            }]
        );
        assert_eq!(engine.queue_len(), 0);
        assert_eq!(engine.stats().processed, 2);
    }

    #[test]
    fn deterministic_pump_matches_single_engine() {
        // Identical op streams through Gtm2 and the sharded deterministic
        // pump must produce identical effects, stats and ser(S) for the
        // partitioned schemes.
        for kind in [SchemeKind::Scheme0, SchemeKind::Scheme1] {
            for shards in [1usize, 2, 3] {
                let ops = [
                    init(1, &[0, 1]),
                    init(2, &[1, 2]),
                    ser(1, 0),
                    ser(1, 1),
                    ser(2, 1),
                    ack(1, 0),
                    ack(1, 1),
                    ser(2, 2),
                    ack(2, 1),
                    fin(1),
                    ack(2, 2),
                    fin(2),
                ];
                let mut single = Gtm2::new(kind.build());
                let mut sharded = ShardedGtm2::new(kind, shards);
                let mut fx_single = Vec::new();
                let mut fx_sharded = Vec::new();
                for op in ops {
                    single.enqueue(op.clone());
                    fx_single.extend(single.pump());
                    sharded.enqueue_mut(op);
                    fx_sharded.extend(sharded.pump_all());
                }
                assert_eq!(fx_single, fx_sharded, "{kind:?} @ {shards} shards");
                assert_eq!(single.stats(), sharded.stats(), "{kind:?} @ {shards}");
                assert_eq!(
                    single.ser_log().events(),
                    sharded.ser_log_snapshot().events(),
                    "{kind:?} @ {shards}"
                );
                assert_eq!(sharded.wait_len(), 0);
                assert_eq!(sharded.queue_len(), 0);
            }
        }
    }

    #[test]
    fn unpartitioned_schemes_funnel_through_shard_zero() {
        let engine = ShardedGtm2::new(SchemeKind::Scheme3, 4);
        for op in [init(1, &[2]), ser(1, 2), ack(1, 2), fin(1)] {
            let j = engine.submit(op);
            assert_eq!(j, 0, "Scheme 3 must route everything to shard 0");
            engine.pump_shard(j);
        }
        assert_eq!(engine.stats().fins, 1);
        assert_eq!(engine.cross_shard_handoffs(), 0);
    }
}
