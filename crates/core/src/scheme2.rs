//! Scheme 2 — the TSG-with-dependencies scheme (Section 6 of the paper).
//!
//! Scheme 2 improves on Scheme 1 by *exploiting the order in which
//! operations are processed*: instead of freezing a transaction's position
//! at `init` time with queue marks, it records **dependencies** — the
//! relative processing order of serialization events at each site — and
//! only restricts operations as far as needed to keep the TSGD acyclic
//! (see [`crate::tsgd`] for the cycle semantics and the `Eliminate_Cycles`
//! procedure of Figure 4).
//!
//! | op | `cond` | `act` |
//! |----|--------|-------|
//! | `init_i` | true | insert `Ĝ_i` + edges; add deps from already-executed events at shared sites; `D ∪= Eliminate_Cycles(TSGD, Ĝ_i)` |
//! | `ser_k(G_i)` | every dep-predecessor at `s_k` is acked | record executed; pin `Ĝ_i` before every not-yet-executed `Ĝ_j` at `s_k`; submit |
//! | `ack` | true | record acked; forward |
//! | `fin_i` | `Ĝ_i` has no incoming dependencies | delete `Ĝ_i`, its edges and dependencies |
//!
//! Complexity: `O(n²·d_av)` per transaction (Theorem 6), dominated by
//! `Eliminate_Cycles`.
//!
//! This module is the reference (BTree) realization and the step-accounting
//! oracle. The production path is [`crate::kernel_dense::Scheme2Dense`],
//! which charges identical abstract steps but amortizes the *machine* cost:
//! cursor-amortized `Eliminate_Cycles` rescans
//! ([`crate::tsgd_dense::eliminate_cycles_dense_with`]) and incremental
//! maintenance of the dependency digraph's topological order (batched
//! Δ-edges, Pearce–Kelly region repair, SCC collapse) in
//! [`crate::tsgd_dense::DenseTsgd`].

use crate::scheme::{Gtm2Scheme, SchemeEffect, WaitSet, WakeCandidates};
use crate::tsgd::{eliminate_cycles, Dep, Tsgd};
use mdbs_common::ids::{GlobalTxnId, SiteId};
use mdbs_common::ops::QueueOp;
use mdbs_common::step::{StepCounter, StepKind};
use std::collections::BTreeSet;

/// Scheme 2 state.
#[derive(Clone, Debug, Default)]
pub struct Scheme2 {
    tsgd: Tsgd,
    /// `(txn, site)` pairs whose `act(ser)` has run.
    executed: BTreeSet<(GlobalTxnId, SiteId)>,
    /// `(txn, site)` pairs whose ack has been processed.
    acked: BTreeSet<(GlobalTxnId, SiteId)>,
    /// Use the exact (exponential) minimum-Δ search instead of
    /// `Eliminate_Cycles` — the variant Theorem 7 proves NP-hard. Falls
    /// back to `Eliminate_Cycles` when the candidate set is too large to
    /// enumerate.
    minimal: bool,
}

impl Scheme2 {
    /// Fresh state (paper's Scheme 2: polynomial `Eliminate_Cycles`).
    pub fn new() -> Self {
        Self::default()
    }

    /// The ablation variant: minimum-size Δ by exhaustive search (the
    /// NP-hard problem of Theorem 7), maximizing Scheme 2's concurrency.
    pub fn new_minimal() -> Self {
        Scheme2 {
            minimal: true,
            ..Self::default()
        }
    }

    /// Read access to the TSGD (experiments, diagnostics).
    pub fn tsgd(&self) -> &Tsgd {
        &self.tsgd
    }

    /// True iff `txn` has any incoming dependency.
    fn has_incoming_dep(&self, txn: GlobalTxnId) -> bool {
        self.tsgd.deps().any(|d| d.after == txn)
    }
}

impl Gtm2Scheme for Scheme2 {
    fn name(&self) -> &'static str {
        if self.minimal {
            "Scheme 2-MIN"
        } else {
            "Scheme 2"
        }
    }

    fn cond(&self, op: &QueueOp, steps: &mut StepCounter) -> bool {
        steps.tick(StepKind::Cond);
        match op {
            QueueOp::Ser { txn, site } => {
                // Single pass over the dependency list: count the
                // predecessors (the paper's cost, charged in full either
                // way) and check their acks as they stream by.
                let mut preds = 0u64;
                let mut all_acked = true;
                for d in self.tsgd.deps() {
                    if d.site == *site && d.after == *txn {
                        preds += 1;
                        all_acked &= self.acked.contains(&(d.before, *site));
                    }
                }
                steps.bump(StepKind::Cond, preds + 1);
                all_acked
            }
            QueueOp::Fin { txn } => {
                steps.bump(StepKind::Cond, self.tsgd.dep_count() as u64);
                !self.has_incoming_dep(*txn)
            }
            QueueOp::Init { .. } | QueueOp::Ack { .. } => true,
        }
    }

    fn act(&mut self, op: &QueueOp, steps: &mut StepCounter) -> Vec<SchemeEffect> {
        match op {
            QueueOp::Init { txn, sites } => {
                self.tsgd.insert_txn(*txn, sites);
                steps.bump(StepKind::Act, sites.len() as u64);
                // Order Ĝ_i after every already-executed event at shared
                // sites.
                for &site in sites {
                    let executed_here: Vec<GlobalTxnId> = self
                        .tsgd
                        .txns_at(site)
                        .filter(|&j| j != *txn && self.executed.contains(&(j, site)))
                        .collect();
                    steps.bump(StepKind::Act, executed_here.len() as u64 + 1);
                    for j in executed_here {
                        self.tsgd.add_dep(Dep {
                            site,
                            before: j,
                            after: *txn,
                        });
                    }
                }
                // Break every remaining cycle involving Ĝ_i.
                let delta = if self.minimal {
                    let candidates: usize = sites
                        .iter()
                        .map(|&k| self.tsgd.txns_at(k).filter(|&j| j != *txn).count())
                        .sum();
                    if candidates <= 16 {
                        // Charge the exponential enumeration honestly.
                        steps.bump(StepKind::Act, 1u64 << candidates.min(30));
                        // The exact search enumerates the full candidate
                        // set, so on a well-formed TSGD it always finds a
                        // delta; fall back to the greedy eliminator rather
                        // than panic the pump if that ever breaks.
                        crate::tsgd::minimal_delta_exact(&self.tsgd, *txn)
                            .unwrap_or_else(|| eliminate_cycles(&self.tsgd, *txn, steps))
                    } else {
                        eliminate_cycles(&self.tsgd, *txn, steps)
                    }
                } else {
                    eliminate_cycles(&self.tsgd, *txn, steps)
                };
                for d in delta {
                    self.tsgd.add_dep(d);
                }
                Vec::new()
            }
            QueueOp::Ser { txn, site } => {
                steps.tick(StepKind::Act);
                self.executed.insert((*txn, *site));
                // Pin Ĝ_i before every not-yet-executed event at the site.
                let pending: Vec<GlobalTxnId> = self
                    .tsgd
                    .txns_at(*site)
                    .filter(|&j| j != *txn && !self.executed.contains(&(j, *site)))
                    .collect();
                steps.bump(StepKind::Act, pending.len() as u64 + 1);
                for j in pending {
                    self.tsgd.add_dep(Dep {
                        site: *site,
                        before: *txn,
                        after: j,
                    });
                }
                vec![SchemeEffect::SubmitSer {
                    txn: *txn,
                    site: *site,
                }]
            }
            QueueOp::Ack { txn, site } => {
                steps.tick(StepKind::Act);
                self.acked.insert((*txn, *site));
                vec![SchemeEffect::ForwardAck {
                    txn: *txn,
                    site: *site,
                }]
            }
            QueueOp::Fin { txn } => {
                steps.bump(StepKind::Act, self.tsgd.sites_of(*txn).count() as u64 + 1);
                self.tsgd.remove_txn(*txn);
                self.executed.retain(|(t, _)| t != txn);
                self.acked.retain(|(t, _)| t != txn);
                Vec::new()
            }
        }
    }

    fn wake_candidates(
        &self,
        acted: &QueueOp,
        wait: &WaitSet,
        steps: &mut StepCounter,
    ) -> WakeCandidates {
        steps.tick(StepKind::WaitScan);
        match acted {
            // An ack can satisfy waiting ser conds at its site.
            QueueOp::Ack { site, .. } => {
                steps.bump(StepKind::WaitScan, wait.ser_count_at(*site) as u64);
                WakeCandidates::SerAt(*site)
            }
            // A fin removes dependencies out of the finished transaction,
            // which can unblock other fins.
            QueueOp::Fin { .. } => {
                steps.bump(StepKind::WaitScan, wait.fin_count() as u64);
                WakeCandidates::Fins
            }
            QueueOp::Init { .. } | QueueOp::Ser { .. } => WakeCandidates::None,
        }
    }

    fn debug_validate(&self) {
        // The induction of Theorem 5: the TSGD stays acyclic. The direct
        // checker is exponential, so guard by size.
        if self.tsgd.txns().count() <= 10 {
            assert!(!self.tsgd.has_any_cycle(), "TSGD must remain acyclic");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gtm2::Gtm2;

    fn g(i: u64) -> GlobalTxnId {
        GlobalTxnId(i)
    }
    fn s(i: u32) -> SiteId {
        SiteId(i)
    }
    fn init(i: u64, sites: &[u32]) -> QueueOp {
        QueueOp::Init {
            txn: g(i),
            sites: sites.iter().map(|&k| s(k)).collect(),
        }
    }
    fn ser(i: u64, k: u32) -> QueueOp {
        QueueOp::Ser {
            txn: g(i),
            site: s(k),
        }
    }
    fn ack(i: u64, k: u32) -> QueueOp {
        QueueOp::Ack {
            txn: g(i),
            site: s(k),
        }
    }
    fn fin(i: u64) -> QueueOp {
        QueueOp::Fin { txn: g(i) }
    }

    fn engine() -> Gtm2 {
        let mut e = Gtm2::new(Box::new(Scheme2::new()));
        e.set_validate(true);
        e
    }

    /// The dependency mechanism orders overlapping transactions safely.
    #[test]
    fn overlapping_txns_safe_order() {
        let mut e = engine();
        e.enqueue(init(1, &[0, 1]));
        e.enqueue(init(2, &[0, 1]));
        e.enqueue(ser(1, 0));
        e.enqueue(ser(2, 1));
        let fx = e.pump();
        // Eliminate_Cycles at init(2) pinned G1 before G2 (Δ dependencies
        // always point into the initializing transaction), so G1's event
        // runs and G2's waits for G1's ack at its site.
        assert_eq!(
            fx,
            vec![SchemeEffect::SubmitSer {
                txn: g(1),
                site: s(0)
            }]
        );
        assert_eq!(e.stats().waited, 1);
        e.enqueue(ack(1, 0));
        e.enqueue(ser(1, 1));
        e.pump();
        e.enqueue(ack(1, 1));
        let fx = e.pump();
        // G1's ack at site 1 wakes G2's waiting event there.
        assert!(
            fx.contains(&SchemeEffect::SubmitSer {
                txn: g(2),
                site: s(1)
            }),
            "{fx:?}"
        );
        e.enqueue(ack(2, 1));
        e.enqueue(ser(2, 0));
        e.pump();
        e.enqueue(ack(2, 0));
        e.pump();
        assert!(e.ser_log().check().is_ok());
        assert_eq!(e.ser_log().site_order(s(0)), &[g(1), g(2)]);
        assert_eq!(e.ser_log().site_order(s(1)), &[g(1), g(2)]);
    }

    /// Scheme 2 exploits processing order: if G1's events all execute and
    /// ack before G2's init, G2 is simply ordered after G1 — no waits.
    #[test]
    fn sequential_txns_never_wait() {
        let mut e = engine();
        for i in 1..=3u64 {
            e.enqueue(init(i, &[0, 1]));
            e.enqueue(ser(i, 0));
            e.enqueue(ser(i, 1));
            e.pump();
            e.enqueue(ack(i, 0));
            e.enqueue(ack(i, 1));
            e.enqueue(fin(i));
            e.pump();
        }
        assert_eq!(e.stats().waited, 0);
        assert!(e.ser_log().check().is_ok());
    }

    /// Scheme 2 permits what Scheme 0 forbids: inits in one order, events
    /// executed in the other order at a single shared site.
    #[test]
    fn single_site_out_of_init_order_ok() {
        let mut e = engine();
        e.enqueue(init(1, &[0, 1]));
        e.enqueue(init(2, &[0, 2]));
        // G2's event at the shared site first — Scheme 0 would queue it
        // behind G1; Scheme 2 has no cycle, hence no dependency forcing.
        e.enqueue(ser(2, 0));
        let fx = e.pump();
        assert_eq!(
            fx,
            vec![SchemeEffect::SubmitSer {
                txn: g(2),
                site: s(0)
            }]
        );
        e.enqueue(ack(2, 0));
        e.enqueue(ser(1, 0));
        let fx = e.pump();
        assert!(fx.contains(&SchemeEffect::SubmitSer {
            txn: g(1),
            site: s(0)
        }));
        assert_eq!(e.stats().waited, 0);
        assert!(e.ser_log().check().is_ok());
    }

    /// fin waits until incoming dependencies disappear (predecessors fin).
    #[test]
    fn fin_respects_dependency_order() {
        let mut e = engine();
        e.enqueue(init(1, &[0, 1]));
        e.enqueue(init(2, &[0, 1]));
        e.enqueue(ser(1, 0));
        e.enqueue(ser(1, 1));
        e.pump();
        e.enqueue(ack(1, 0));
        e.enqueue(ack(1, 1));
        e.enqueue(ser(2, 0));
        e.enqueue(ser(2, 1));
        e.pump();
        e.enqueue(ack(2, 0));
        e.enqueue(ack(2, 1));
        // G2 was ordered after G1 by Eliminate_Cycles: its fin must wait
        // for G1's fin.
        e.enqueue(fin(2));
        e.pump();
        assert_eq!(e.wait_len(), 1);
        e.enqueue(fin(1));
        e.pump();
        assert_eq!(e.wait_len(), 0);
        assert_eq!(e.stats().fins, 2);
        assert!(e.ser_log().check().is_ok());
    }
}
