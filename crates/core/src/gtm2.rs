//! GTM2 — the Basic_Scheme engine of Figure 3.
//!
//! ```text
//! procedure Basic_Scheme():
//!   Initialize data structures;
//!   while (true)
//!     Select operation o_j from the front of QUEUE;
//!     if cond(o_j) then
//!        act(o_j);
//!        while (there exists o_l ∈ WAIT such that cond(o_l)) do
//!            act(o_l);  WAIT := WAIT − {o_l}
//!     else WAIT := WAIT ∪ {o_j};
//! ```
//!
//! [`Gtm2::pump`] runs this loop over whatever is currently in QUEUE; the
//! surrounding system calls [`Gtm2::enqueue`] as GTM1 and the servers
//! produce operations. The inner "while exists" search is driven by the
//! scheme's [`wake_candidates`](crate::scheme::Gtm2Scheme::wake_candidates)
//! hints so each scheme pays exactly its own rescan cost.
//!
//! The engine also maintains the [`SerSLog`] — the order in which
//! `ser_k(G_i)` operations were acted — from which the serializability of
//! `ser(S)` is checked (Theorems 3, 5, 8 empirically).

use crate::scheme::{Gtm2Scheme, SchemeEffect, WaitKey, WaitSet};
use crate::ser_s::SerSLog;
use mdbs_common::instrument::{Histogram, Registry, SchedEvent, StderrSink, TraceSink};
use mdbs_common::ops::{QueueOp, QueueOpKind};
use mdbs_common::step::StepCounter;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Counters for experiments.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Gtm2Stats {
    /// Operations inserted into QUEUE.
    pub enqueued: u64,
    /// Operations acted (processed successfully).
    pub processed: u64,
    /// Operations added to WAIT at least once — the paper's degree-of-
    /// concurrency metric (fewer is better).
    pub waited: u64,
    /// Operations added to WAIT, by kind `[init, ser, ack, fin]`. The
    /// paper's Scheme 3 all-serializable-schedules claim is about the `ser`
    /// component.
    pub waited_kind: [u64; 4],
    /// Global transactions aborted by the scheme (always 0 for the paper's
    /// conservative schemes; nonzero only for baselines).
    pub scheme_aborts: u64,
    /// `init` operations processed (transactions entering GTM2).
    pub inits: u64,
    /// `fin` operations processed (transactions leaving GTM2).
    pub fins: u64,
    /// Peak size of the WAIT set.
    pub peak_wait: u64,
    /// Peak number of concurrently active transactions (`n` observed).
    pub peak_active: u64,
    /// Malformed operations detected (unmatched fins, out-of-order acks —
    /// surfaced by schemes as [`SchemeEffect::ProtocolViolation`]).
    pub protocol_violations: u64,
}

/// The GTM2 scheduler: QUEUE + WAIT + a scheme.
///
/// ```
/// use mdbs_core::gtm2::Gtm2;
/// use mdbs_core::scheme::{SchemeEffect, SchemeKind};
/// use mdbs_common::ids::{GlobalTxnId, SiteId};
/// use mdbs_common::ops::QueueOp;
///
/// let mut gtm2 = Gtm2::new(SchemeKind::Scheme0.build());
/// gtm2.enqueue(QueueOp::Init { txn: GlobalTxnId(1), sites: vec![SiteId(0)] });
/// gtm2.enqueue(QueueOp::Ser { txn: GlobalTxnId(1), site: SiteId(0) });
/// let effects = gtm2.pump();
/// assert_eq!(
///     effects,
///     vec![SchemeEffect::SubmitSer { txn: GlobalTxnId(1), site: SiteId(0) }],
/// );
/// ```
pub struct Gtm2 {
    scheme: Box<dyn Gtm2Scheme + Send>,
    queue: VecDeque<QueueOp>,
    wait: WaitSet,
    steps: StepCounter,
    stats: Gtm2Stats,
    ser_log: SerSLog,
    active: u64,
    /// Validate scheme invariants after every act (used by tests).
    validate: bool,
    /// Wake candidates examined per act (log₂ histogram).
    wake_scan: Histogram,
    /// Reusable buffer for the cascading wake worklist (no per-act
    /// allocation).
    wake_buf: VecDeque<WaitKey>,
    /// Structured event sink; `None` = tracing disabled (one branch, no
    /// formatting or allocation on the hot path).
    sink: Option<Box<dyn TraceSink + Send>>,
    /// Producer clock stamped onto sink events (set by the embedding
    /// runtime; stays 0 where there is no clock).
    clock: u64,
}

impl Gtm2 {
    /// Create an engine around a scheme. The `MDBS_TRACE` environment
    /// variable attaches a [`StderrSink`] for parity with the old debug
    /// tracing; use [`Gtm2::set_sink`] for structured collection.
    pub fn new(scheme: Box<dyn Gtm2Scheme + Send>) -> Self {
        let sink: Option<Box<dyn TraceSink + Send>> = if std::env::var_os("MDBS_TRACE").is_some() {
            Some(Box::new(StderrSink))
        } else {
            None
        };
        Gtm2 {
            scheme,
            queue: VecDeque::new(),
            wait: WaitSet::new(),
            steps: StepCounter::new(),
            stats: Gtm2Stats::default(),
            ser_log: SerSLog::new(),
            active: 0,
            validate: cfg!(debug_assertions),
            wake_scan: Histogram::new(),
            wake_buf: VecDeque::new(),
            sink,
            clock: 0,
        }
    }

    /// Enable/disable per-act scheme invariant validation.
    pub fn set_validate(&mut self, on: bool) {
        self.validate = on;
    }

    /// Attach (or with `None`, detach) a structured event sink. Can be
    /// toggled mid-run; scheduling behavior is unaffected either way.
    pub fn set_sink(&mut self, sink: Option<Box<dyn TraceSink + Send>>) {
        self.sink = sink;
    }

    /// Detach and return the current sink.
    pub fn take_sink(&mut self) -> Option<Box<dyn TraceSink + Send>> {
        self.sink.take()
    }

    /// Set the clock value stamped onto subsequent sink events.
    pub fn set_now(&mut self, at: u64) {
        self.clock = at;
    }

    /// Wake candidates examined per act.
    pub fn wake_scan_histogram(&self) -> &Histogram {
        &self.wake_scan
    }

    /// Export counters, gauges and histograms into `registry` under the
    /// `gtm2.` prefix.
    pub fn export_metrics(&self, registry: &mut Registry) {
        let s = &self.stats;
        registry.inc("gtm2.enqueued", s.enqueued);
        registry.inc("gtm2.processed", s.processed);
        registry.inc("gtm2.waited", s.waited);
        registry.inc("gtm2.waited.init", s.waited_kind[0]);
        registry.inc("gtm2.waited.ser", s.waited_kind[1]);
        registry.inc("gtm2.waited.ack", s.waited_kind[2]);
        registry.inc("gtm2.waited.fin", s.waited_kind[3]);
        registry.inc("gtm2.scheme_aborts", s.scheme_aborts);
        registry.inc("gtm2.inits", s.inits);
        registry.inc("gtm2.fins", s.fins);
        registry.inc("gtm2.protocol_violations", s.protocol_violations);
        registry.inc("gtm2.steps.cond", self.steps.cond);
        registry.inc("gtm2.steps.act", self.steps.act);
        registry.inc("gtm2.steps.wait_scan", self.steps.wait_scan);
        registry.max_gauge("gtm2.peak_wait", s.peak_wait as i64);
        registry.max_gauge("gtm2.peak_active", s.peak_active as i64);
        registry.merge_histogram("gtm2.wake_scan", &self.wake_scan);
        self.scheme.export_metrics(registry);
    }

    /// The scheme's display name.
    pub fn scheme_name(&self) -> &'static str {
        self.scheme.name()
    }

    /// Accumulated abstract step counts.
    pub fn steps(&self) -> StepCounter {
        self.steps
    }

    /// Engine counters.
    pub fn stats(&self) -> Gtm2Stats {
        self.stats
    }

    /// The recorded `ser(S)` log.
    pub fn ser_log(&self) -> &SerSLog {
        &self.ser_log
    }

    /// Number of operations currently waiting.
    pub fn wait_len(&self) -> usize {
        self.wait.len()
    }

    /// Number of operations queued but not yet examined.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Insert an operation at the end of QUEUE.
    pub fn enqueue(&mut self, op: QueueOp) {
        if let Some(sink) = &mut self.sink {
            sink.record(self.clock, SchedEvent::enqueue(&op));
        }
        self.stats.enqueued += 1;
        self.queue.push_back(op);
    }

    /// Run the Basic_Scheme loop until QUEUE is empty. Returns the effects
    /// produced, in order.
    pub fn pump(&mut self) -> Vec<SchemeEffect> {
        let mut effects = Vec::new();
        while let Some(op) = self.queue.pop_front() {
            let eligible = self.scheme.cond(&op, &mut self.steps);
            if let Some(sink) = &mut self.sink {
                sink.record(self.clock, SchedEvent::cond(&op, eligible));
            }
            if eligible {
                self.do_act(op, &mut effects);
            } else {
                if let Some(sink) = &mut self.sink {
                    sink.record(self.clock, SchedEvent::wait(&op));
                }
                self.stats.waited += 1;
                // mdbs-lint: allow(no-panic-in-scheduler) — kind_index maps the four QueueOp kinds to 0..=3, within the fixed-size array.
                self.stats.waited_kind[kind_index(op.kind())] += 1;
                self.wait.insert(op);
                self.stats.peak_wait = self.stats.peak_wait.max(self.wait.len() as u64);
            }
        }
        effects
    }

    /// `act(op)` followed by the cascading WAIT re-examination.
    ///
    /// Figure 3's inner loop is `while ∃ o_l ∈ WAIT with cond(o_l): act(o_l)`
    /// — each eligible waiter is acted **immediately**, with `cond`
    /// evaluated against the *current* data structures. Batching the
    /// eligibility checks would let two mutually exclusive operations
    /// (e.g. two ser ops at one site whose conds both looked true before
    /// either acted) slip through together.
    fn do_act(&mut self, op: QueueOp, effects: &mut Vec<SchemeEffect>) {
        let act_now = |this: &mut Self,
                       acted: &QueueOp,
                       woken: bool,
                       effects: &mut Vec<SchemeEffect>,
                       candidates: &mut VecDeque<WaitKey>| {
            if let Some(sink) = &mut this.sink {
                let ev = if woken {
                    SchedEvent::wake(acted)
                } else {
                    SchedEvent::act(acted)
                };
                sink.record(this.clock, ev);
            }
            this.note_processed(acted);
            let fx = this.scheme.act(acted, &mut this.steps);
            if this.validate {
                this.scheme.debug_validate();
            }
            for effect in &fx {
                match effect {
                    SchemeEffect::SubmitSer { txn, site } => this.ser_log.record(*txn, *site),
                    SchemeEffect::AbortGlobal { txn } => {
                        this.stats.scheme_aborts += 1;
                        if let Some(sink) = &mut this.sink {
                            sink.record(this.clock, SchedEvent::Abort { txn: *txn });
                        }
                    }
                    SchemeEffect::ForwardAck { .. } => {}
                    SchemeEffect::ProtocolViolation { .. } => {
                        this.stats.protocol_violations += 1;
                    }
                }
            }
            effects.extend(fx.iter().copied());
            let wake = this
                .scheme
                .wake_candidates(acted, &this.wait, &mut this.steps);
            let appended = this.wait.resolve_into(&wake, candidates);
            this.wake_scan.observe(appended as u64);
        };
        // Reuse the engine-owned worklist (taken so the closure can borrow
        // `self` mutably alongside it).
        let mut candidates = std::mem::take(&mut self.wake_buf);
        candidates.clear();
        act_now(self, &op, false, effects, &mut candidates);
        while let Some(key) = candidates.pop_front() {
            // The op may have been woken (or re-examined) already.
            let Some(waiting) = self.wait.remove(&key) else {
                continue;
            };
            let eligible = self.scheme.cond(&waiting, &mut self.steps);
            if let Some(sink) = &mut self.sink {
                sink.record(self.clock, SchedEvent::cond(&waiting, eligible));
            }
            if eligible {
                // Act immediately; its own wake candidates join the queue.
                act_now(self, &waiting, true, effects, &mut candidates);
            } else {
                self.wait.insert(waiting);
            }
        }
        self.wake_buf = candidates;
    }

    fn note_processed(&mut self, op: &QueueOp) {
        self.stats.processed += 1;
        match op.kind() {
            QueueOpKind::Init => {
                self.stats.inits += 1;
                self.active += 1;
                self.stats.peak_active = self.stats.peak_active.max(self.active);
            }
            QueueOpKind::Fin => {
                self.stats.fins += 1;
                // An unmatched fin must not underflow the active count
                // (and thereby skew peak_active for the rest of the run).
                match self.active.checked_sub(1) {
                    Some(a) => self.active = a,
                    None => self.stats.protocol_violations += 1,
                }
            }
            QueueOpKind::Ser | QueueOpKind::Ack => {}
        }
    }
}

/// Dense index of a queue-op kind for the `waited_kind` counters.
fn kind_index(kind: QueueOpKind) -> usize {
    match kind {
        QueueOpKind::Init => 0,
        QueueOpKind::Ser => 1,
        QueueOpKind::Ack => 2,
        QueueOpKind::Fin => 3,
    }
}

impl std::fmt::Debug for Gtm2 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gtm2")
            .field("scheme", &self.scheme.name())
            .field("queue", &self.queue.len())
            .field("wait", &self.wait.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::SchemeKind;
    use mdbs_common::ids::{GlobalTxnId, SiteId};

    fn g(i: u64) -> GlobalTxnId {
        GlobalTxnId(i)
    }
    fn s(i: u32) -> SiteId {
        SiteId(i)
    }

    /// Drive one transaction through Scheme 0 end to end.
    #[test]
    fn single_txn_flows_through() {
        let mut e = Gtm2::new(SchemeKind::Scheme0.build());
        e.enqueue(QueueOp::Init {
            txn: g(1),
            sites: vec![s(0), s(1)],
        });
        e.enqueue(QueueOp::Ser {
            txn: g(1),
            site: s(0),
        });
        e.enqueue(QueueOp::Ser {
            txn: g(1),
            site: s(1),
        });
        let fx = e.pump();
        assert_eq!(
            fx,
            vec![
                SchemeEffect::SubmitSer {
                    txn: g(1),
                    site: s(0)
                },
                SchemeEffect::SubmitSer {
                    txn: g(1),
                    site: s(1)
                },
            ]
        );
        e.enqueue(QueueOp::Ack {
            txn: g(1),
            site: s(0),
        });
        e.enqueue(QueueOp::Ack {
            txn: g(1),
            site: s(1),
        });
        e.enqueue(QueueOp::Fin { txn: g(1) });
        let fx = e.pump();
        assert_eq!(
            fx,
            vec![
                SchemeEffect::ForwardAck {
                    txn: g(1),
                    site: s(0)
                },
                SchemeEffect::ForwardAck {
                    txn: g(1),
                    site: s(1)
                },
            ]
        );
        assert_eq!(e.stats().processed, 6);
        assert_eq!(e.stats().waited, 0);
        assert_eq!(e.wait_len(), 0);
        assert!(e.ser_log().check().is_ok());
    }

    /// Two transactions at one site: the second ser op waits for the
    /// first's ack under Scheme 0.
    #[test]
    fn contention_waits_and_wakes() {
        let mut e = Gtm2::new(SchemeKind::Scheme0.build());
        e.enqueue(QueueOp::Init {
            txn: g(1),
            sites: vec![s(0)],
        });
        e.enqueue(QueueOp::Init {
            txn: g(2),
            sites: vec![s(0)],
        });
        e.enqueue(QueueOp::Ser {
            txn: g(1),
            site: s(0),
        });
        e.enqueue(QueueOp::Ser {
            txn: g(2),
            site: s(0),
        });
        let fx = e.pump();
        assert_eq!(
            fx,
            vec![SchemeEffect::SubmitSer {
                txn: g(1),
                site: s(0)
            }]
        );
        assert_eq!(e.wait_len(), 1);
        assert_eq!(e.stats().waited, 1);
        // Ack of g1 wakes g2's ser.
        e.enqueue(QueueOp::Ack {
            txn: g(1),
            site: s(0),
        });
        let fx = e.pump();
        assert_eq!(
            fx,
            vec![
                SchemeEffect::ForwardAck {
                    txn: g(1),
                    site: s(0)
                },
                SchemeEffect::SubmitSer {
                    txn: g(2),
                    site: s(0)
                },
            ]
        );
        assert_eq!(e.wait_len(), 0);
    }

    #[test]
    fn stats_track_active_peak() {
        let mut e = Gtm2::new(SchemeKind::Scheme0.build());
        for i in 1..=3 {
            e.enqueue(QueueOp::Init {
                txn: g(i),
                sites: vec![s(0)],
            });
        }
        e.pump();
        assert_eq!(e.stats().peak_active, 3);
        assert_eq!(e.stats().inits, 3);
    }
}
