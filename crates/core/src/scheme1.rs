//! Scheme 1 — the Transaction-Site Graph scheme (Section 5 of the paper).
//!
//! The TSG is an undirected bipartite graph of transaction nodes and site
//! nodes with an edge `(Ĝ_i, s_k)` for every `ser_k(G_i) ∈ Ĝ_i`. The TSG
//! may contain cycles; serializability is protected by **marking**: when
//! `init_i` is processed, each of `Ĝ_i`'s operations whose TSG edge lies on
//! a cycle is marked, and a marked operation may only be processed when it
//! is first in its site's *insert queue* — i.e. after everything inserted
//! before it at that site has been processed *and acknowledged*. Unmarked
//! operations are unconstrained (beyond the one-outstanding-per-site rule
//! every scheme needs so the act order is the local execution order).
//!
//! Departures from a literal reading: none in behavior; for the cycle test
//! we compute *bridges* of the TSG in a single DFS — an edge lies on a
//! cycle iff it is not a bridge — which is what gives Theorem 4's
//! `O(m + n + n·d_av)` bound (one DFS per `init`, not one per edge).

use crate::scheme::{
    Gtm2Scheme, ProtocolViolationKind, SchemeEffect, WaitSet, WakeCandidates, WakeScope,
};
use mdbs_common::ids::{GlobalTxnId, SiteId};
use mdbs_common::ops::{QueueOp, QueueOpKind};
use mdbs_common::step::{StepCounter, StepKind};
use mdbs_schedule::UnGraph;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A TSG node: transaction or site.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum TsgNode {
    /// Transaction node `Ĝ_i`.
    Txn(GlobalTxnId),
    /// Site node `s_k`.
    Site(SiteId),
}

/// Scheme 1 state.
#[derive(Clone, Debug)]
pub struct Scheme1 {
    tsg: UnGraph<TsgNode>,
    /// Per-site insert queues (entries live from `init` to `ack`).
    insert_queues: BTreeMap<SiteId, VecDeque<GlobalTxnId>>,
    /// Per-site delete queues (entries live from `ack` to `fin`).
    delete_queues: BTreeMap<SiteId, VecDeque<GlobalTxnId>>,
    /// Marked operations.
    marked: BTreeSet<(GlobalTxnId, SiteId)>,
    /// Site with a submitted-but-unacknowledged operation.
    outstanding: BTreeMap<SiteId, GlobalTxnId>,
    /// Site set per live transaction (contents of `Ĝ_i`).
    sites: BTreeMap<GlobalTxnId, Vec<SiteId>>,
}

impl Default for Scheme1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheme1 {
    /// Fresh state.
    pub fn new() -> Self {
        Scheme1 {
            tsg: UnGraph::new(),
            insert_queues: BTreeMap::new(),
            delete_queues: BTreeMap::new(),
            marked: BTreeSet::new(),
            outstanding: BTreeMap::new(),
            sites: BTreeMap::new(),
        }
    }

    /// Number of marked operations currently tracked (diagnostics).
    pub fn marked_count(&self) -> usize {
        self.marked.len()
    }

    fn insert_front(&self, site: SiteId) -> Option<GlobalTxnId> {
        self.insert_queues
            .get(&site)
            .and_then(|q| q.front().copied())
    }

    fn delete_front(&self, site: SiteId) -> Option<GlobalTxnId> {
        self.delete_queues
            .get(&site)
            .and_then(|q| q.front().copied())
    }
}

impl Gtm2Scheme for Scheme1 {
    fn name(&self) -> &'static str {
        "Scheme 1"
    }

    fn cond(&self, op: &QueueOp, steps: &mut StepCounter) -> bool {
        steps.tick(StepKind::Cond);
        match op {
            QueueOp::Ser { txn, site } => {
                // No submitted-but-unacked operation at the site…
                if self.outstanding.contains_key(site) {
                    return false;
                }
                // …and a marked operation must head its insert queue.
                if self.marked.contains(&(*txn, *site)) {
                    return self.insert_front(*site) == Some(*txn);
                }
                true
            }
            QueueOp::Fin { txn } => {
                let sites = self.sites.get(txn).map_or(&[][..], Vec::as_slice);
                steps.bump(StepKind::Cond, sites.len() as u64);
                sites.iter().all(|&k| self.delete_front(k) == Some(*txn))
            }
            QueueOp::Init { .. } | QueueOp::Ack { .. } => true,
        }
    }

    fn act(&mut self, op: &QueueOp, steps: &mut StepCounter) -> Vec<SchemeEffect> {
        match op {
            QueueOp::Init { txn, sites } => {
                // Insert Ĝ_i and its edges.
                for &site in sites {
                    steps.tick(StepKind::Act);
                    self.tsg.add_edge(TsgNode::Txn(*txn), TsgNode::Site(site));
                    self.insert_queues.entry(site).or_default().push_back(*txn);
                }
                self.sites.insert(*txn, sites.clone());
                // One bridge DFS marks all of Ĝ_i's cycle edges (an edge is
                // on a cycle iff it is not a bridge). Charge V + E steps.
                steps.bump(
                    StepKind::Act,
                    (self.tsg.node_count() + self.tsg.edge_count()) as u64,
                );
                let bridges = self.tsg.bridges();
                for &site in sites {
                    let a = TsgNode::Txn(*txn);
                    let b = TsgNode::Site(site);
                    let key = if a < b { (a, b) } else { (b, a) };
                    if !bridges.contains(&key) {
                        self.marked.insert((*txn, site));
                    }
                }
                Vec::new()
            }
            QueueOp::Ser { txn, site } => {
                steps.tick(StepKind::Act);
                self.outstanding.insert(*site, *txn);
                vec![SchemeEffect::SubmitSer {
                    txn: *txn,
                    site: *site,
                }]
            }
            QueueOp::Ack { txn, site } => {
                debug_assert_eq!(self.outstanding.get(site), Some(txn));
                self.outstanding.remove(site);
                // Delete from the insert queue (note: not necessarily the
                // front — unmarked operations overtake marked ones). A
                // malformed ack is refused, not panicked on: acks come
                // from site servers, outside the scheduler's trust base.
                let Some(q) = self.insert_queues.get_mut(site) else {
                    return vec![SchemeEffect::ProtocolViolation {
                        txn: *txn,
                        site: Some(*site),
                        kind: ProtocolViolationKind::UnknownSite,
                    }];
                };
                let Some(pos) = q.iter().position(|t| t == txn) else {
                    return vec![SchemeEffect::ProtocolViolation {
                        txn: *txn,
                        site: Some(*site),
                        kind: ProtocolViolationKind::AckNotQueued,
                    }];
                };
                steps.bump(StepKind::Act, pos as u64 + 1);
                q.remove(pos);
                self.marked.remove(&(*txn, *site));
                self.delete_queues.entry(*site).or_default().push_back(*txn);
                vec![SchemeEffect::ForwardAck {
                    txn: *txn,
                    site: *site,
                }]
            }
            QueueOp::Fin { txn } => {
                let Some(sites) = self.sites.remove(txn) else {
                    return vec![SchemeEffect::ProtocolViolation {
                        txn: *txn,
                        site: None,
                        kind: ProtocolViolationKind::UnmatchedFin,
                    }];
                };
                let mut effects = Vec::new();
                for &site in &sites {
                    steps.tick(StepKind::Act);
                    let Some(q) = self.delete_queues.get_mut(&site) else {
                        effects.push(SchemeEffect::ProtocolViolation {
                            txn: *txn,
                            site: Some(site),
                            kind: ProtocolViolationKind::UnknownSite,
                        });
                        continue;
                    };
                    let front = q.pop_front();
                    debug_assert_eq!(front, Some(*txn), "cond(fin) guaranteed front");
                    self.tsg
                        .remove_edge(TsgNode::Txn(*txn), TsgNode::Site(site));
                }
                self.tsg.remove_node(TsgNode::Txn(*txn));
                effects
            }
        }
    }

    fn wake_candidates(
        &self,
        acted: &QueueOp,
        wait: &WaitSet,
        steps: &mut StepCounter,
    ) -> WakeCandidates {
        steps.tick(StepKind::WaitScan);
        match acted {
            QueueOp::Ack { site, .. } => {
                // The site lost its outstanding op and its insert-queue
                // front may have changed: waiting ser ops there are
                // candidates. The ack also appended to the delete queue,
                // which can enable a fin whose other sites were ready.
                steps.bump(
                    StepKind::WaitScan,
                    (wait.ser_count_at(*site) + wait.fin_count()) as u64,
                );
                WakeCandidates::SerAtThenFins(*site)
            }
            QueueOp::Fin { .. } => {
                // Delete-queue fronts changed: other fins are candidates.
                steps.bump(StepKind::WaitScan, wait.fin_count() as u64);
                WakeCandidates::Fins
            }
            QueueOp::Init { .. } | QueueOp::Ser { .. } => WakeCandidates::None,
        }
    }

    fn wake_scope(&self, kind: QueueOpKind) -> WakeScope {
        // Mirrors `wake_candidates`: an ack wakes ser waiters at its own
        // site plus (siteless) fin waiters; a fin wakes other fins.
        match kind {
            QueueOpKind::Ack => WakeScope::ACTED_SITE_AND_SITELESS,
            QueueOpKind::Fin => WakeScope::SITELESS,
            QueueOpKind::Init | QueueOpKind::Ser => WakeScope::NOTHING,
        }
    }

    fn debug_validate(&self) {
        // Outstanding ops are unique per site and correspond to inserted
        // transactions.
        for (site, txn) in &self.outstanding {
            assert!(
                self.insert_queues
                    .get(site)
                    .is_some_and(|q| q.contains(txn)),
                "outstanding {txn} not in insert queue of {site}"
            );
        }
        // A transaction never sits in both queues of one site.
        for (site, iq) in &self.insert_queues {
            if let Some(dq) = self.delete_queues.get(site) {
                for t in iq {
                    assert!(!dq.contains(t), "{t} in both queues at {site}");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gtm2::Gtm2;

    fn g(i: u64) -> GlobalTxnId {
        GlobalTxnId(i)
    }
    fn s(i: u32) -> SiteId {
        SiteId(i)
    }
    fn init(i: u64, sites: &[u32]) -> QueueOp {
        QueueOp::Init {
            txn: g(i),
            sites: sites.iter().map(|&k| s(k)).collect(),
        }
    }
    fn ser(i: u64, k: u32) -> QueueOp {
        QueueOp::Ser {
            txn: g(i),
            site: s(k),
        }
    }
    fn ack(i: u64, k: u32) -> QueueOp {
        QueueOp::Ack {
            txn: g(i),
            site: s(k),
        }
    }
    fn fin(i: u64) -> QueueOp {
        QueueOp::Fin { txn: g(i) }
    }

    /// Transactions at disjoint sites are never marked and never wait.
    #[test]
    fn disjoint_txns_unconstrained() {
        let mut e = Gtm2::new(Box::new(Scheme1::new()));
        e.enqueue(init(1, &[0]));
        e.enqueue(init(2, &[1]));
        e.enqueue(ser(1, 0));
        e.enqueue(ser(2, 1));
        let fx = e.pump();
        assert_eq!(fx.len(), 2);
        assert_eq!(e.stats().waited, 0);
    }

    /// Two transactions sharing two sites form a TSG cycle: all four edges
    /// marked, forcing insert-queue order.
    #[test]
    fn shared_pair_of_sites_marks_and_orders() {
        let mut e = Gtm2::new(Box::new(Scheme1::new()));
        e.enqueue(init(1, &[0, 1]));
        e.enqueue(init(2, &[0, 1]));
        // G2's ops arrive first but G1 heads both insert queues.
        e.enqueue(ser(2, 0));
        e.enqueue(ser(2, 1));
        let fx = e.pump();
        assert!(fx.is_empty(), "marked non-front ops must wait: {fx:?}");
        assert_eq!(e.stats().waited, 2);
        e.enqueue(ser(1, 0));
        e.enqueue(ser(1, 1));
        let fx = e.pump();
        assert_eq!(fx.len(), 2); // G1 submits at both sites
        e.enqueue(ack(1, 0));
        e.enqueue(ack(1, 1));
        let fx = e.pump();
        // G1's acks free the queue fronts; G2's waiting sers run.
        assert!(fx.contains(&SchemeEffect::SubmitSer {
            txn: g(2),
            site: s(0)
        }));
        assert!(fx.contains(&SchemeEffect::SubmitSer {
            txn: g(2),
            site: s(1)
        }));
        assert!(e.ser_log().check().is_ok());
    }

    /// Scheme 1 beats Scheme 0: a single shared site does not create a TSG
    /// cycle, so the later transaction proceeds without waiting for the
    /// earlier one's ack — Scheme 0 would have queued it.
    #[test]
    fn single_shared_site_no_marks() {
        let mut e = Gtm2::new(Box::new(Scheme1::new()));
        e.enqueue(init(1, &[0, 1]));
        e.enqueue(init(2, &[0, 2]));
        e.enqueue(ser(1, 0));
        let fx = e.pump();
        assert_eq!(fx.len(), 1);
        e.enqueue(ack(1, 0));
        e.enqueue(ser(2, 0));
        let fx = e.pump();
        assert!(fx.contains(&SchemeEffect::SubmitSer {
            txn: g(2),
            site: s(0)
        }));
        assert_eq!(e.stats().waited, 0);
    }

    /// fins respect per-site ack order via the delete queues.
    #[test]
    fn fin_waits_for_delete_queue_front() {
        let mut e = Gtm2::new(Box::new(Scheme1::new()));
        e.enqueue(init(1, &[0]));
        e.enqueue(init(2, &[0]));
        e.enqueue(ser(1, 0));
        e.pump();
        e.enqueue(ack(1, 0));
        e.enqueue(ser(2, 0));
        e.pump();
        e.enqueue(ack(2, 0));
        e.pump();
        // G2's fin must wait until G1's fin pops the delete queue.
        e.enqueue(fin(2));
        e.pump();
        assert_eq!(e.wait_len(), 1);
        e.enqueue(fin(1));
        e.pump();
        assert_eq!(e.wait_len(), 0);
        assert_eq!(e.stats().fins, 2);
    }

    #[test]
    fn marked_count_tracks_cycle_edges() {
        let mut scheme = Scheme1::new();
        let mut steps = mdbs_common::step::StepCounter::new();
        scheme.act(&init(1, &[0, 1]), &mut steps);
        assert_eq!(scheme.marked_count(), 0, "no cycle with one txn");
        scheme.act(&init(2, &[0, 1]), &mut steps);
        // The TSG cycle marks all four edges of G1 and G2? Only G2's edges
        // are marked (marking happens at each txn's own init).
        assert_eq!(scheme.marked_count(), 2);
    }

    /// Later unmarked ops may overtake a waiting marked op at the same
    /// site (the paper: only marked ops are queue-constrained).
    #[test]
    fn unmarked_overtakes_marked() {
        let mut e = Gtm2::new(Box::new(Scheme1::new()));
        e.enqueue(init(1, &[0, 1]));
        e.enqueue(init(2, &[0, 1])); // cycle with G1: G2 marked behind G1
        e.enqueue(init(3, &[0, 2])); // no cycle: unmarked at site 0
        e.enqueue(ser(2, 0)); // marked, not front -> waits
        e.enqueue(ser(3, 0)); // unmarked -> proceeds
        let fx = e.pump();
        assert_eq!(
            fx,
            vec![SchemeEffect::SubmitSer {
                txn: g(3),
                site: s(0)
            }]
        );
        assert_eq!(e.stats().waited, 1);
    }
}
