//! Scheme 3 — the O-scheme that permits all serializable schedules
//! (Section 7 of the paper).
//!
//! BT-schemes freeze a transaction's constraints at `init` and therefore
//! either concede concurrency (Schemes 0, 1) or tractability (minimal
//! dependencies are NP-hard — Theorem 7). Scheme 3 instead adds the
//! *minimum* restriction every time an `init_i` **or** `ser_k(G_i)` is
//! processed, tracking for each active transaction the set `ser_bef(Ĝ_i)`
//! of transactions serialized before it:
//!
//! - `last_k` — the transaction whose event most recently executed at `s_k`;
//! - `set_k` — transactions announced at `s_k` whose event has not yet
//!   executed;
//! - when `ser_k(G_i)` executes, `Ĝ_i` is serialized before everything
//!   still in `set_k`, and that ordering propagates transitively.
//!
//! `cond(ser_k(G_i))` holds iff the previous event at `s_k` is acked (the
//! per-site serial-execution rule every scheme needs) **and** no
//! transaction that must precede `Ĝ_i` is still pending at `s_k`
//! (`ser_bef(Ĝ_i) ∩ set_k = ∅`) — processing it then can never close a
//! serialization cycle (Theorem 8), and *not* processing it would be
//! necessary, which is why Scheme 3 admits every serializable insertion
//! order. Complexity `O(n²·d_av)` (Theorem 9), dominated by the
//! `ser_bef` propagation at `act(ser)`.

use crate::scheme::{Gtm2Scheme, ProtocolViolationKind, SchemeEffect, WaitSet, WakeCandidates};
use mdbs_common::ids::{GlobalTxnId, SiteId};
use mdbs_common::ops::QueueOp;
use mdbs_common::step::{StepCounter, StepKind};
use std::collections::{BTreeMap, BTreeSet};

/// Shared empty set for the borrow-not-clone paths in `act(ser)`.
static EMPTY_SET: BTreeSet<GlobalTxnId> = BTreeSet::new();

/// Scheme 3 state.
#[derive(Clone, Debug, Default)]
pub struct Scheme3 {
    /// `ser_bef(Ĝ_i)`: transactions serialized before `Ĝ_i`. Maintained
    /// transitively closed.
    ser_bef: BTreeMap<GlobalTxnId, BTreeSet<GlobalTxnId>>,
    /// `last_k`: most recent transaction whose event executed at the site.
    last: BTreeMap<SiteId, GlobalTxnId>,
    /// `set_k`: announced-but-not-executed transactions per site.
    sets: BTreeMap<SiteId, BTreeSet<GlobalTxnId>>,
    /// Acked `(txn, site)` events.
    acked: BTreeSet<(GlobalTxnId, SiteId)>,
    /// Site list per live transaction.
    sites: BTreeMap<GlobalTxnId, Vec<SiteId>>,
}

impl Scheme3 {
    /// Fresh state.
    pub fn new() -> Self {
        Self::default()
    }

    /// `ser_bef(Ĝ_i)` (empty if unknown) — exposed for experiments.
    pub fn ser_bef(&self, txn: GlobalTxnId) -> BTreeSet<GlobalTxnId> {
        self.ser_bef.get(&txn).cloned().unwrap_or_default()
    }

    fn set_at(&self, site: SiteId) -> Option<&BTreeSet<GlobalTxnId>> {
        self.sets.get(&site)
    }
}

impl Gtm2Scheme for Scheme3 {
    fn name(&self) -> &'static str {
        "Scheme 3"
    }

    fn cond(&self, op: &QueueOp, steps: &mut StepCounter) -> bool {
        steps.tick(StepKind::Cond);
        match op {
            QueueOp::Ser { txn, site } => {
                // Previous event at the site must be acked.
                if let Some(&l) = self.last.get(site) {
                    steps.tick(StepKind::Cond);
                    if !self.acked.contains(&(l, *site)) {
                        return false;
                    }
                }
                // No must-precede transaction may still be pending here.
                let bef = self.ser_bef.get(txn);
                let set = self.set_at(*site);
                match (bef, set) {
                    (Some(bef), Some(set)) => {
                        steps.bump(StepKind::Cond, bef.len().min(set.len()) as u64);
                        bef.intersection(set).next().is_none()
                    }
                    _ => true,
                }
            }
            QueueOp::Fin { txn } => self.ser_bef.get(txn).is_none_or(BTreeSet::is_empty),
            QueueOp::Init { .. } | QueueOp::Ack { .. } => true,
        }
    }

    fn act(&mut self, op: &QueueOp, steps: &mut StepCounter) -> Vec<SchemeEffect> {
        match op {
            QueueOp::Init { txn, sites } => {
                let mut bef = BTreeSet::new();
                for &site in sites {
                    steps.tick(StepKind::Act);
                    self.sets.entry(site).or_default().insert(*txn);
                    // Everything serialized up to the site's last event is
                    // before Ĝ_i.
                    if let Some(&l) = self.last.get(&site) {
                        if let Some(lb) = self.ser_bef.get(&l) {
                            steps.bump(StepKind::Act, lb.len() as u64);
                            bef.extend(lb.iter().copied());
                        }
                        bef.insert(l);
                    }
                }
                self.ser_bef.insert(*txn, bef);
                self.sites.insert(*txn, sites.clone());
                Vec::new()
            }
            QueueOp::Ser { txn, site } => {
                steps.tick(StepKind::Act);
                let Some(set) = self.sets.get_mut(site) else {
                    return vec![SchemeEffect::ProtocolViolation {
                        txn: *txn,
                        site: Some(*site),
                        kind: ProtocolViolationKind::SerWithoutInit,
                    }];
                };
                set.remove(txn);
                self.last.insert(*site, *txn);
                // Set1 = ser_bef(Ĝ_i) ∪ {Ĝ_i}. Ĝ_i's own row is taken out
                // of the map for the duration (it is never a target — no
                // self-before-self) rather than cloned; Ĝ_i ∉ ser_bef(Ĝ_i),
                // so |Set1| = |row| + 1.
                let own_row = self.ser_bef.remove(txn);
                let set1_extra = own_row.as_ref().unwrap_or(&EMPTY_SET);
                let set1_len = set1_extra.len() as u64 + 1;
                // Targets: everything still pending at the site, plus every
                // transaction already ordered after something pending here
                // (Set2) — keeps ser_bef transitively closed.
                let targets: Vec<GlobalTxnId> = {
                    // Borrowed, not cloned: the map mutation below happens
                    // after this scope ends.
                    let set_k = self.sets.get(site).map_or(&EMPTY_SET, |s| s);
                    self.ser_bef
                        .iter()
                        .filter(|(j, bef)| {
                            **j != *txn
                                && (set_k.contains(j) || bef.intersection(set_k).next().is_some())
                        })
                        .map(|(j, _)| *j)
                        .collect()
                };
                // The scan charge covers the whole map, own row included.
                steps.bump(
                    StepKind::Act,
                    self.ser_bef.len() as u64 + u64::from(own_row.is_some()),
                );
                for j in targets {
                    // Targets were collected from `ser_bef` above, so the
                    // re-borrow only misses if the map changed in between
                    // (it cannot); skip rather than panic.
                    let Some(bef_j) = self.ser_bef.get_mut(&j) else {
                        continue;
                    };
                    steps.bump(StepKind::Act, set1_len);
                    bef_j.extend(set1_extra.iter().copied());
                    bef_j.insert(*txn);
                    debug_assert!(!bef_j.contains(&j), "{j} serialized before itself");
                }
                if let Some(row) = own_row {
                    self.ser_bef.insert(*txn, row);
                }
                vec![SchemeEffect::SubmitSer {
                    txn: *txn,
                    site: *site,
                }]
            }
            QueueOp::Ack { txn, site } => {
                steps.tick(StepKind::Act);
                self.acked.insert((*txn, *site));
                vec![SchemeEffect::ForwardAck {
                    txn: *txn,
                    site: *site,
                }]
            }
            QueueOp::Fin { txn } => {
                // Ĝ_i leaves: drop it from every ser_bef and clear last_k.
                for (_, bef) in self.ser_bef.iter_mut() {
                    steps.tick(StepKind::Act);
                    bef.remove(txn);
                }
                self.ser_bef.remove(txn);
                let sites = self.sites.remove(txn).unwrap_or_default();
                for site in sites {
                    steps.tick(StepKind::Act);
                    if self.last.get(&site) == Some(txn) {
                        self.last.remove(&site);
                    }
                    self.acked.remove(&(*txn, site));
                }
                Vec::new()
            }
        }
    }

    fn wake_candidates(
        &self,
        acted: &QueueOp,
        wait: &WaitSet,
        steps: &mut StepCounter,
    ) -> WakeCandidates {
        steps.tick(StepKind::WaitScan);
        match acted {
            // An ack satisfies the "previous event acked" clause at its
            // site.
            QueueOp::Ack { site, .. } => {
                steps.bump(StepKind::WaitScan, wait.ser_count_at(*site) as u64);
                WakeCandidates::SerAt(*site)
            }
            // A ser shrinks set_k, which can clear another event's
            // ser_bef ∩ set_k at this site — but the site's last event is
            // now unacked, so nothing here can run until the ack; no
            // candidates. A fin empties ser_bef sets: other fins are
            // candidates.
            QueueOp::Fin { .. } => {
                steps.bump(StepKind::WaitScan, wait.fin_count() as u64);
                WakeCandidates::Fins
            }
            QueueOp::Init { .. } | QueueOp::Ser { .. } => WakeCandidates::None,
        }
    }

    fn debug_validate(&self) {
        for (t, bef) in &self.ser_bef {
            assert!(!bef.contains(t), "{t} serialized before itself");
        }
        // ser_bef is transitively closed over live transactions.
        for (t, bef) in &self.ser_bef {
            for b in bef {
                if let Some(bb) = self.ser_bef.get(b) {
                    for x in bb {
                        assert!(
                            bef.contains(x),
                            "transitivity broken: {x} < {b} < {t} but {x} not in ser_bef({t})"
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gtm2::Gtm2;

    fn g(i: u64) -> GlobalTxnId {
        GlobalTxnId(i)
    }
    fn s(i: u32) -> SiteId {
        SiteId(i)
    }
    fn init(i: u64, sites: &[u32]) -> QueueOp {
        QueueOp::Init {
            txn: g(i),
            sites: sites.iter().map(|&k| s(k)).collect(),
        }
    }
    fn ser(i: u64, k: u32) -> QueueOp {
        QueueOp::Ser {
            txn: g(i),
            site: s(k),
        }
    }
    fn ack(i: u64, k: u32) -> QueueOp {
        QueueOp::Ack {
            txn: g(i),
            site: s(k),
        }
    }
    fn fin(i: u64) -> QueueOp {
        QueueOp::Fin { txn: g(i) }
    }

    fn engine() -> Gtm2 {
        let mut e = Gtm2::new(Box::new(Scheme3::new()));
        e.set_validate(true);
        e
    }

    /// The classic unsafe interleaving is blocked: after G1 executes first
    /// at s0, G2 (now ordered after G1) may not execute at s1 while G1 is
    /// still pending there.
    #[test]
    fn blocks_exactly_the_nonserializable_order() {
        let mut e = engine();
        e.enqueue(init(1, &[0, 1]));
        e.enqueue(init(2, &[0, 1]));
        e.enqueue(ser(1, 0));
        e.pump();
        e.enqueue(ack(1, 0));
        e.pump();
        // G2 at s1 would serialize G2 before G1 at s1 but after at s0.
        e.enqueue(ser(2, 1));
        e.pump();
        assert_eq!(e.stats().waited, 1, "unsafe ser must wait");
        // G1's event at s1 proceeds, then its ack frees G2.
        e.enqueue(ser(1, 1));
        e.pump();
        e.enqueue(ack(1, 1));
        let fx = e.pump();
        assert!(fx.contains(&SchemeEffect::SubmitSer {
            txn: g(2),
            site: s(1)
        }));
        assert!(e.ser_log().check().is_ok());
    }

    /// Scheme 3 admits orders every BT-scheme forbids: transactions
    /// serialize in the order their events actually run, regardless of
    /// init order.
    #[test]
    fn admits_anti_init_order() {
        let mut e = engine();
        e.enqueue(init(1, &[0, 1]));
        e.enqueue(init(2, &[0, 1]));
        // G2 runs first at both sites — serializable (G2 before G1),
        // though inits said otherwise. Scheme 0 would queue G2 behind G1.
        e.enqueue(ser(2, 0));
        e.pump();
        e.enqueue(ack(2, 0));
        e.enqueue(ser(2, 1));
        e.pump();
        e.enqueue(ack(2, 1));
        e.enqueue(ser(1, 0));
        e.pump();
        e.enqueue(ack(1, 0));
        e.enqueue(ser(1, 1));
        e.pump();
        e.enqueue(ack(1, 1));
        e.pump();
        assert_eq!(
            e.stats().waited,
            0,
            "a serializable order must run waitless"
        );
        let order = e.ser_log().check().unwrap();
        let pos = |t| order.iter().position(|&x| x == t).unwrap();
        assert!(pos(g(2)) < pos(g(1)));
    }

    /// fin waits for predecessors to fin (ser_bef must drain).
    #[test]
    fn fin_order_respects_serialization() {
        let mut e = engine();
        e.enqueue(init(1, &[0]));
        e.enqueue(init(2, &[0]));
        e.enqueue(ser(1, 0));
        e.pump();
        e.enqueue(ack(1, 0));
        e.enqueue(ser(2, 0));
        e.pump();
        e.enqueue(ack(2, 0));
        e.enqueue(fin(2));
        e.pump();
        assert_eq!(e.wait_len(), 1, "G2's fin waits for G1");
        e.enqueue(fin(1));
        e.pump();
        assert_eq!(e.wait_len(), 0);
        assert_eq!(e.stats().fins, 2);
    }

    /// Per-site serial execution: the next event waits for the previous
    /// event's ack even when unrelated.
    #[test]
    fn site_events_serialized_by_ack() {
        let mut e = engine();
        e.enqueue(init(1, &[0]));
        e.enqueue(init(2, &[0]));
        e.enqueue(ser(1, 0));
        e.enqueue(ser(2, 0));
        let fx = e.pump();
        assert_eq!(
            fx,
            vec![SchemeEffect::SubmitSer {
                txn: g(1),
                site: s(0)
            }]
        );
        e.enqueue(ack(1, 0));
        let fx = e.pump();
        assert!(fx.contains(&SchemeEffect::SubmitSer {
            txn: g(2),
            site: s(0)
        }));
    }

    #[test]
    fn ser_bef_accessor_reflects_order() {
        let mut e = engine();
        e.enqueue(init(1, &[0]));
        e.enqueue(init(2, &[0]));
        e.enqueue(ser(1, 0));
        e.pump();
        e.enqueue(ack(1, 0));
        e.enqueue(ser(2, 0));
        e.pump();
        // Introspection goes through a fresh scheme to exercise the
        // accessor directly.
        let mut scheme = Scheme3::new();
        let mut steps = mdbs_common::step::StepCounter::new();
        scheme.act(&init(1, &[0]), &mut steps);
        scheme.act(&init(2, &[0]), &mut steps);
        scheme.act(&ser(1, 0), &mut steps);
        assert!(scheme.ser_bef(g(2)).contains(&g(1)));
        assert!(scheme.ser_bef(g(1)).is_empty());
    }

    /// Transitive propagation: G1 < G2 at s0 and G2 < G3 at s1 implies
    /// G1 ∈ ser_bef(G3); G3's event at s2 must wait while G1 is pending
    /// there.
    #[test]
    fn transitive_ser_bef_blocks() {
        let mut e = engine();
        e.enqueue(init(1, &[0, 2]));
        e.enqueue(init(2, &[0, 1]));
        e.enqueue(init(3, &[1, 2]));
        // G1 then G2 at s0.
        e.enqueue(ser(1, 0));
        e.pump();
        e.enqueue(ack(1, 0));
        e.enqueue(ser(2, 0));
        e.pump();
        e.enqueue(ack(2, 0));
        // G2 then G3 at s1.
        e.enqueue(ser(2, 1));
        e.pump();
        e.enqueue(ack(2, 1));
        e.enqueue(ser(3, 1));
        e.pump();
        e.enqueue(ack(3, 1));
        // Now G1 < G2 < G3; G3 at s2 while G1 pending at s2 must wait.
        e.enqueue(ser(3, 2));
        e.pump();
        assert_eq!(e.stats().waited, 1);
        e.enqueue(ser(1, 2));
        e.pump();
        e.enqueue(ack(1, 2));
        let fx = e.pump();
        assert!(fx.contains(&SchemeEffect::SubmitSer {
            txn: g(3),
            site: s(2)
        }));
        assert!(e.ser_log().check().is_ok());
    }
}
