//! Kernel-equivalence property suite: the dense slot/bitset kernels
//! (`kernel_dense`, `tsgd_dense`) are observationally identical to the
//! reference BTree kernels on every valid input.
//!
//! "Identical" is strict: same effect sequence, same per-site `ser(S)`
//! orders, same engine stats, and — the load-bearing invariant for the
//! paper's complexity measurements — byte-identical `StepCounter` values.
//! The dense kernels are a machine-cost optimization only; if any of these
//! assertions fail, a counted step moved.
//!
//! Also covered:
//! - slot recycling: replaying a script *twice through one engine* reuses
//!   every transaction id after its `fin`, so freed slots are re-interned
//!   and must carry no stale state;
//! - `eliminate_cycles_dense` computes exactly the reference Δ with
//!   exactly the reference step charges (Figure 4 parity);
//! - the polynomial closed-walk check never misses a cycle the exponential
//!   oracle finds (it may over-approximate, never under-approximate).

use mdbs_common::ids::{GlobalTxnId, SiteId};
use mdbs_common::ops::QueueOp;
use mdbs_common::step::StepCounter;
use mdbs_core::gtm2::Gtm2;
use mdbs_core::replay::{replay_kernel, replay_sharded_kernel, Script, ScriptEvent};
use mdbs_core::scheme::{KernelKind, SchemeEffect, SchemeKind};
use mdbs_core::tsgd::{eliminate_cycles, Dep, Tsgd};
use mdbs_core::tsgd_dense::{
    eliminate_cycles_dense, eliminate_cycles_dense_with, DenseTsgd, EliminateScratch,
};
use mdbs_schedule::DiGraph;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Strategy: a valid random script described by (n, m, dav, seed).
fn arb_script() -> impl Strategy<Value = Script> {
    (2usize..12, 2usize..5, 10u64..35, any::<u64>())
        .prop_map(|(n, m, dav10, seed)| Script::random(n, m, dav10 as f64 / 10.0, seed))
}

/// Strategy: adversarial scripts for the incremental Scheme 2 path — many
/// transactions crowded onto few sites (cycle-heavy: `Eliminate_Cycles`
/// emits Δ-dependencies constantly) with the replay loop's automatic fins
/// deleting dependency edges while later inits are still arriving.
fn arb_adversarial_script() -> impl Strategy<Value = Script> {
    (8usize..20, 2usize..4, 25u64..40, any::<u64>())
        .prop_map(|(n, m, dav10, seed)| Script::random(n, m, dav10 as f64 / 10.0, seed))
}

/// Drive `script` through an existing engine with zero-latency acks and
/// automatic fins (the replay harness's closed loop, reimplemented here so
/// one engine can absorb several scripts back-to-back and recycle ids).
fn drive(engine: &mut Gtm2, script: &Script) {
    let mut acks_needed: BTreeMap<GlobalTxnId, usize> = BTreeMap::new();
    for ev in &script.events {
        match ev {
            ScriptEvent::Init(txn, sites) => {
                acks_needed.insert(*txn, sites.len());
                engine.enqueue(QueueOp::Init {
                    txn: *txn,
                    sites: sites.clone(),
                });
            }
            ScriptEvent::Ser(txn, site) => {
                engine.enqueue(QueueOp::Ser {
                    txn: *txn,
                    site: *site,
                });
            }
        }
        loop {
            let effects = engine.pump();
            if effects.is_empty() {
                break;
            }
            for fx in effects {
                match fx {
                    SchemeEffect::SubmitSer { txn, site } => {
                        engine.enqueue(QueueOp::Ack { txn, site });
                    }
                    SchemeEffect::ForwardAck { txn, .. } => {
                        if let Some(left) = acks_needed.get_mut(&txn) {
                            *left -= 1;
                            if *left == 0 {
                                acks_needed.remove(&txn);
                                engine.enqueue(QueueOp::Fin { txn });
                            }
                        }
                    }
                    SchemeEffect::AbortGlobal { .. } | SchemeEffect::ProtocolViolation { .. } => {
                        panic!("conservative scheme produced {fx:?} on a valid script");
                    }
                }
            }
        }
    }
}

/// Build matching reference and dense TSGDs (same shape/dependencies) plus
/// a fresh transaction, mirroring `prop_tsgd::build`.
fn build_pair(shape: &[u8], dep_picks: &[bool], fresh_mask: u8) -> (Tsgd, DenseTsgd, GlobalTxnId) {
    let site_list = |mask: u8| -> Vec<SiteId> {
        (0..4u32)
            .filter(|b| mask & (1 << b) != 0)
            .map(SiteId)
            .collect()
    };
    let mut reference = Tsgd::new();
    let mut dense = DenseTsgd::new();
    for (i, &mask) in shape.iter().enumerate() {
        let sites = site_list(mask | 1 << (i % 4));
        reference.insert_txn(GlobalTxnId(i as u64 + 1), &sites);
        dense.insert_txn(GlobalTxnId(i as u64 + 1), &sites);
    }
    let mut candidates = Vec::new();
    let txns: Vec<GlobalTxnId> = reference.txns().collect();
    for (ai, &a) in txns.iter().enumerate() {
        for &b in &txns[ai + 1..] {
            let sites_a: std::collections::BTreeSet<SiteId> = reference.sites_of(a).collect();
            for s in reference.sites_of(b) {
                if sites_a.contains(&s) {
                    candidates.push(Dep {
                        site: s,
                        before: a,
                        after: b,
                    });
                }
            }
        }
    }
    for (i, dep) in candidates.into_iter().enumerate() {
        if dep_picks.get(i).copied().unwrap_or(false) {
            reference.add_dep(dep);
            dense.add_dep(dep);
        }
    }
    let fresh = GlobalTxnId(999);
    let fresh_sites = site_list(fresh_mask | 1);
    reference.insert_txn(fresh, &fresh_sites);
    dense.insert_txn(fresh, &fresh_sites);
    (reference, dense, fresh)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The tentpole invariant: for every conservative scheme, the dense
    /// kernel replays any valid script with byte-identical steps, stats,
    /// and per-site serialization orders.
    #[test]
    fn dense_kernel_matches_reference_on_any_order(script in arb_script()) {
        for kind in SchemeKind::CONSERVATIVE {
            let reference = replay_kernel(kind, KernelKind::BTree, &script);
            let dense = replay_kernel(kind, KernelKind::Dense, &script);
            prop_assert_eq!(
                reference.steps, dense.steps,
                "{}: step counters diverged", kind
            );
            prop_assert_eq!(
                reference.stats, dense.stats,
                "{}: engine stats diverged", kind
            );
            prop_assert_eq!(
                &reference.ser_events, &dense.ser_events,
                "{}: ser(S) diverged", kind
            );
            prop_assert_eq!(
                (reference.wake_scan_count, reference.wake_scan_sum),
                (dense.wake_scan_count, dense.wake_scan_sum),
                "{}: wake-scan histogram diverged", kind
            );
            prop_assert_eq!(dense.protocol_violations, 0, "{}", kind);
            prop_assert!(dense.ser_serializable, "{}", kind);
        }
    }

    /// Same invariant through the sharded engine's deterministic pump
    /// (partitioned routing + cross-shard handoffs on top of the kernels).
    #[test]
    fn dense_kernel_matches_reference_sharded(
        script in arb_script(),
        nshards in 1usize..4,
    ) {
        for kind in SchemeKind::CONSERVATIVE {
            let reference = replay_sharded_kernel(kind, KernelKind::BTree, nshards, &script);
            let dense = replay_sharded_kernel(kind, KernelKind::Dense, nshards, &script);
            prop_assert_eq!(
                reference.steps, dense.steps,
                "{} @ {} shards: steps diverged", kind, nshards
            );
            prop_assert_eq!(
                reference.stats, dense.stats,
                "{} @ {} shards: stats diverged", kind, nshards
            );
            prop_assert_eq!(
                &reference.ser_events, &dense.ser_events,
                "{} @ {} shards: ser(S) diverged", kind, nshards
            );
        }
    }

    /// Id recycling: the same script replayed twice through one engine
    /// re-interns every transaction id after its slot was freed at `fin`.
    /// Stale bits in any recycled slot would change effects or steps.
    #[test]
    fn recycled_ids_carry_no_stale_state(script in arb_script()) {
        for kind in SchemeKind::CONSERVATIVE {
            let mut reference = Gtm2::new(kind.build_kernel(KernelKind::BTree));
            let mut dense = Gtm2::new(kind.build_kernel(KernelKind::Dense));
            reference.set_validate(true);
            dense.set_validate(true);
            for _round in 0..2 {
                drive(&mut reference, &script);
                drive(&mut dense, &script);
                prop_assert_eq!(
                    reference.steps(), dense.steps(),
                    "{}: steps diverged across recycling rounds", kind
                );
                prop_assert_eq!(
                    reference.stats(), dense.stats(),
                    "{}: stats diverged across recycling rounds", kind
                );
                prop_assert_eq!(
                    reference.ser_log().events(), dense.ser_log().events(),
                    "{}: ser(S) diverged across recycling rounds", kind
                );
            }
            prop_assert_eq!(reference.wait_len(), 0, "{}", kind);
            prop_assert_eq!(dense.wait_len(), 0, "{}", kind);
        }
    }

    /// Figure 4 parity: the dense Eliminate_Cycles produces exactly the
    /// reference Δ with exactly the reference step charges.
    #[test]
    fn eliminate_cycles_dense_matches_reference(
        shape in prop::collection::vec(0u8..16, 1..6),
        dep_picks in prop::collection::vec(any::<bool>(), 0..24),
        fresh_mask in 0u8..16,
    ) {
        let (reference, dense, fresh) = build_pair(&shape, &dep_picks, fresh_mask);
        let ref_deps: std::collections::BTreeSet<Dep> = reference.deps().collect();
        prop_assert_eq!(ref_deps, dense.deps_set(), "construction mismatch");
        let mut steps_ref = StepCounter::new();
        let mut steps_dense = StepCounter::new();
        let delta_ref = eliminate_cycles(&reference, fresh, &mut steps_ref);
        let delta_dense = eliminate_cycles_dense(&dense, fresh, &mut steps_dense);
        prop_assert_eq!(&delta_ref, &delta_dense, "Δ diverged");
        prop_assert_eq!(steps_ref, steps_dense, "EC step charges diverged");
        // The cursor-amortized production variant must agree too, both on a
        // fresh scratch and on one that already served a different target.
        let mut scratch = EliminateScratch::new();
        for _round in 0..2 {
            let mut steps_cursor = StepCounter::new();
            let delta_cursor =
                eliminate_cycles_dense_with(&dense, fresh, &mut steps_cursor, &mut scratch);
            prop_assert_eq!(&delta_ref, &delta_cursor, "cursor Δ diverged");
            prop_assert_eq!(steps_ref, steps_cursor, "cursor EC step charges diverged");
        }
    }

    /// Soundness of the polynomial cycle check: whenever the exponential
    /// oracle finds a cycle through `start`, the closed-walk
    /// over-approximation must flag it too.
    #[test]
    fn oracle_cycle_implies_poly_walk(
        shape in prop::collection::vec(0u8..16, 1..6),
        dep_picks in prop::collection::vec(any::<bool>(), 0..24),
        fresh_mask in 0u8..16,
    ) {
        let (_, dense, fresh) = build_pair(&shape, &dep_picks, fresh_mask);
        let extra = std::collections::BTreeSet::new();
        let txns: Vec<GlobalTxnId> = dense.txns().collect();
        for t in txns.into_iter().chain([fresh]) {
            if dense.has_cycle_involving_oracle(t, &extra) {
                prop_assert!(
                    dense.closed_walk_involving(t, &extra),
                    "polynomial walk missed an oracle cycle through {t}"
                );
                prop_assert!(
                    dense.has_cycle_involving_cached(t),
                    "cached walk missed an oracle cycle through {t}"
                );
            }
        }
    }

    /// Adversarial kernel matrix: cycle-heavy, fin-deletion-heavy scripts
    /// must leave the incremental-dense, memo-dense, and BTree Scheme 2
    /// kernels byte-identical, through both the single engine and the
    /// sharded pump.
    #[test]
    fn adversarial_scripts_keep_kernel_matrix_equal(
        script in arb_adversarial_script(),
        nshards in 1usize..4,
    ) {
        let kind = SchemeKind::Scheme2;
        let reference = replay_kernel(kind, KernelKind::BTree, &script);
        let sharded_ref = replay_sharded_kernel(kind, KernelKind::BTree, nshards, &script);
        for kernel in [KernelKind::Dense, KernelKind::DenseMemo] {
            let dense = replay_kernel(kind, kernel, &script);
            prop_assert_eq!(
                reference.steps, dense.steps,
                "{}: step counters diverged", kernel.name()
            );
            prop_assert_eq!(
                reference.stats, dense.stats,
                "{}: engine stats diverged", kernel.name()
            );
            prop_assert_eq!(
                &reference.ser_events, &dense.ser_events,
                "{}: ser(S) diverged", kernel.name()
            );
            prop_assert_eq!(dense.protocol_violations, 0, "{}", kernel.name());
            prop_assert!(dense.ser_serializable, "{}", kernel.name());
            let sharded = replay_sharded_kernel(kind, kernel, nshards, &script);
            prop_assert_eq!(
                sharded_ref.steps, sharded.steps,
                "{} @ {} shards: steps diverged", kernel.name(), nshards
            );
            prop_assert_eq!(
                &sharded_ref.ser_events, &sharded.ser_events,
                "{} @ {} shards: ser(S) diverged", kernel.name(), nshards
            );
        }
    }

    /// Adversarial add/remove-dep interleaving straight against the TSGD
    /// structures: inserts, deliberate dependency cycles (both directions of
    /// shared-site pairs), fin-style removals that release and recycle site
    /// slots, and Eliminate_Cycles rounds whose Δ is folded back in. After
    /// every removal and at the end, the incremental topo order must stay
    /// consistent and the collapsed SCC groups must equal the groups an
    /// offline Tarjan pass finds on the reference dependency digraph.
    #[test]
    fn adversarial_dep_interleaving_matches_reference(
        ops in prop::collection::vec((0u8..4, any::<u8>(), any::<u8>(), any::<u8>()), 1..80),
    ) {
        let mut reference = Tsgd::new();
        let mut dense = DenseTsgd::new();
        let mut scratch = EliminateScratch::new();
        let mut live: Vec<GlobalTxnId> = Vec::new();
        let mut next_id = 1u64;
        for (op, a, b, c) in ops {
            match op {
                0 => {
                    let txn = GlobalTxnId(next_id);
                    next_id += 1;
                    let sites: Vec<SiteId> = (0..4u32)
                        .filter(|bit| (a | 1 << (next_id % 4)) & (1 << bit) != 0)
                        .map(SiteId)
                        .collect();
                    reference.insert_txn(txn, &sites);
                    dense.insert_txn(txn, &sites);
                    live.push(txn);
                }
                1 => {
                    let mut candidates = Vec::new();
                    for (ai, &ta) in live.iter().enumerate() {
                        let sites_a: std::collections::BTreeSet<SiteId> =
                            reference.sites_of(ta).collect();
                        for &tb in &live[ai + 1..] {
                            for s in reference.sites_of(tb) {
                                if sites_a.contains(&s) {
                                    candidates.push((s, ta, tb));
                                }
                            }
                        }
                    }
                    if candidates.is_empty() {
                        continue;
                    }
                    let (site, ta, tb) =
                        candidates[(a as usize + (b as usize) * 256) % candidates.len()];
                    // Odd `c` flips the direction, so opposite picks of the
                    // same pair build genuine dependency cycles.
                    let (before, after) = if c & 1 == 0 { (ta, tb) } else { (tb, ta) };
                    let dep = Dep { site, before, after };
                    reference.add_dep(dep);
                    dense.add_dep(dep);
                }
                2 => {
                    if live.is_empty() {
                        continue;
                    }
                    let txn = live.remove(a as usize % live.len());
                    reference.remove_txn(txn);
                    dense.remove_txn(txn);
                    prop_assert!(
                        dense.dep_order_consistent(),
                        "topo order inconsistent after removing {txn}"
                    );
                }
                _ => {
                    if live.is_empty() {
                        continue;
                    }
                    let target = live[a as usize % live.len()];
                    let mut steps_ref = StepCounter::new();
                    let mut steps_cursor = StepCounter::new();
                    let delta_ref = eliminate_cycles(&reference, target, &mut steps_ref);
                    let delta_cursor = eliminate_cycles_dense_with(
                        &dense, target, &mut steps_cursor, &mut scratch,
                    );
                    prop_assert_eq!(&delta_ref, &delta_cursor, "Δ diverged at {}", target);
                    prop_assert_eq!(steps_ref, steps_cursor, "EC steps diverged at {}", target);
                    for dep in delta_ref {
                        reference.add_dep(dep);
                        dense.add_dep(dep);
                    }
                }
            }
            prop_assert_eq!(dense.desync_count(), 0);
        }
        let ref_deps: std::collections::BTreeSet<Dep> = reference.deps().collect();
        prop_assert_eq!(ref_deps, dense.deps_set(), "dependency sets diverged");
        prop_assert!(dense.dep_order_consistent(), "final topo order inconsistent");
        let mut g: DiGraph<GlobalTxnId> = DiGraph::new();
        for t in reference.txns() {
            g.add_node(t);
        }
        for d in reference.deps() {
            g.add_edge(d.before, d.after);
        }
        let mut expected: Vec<Vec<GlobalTxnId>> = g
            .sccs()
            .into_iter()
            .filter(|comp| comp.len() > 1)
            .map(|mut comp| {
                comp.sort();
                comp
            })
            .collect();
        expected.sort();
        prop_assert_eq!(
            dense.dep_groups(), expected,
            "collapsed SCC groups diverged from the offline oracle"
        );
    }
}
