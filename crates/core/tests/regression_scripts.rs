//! Deterministic replays of proptest shrink cases.
//!
//! `prop_schemes.proptest-regressions` stores the shrunk failure seeds,
//! but those only re-run under the proptest harness. Each script is
//! transcribed here literally so the cases stay reproducible as plain
//! `#[test]`s — independent of proptest's RNG, shrinking, or regression
//! file handling — and so a bisect can point at the exact scheme change
//! that regressed them.

use mdbs_common::ids::{GlobalTxnId, SiteId};
use mdbs_core::gtm2::Gtm2;
use mdbs_core::replay::{replay, replay_with, Script, ScriptEvent};
use mdbs_core::scheme::{FullRescan, SchemeKind};

fn init(txn: u64, sites: &[u32]) -> ScriptEvent {
    ScriptEvent::Init(GlobalTxnId(txn), sites.iter().map(|&s| SiteId(s)).collect())
}

fn ser(txn: u64, site: u32) -> ScriptEvent {
    ScriptEvent::Ser(GlobalTxnId(txn), SiteId(site))
}

/// Shrink case `59eeaa2e…`: 8 transactions, all spanning 3 sites, with a
/// heavily interleaved insertion order. Historically tripped the
/// wake-hint-completeness / safety properties.
fn shrink_case_dense_8txn_3site() -> Script {
    let script = Script {
        events: vec![
            init(5, &[0, 1, 2]),
            ser(5, 1),
            init(7, &[0, 1, 2]),
            ser(7, 0),
            ser(7, 2),
            init(8, &[0, 1, 2]),
            ser(8, 0),
            init(4, &[0, 1, 2]),
            ser(4, 2),
            ser(8, 2),
            init(3, &[0, 1, 2]),
            ser(3, 1),
            ser(5, 2),
            init(1, &[0, 1, 2]),
            ser(1, 0),
            ser(5, 0),
            ser(1, 2),
            ser(1, 1),
            ser(3, 2),
            init(6, &[0, 1, 2]),
            ser(6, 2),
            ser(7, 1),
            init(2, &[0, 1, 2]),
            ser(2, 2),
            ser(6, 1),
            ser(8, 1),
            ser(2, 0),
            ser(4, 0),
            ser(6, 0),
            ser(3, 0),
            ser(2, 1),
            ser(4, 1),
        ],
    };
    assert_eq!(script.validate(), Ok(()));
    script
}

/// Shrink case `753a3c91…`: 3 transactions on overlapping 2-site sets,
/// the minimal overlap chain (G2 bridges G3 and G1 through s2/s1 while
/// G3 and G1 share only s0).
fn shrink_case_overlap_chain_3txn() -> Script {
    let script = Script {
        events: vec![
            init(3, &[0, 2]),
            ser(3, 2),
            init(2, &[1, 2]),
            ser(2, 2),
            ser(2, 1),
            init(1, &[0, 1]),
            ser(1, 0),
            ser(3, 0),
            ser(1, 1),
        ],
    };
    assert_eq!(script.validate(), Ok(()));
    script
}

/// Safety on the shrunk scripts: every conservative scheme completes all
/// transactions, aborts none, and leaves a serializable ser(S).
fn assert_safe(script: &Script) {
    let n = script.txn_count();
    for kind in SchemeKind::CONSERVATIVE {
        let out = replay(kind, script);
        assert!(out.ser_serializable, "{kind}: ser(S) not serializable");
        assert!(out.aborted.is_empty(), "{kind}: aborted {:?}", out.aborted);
        assert_eq!(out.completed, n, "{kind}: incomplete");
    }
}

/// Wake-hint completeness on the shrunk scripts: replacing each scheme's
/// wake hints with a full WAIT rescan must not change what gets
/// processed, how often operations wait, or who completes.
fn assert_hints_complete(script: &Script) {
    for kind in SchemeKind::CONSERVATIVE {
        let mut hinted_engine = Gtm2::new(kind.build());
        hinted_engine.set_validate(true);
        let hinted = replay_with(hinted_engine, script);

        let mut full_engine = Gtm2::new(Box::new(FullRescan(kind.build())));
        full_engine.set_validate(true);
        let full = replay_with(full_engine, script);

        assert_eq!(
            hinted.stats.processed, full.stats.processed,
            "{kind}: hinted vs full processed"
        );
        assert_eq!(
            hinted.stats.waited, full.stats.waited,
            "{kind}: hinted vs full waits"
        );
        assert_eq!(hinted.completed, full.completed, "{kind}: completions");
        assert!(hinted.ser_serializable && full.ser_serializable, "{kind}");
    }
}

#[test]
fn dense_8txn_3site_schemes_safe() {
    assert_safe(&shrink_case_dense_8txn_3site());
}

#[test]
fn dense_8txn_3site_wake_hints_complete() {
    assert_hints_complete(&shrink_case_dense_8txn_3site());
}

#[test]
fn overlap_chain_3txn_schemes_safe() {
    assert_safe(&shrink_case_overlap_chain_3txn());
}

#[test]
fn overlap_chain_3txn_wake_hints_complete() {
    assert_hints_complete(&shrink_case_overlap_chain_3txn());
}
