//! Instrumentation-layer integration tests: structured protocol-violation
//! effects, the GTM2 active-count clamp, sink toggling mid-run, and the
//! guarantee that attaching a sink never changes scheduling behavior.

use mdbs_common::ids::{GlobalTxnId, SiteId};
use mdbs_common::instrument::{Registry, SchedEvent, SharedSink};
use mdbs_common::ops::QueueOp;
use mdbs_core::gtm2::Gtm2;
use mdbs_core::replay::{replay_with, Script};
use mdbs_core::scheme::{ProtocolViolationKind, SchemeEffect, SchemeKind};
use mdbs_core::scheme0::Scheme0;

fn g(i: u64) -> GlobalTxnId {
    GlobalTxnId(i)
}
fn s(i: u32) -> SiteId {
    SiteId(i)
}

fn scheme0() -> Gtm2 {
    Gtm2::new(Box::new(Scheme0::new()))
}

// ---------------------------------------------------------------------
// Scheme 0 ack hardening: malformed acks surface as structured
// ProtocolViolation effects instead of panicking the scheduler.
// ---------------------------------------------------------------------

#[test]
fn scheme0_ack_for_unknown_site_is_violation() {
    let mut e = scheme0();
    e.enqueue(QueueOp::Ack {
        txn: g(1),
        site: s(7),
    });
    let fx = e.pump();
    assert_eq!(
        fx,
        vec![SchemeEffect::ProtocolViolation {
            txn: g(1),
            site: Some(s(7)),
            kind: ProtocolViolationKind::UnknownSite,
        }]
    );
    assert_eq!(e.stats().protocol_violations, 1);
}

#[test]
fn scheme0_out_of_order_ack_still_forwards() {
    let mut e = scheme0();
    e.enqueue(QueueOp::Init {
        txn: g(1),
        sites: vec![s(0)],
    });
    e.enqueue(QueueOp::Init {
        txn: g(2),
        sites: vec![s(0)],
    });
    e.pump();
    // G2 is queued behind G1 but its ack arrives first (a server bug):
    // the scheduler notes the violation, removes exactly G2, and still
    // forwards the ack because the local DBMS genuinely executed it.
    e.enqueue(QueueOp::Ack {
        txn: g(2),
        site: s(0),
    });
    let fx = e.pump();
    assert!(fx.contains(&SchemeEffect::ProtocolViolation {
        txn: g(2),
        site: Some(s(0)),
        kind: ProtocolViolationKind::AckOutOfOrder,
    }));
    assert!(fx.contains(&SchemeEffect::ForwardAck {
        txn: g(2),
        site: s(0),
    }));
    assert_eq!(e.stats().protocol_violations, 1);
    // G1 keeps its queue position: its ser op is still eligible.
    e.enqueue(QueueOp::Ser {
        txn: g(1),
        site: s(0),
    });
    let fx = e.pump();
    assert!(fx.contains(&SchemeEffect::SubmitSer {
        txn: g(1),
        site: s(0),
    }));
}

#[test]
fn scheme0_ack_never_queued_is_violation_without_forward() {
    let mut e = scheme0();
    e.enqueue(QueueOp::Init {
        txn: g(1),
        sites: vec![s(0)],
    });
    e.pump();
    e.enqueue(QueueOp::Ack {
        txn: g(9),
        site: s(0),
    });
    let fx = e.pump();
    assert_eq!(
        fx,
        vec![SchemeEffect::ProtocolViolation {
            txn: g(9),
            site: Some(s(0)),
            kind: ProtocolViolationKind::AckNotQueued,
        }]
    );
}

// ---------------------------------------------------------------------
// GTM2 active-count clamp: a fin without a matching init must not
// underflow; it is counted as a protocol violation instead.
// ---------------------------------------------------------------------

#[test]
fn gtm2_fin_without_init_clamps_active_count() {
    let mut e = scheme0();
    e.enqueue(QueueOp::Fin { txn: g(1) });
    e.pump();
    let stats = e.stats();
    assert_eq!(stats.protocol_violations, 1);
    // A normal init/fin cycle afterwards still balances.
    e.enqueue(QueueOp::Init {
        txn: g(2),
        sites: vec![s(0)],
    });
    e.enqueue(QueueOp::Fin { txn: g(2) });
    e.pump();
    let stats = e.stats();
    assert_eq!(stats.protocol_violations, 1);
    assert_eq!(stats.fins, 2);

    let mut registry = Registry::default();
    e.export_metrics(&mut registry);
    assert_eq!(registry.counter("gtm2.protocol_violations"), 1);
    assert_eq!(registry.counter("gtm2.fins"), 2);
}

// ---------------------------------------------------------------------
// Sink lifecycle: toggling mid-run only affects what is recorded, never
// what is scheduled.
// ---------------------------------------------------------------------

#[test]
fn sink_toggling_mid_run_records_only_while_attached() {
    let sink = SharedSink::new();
    let mut e = scheme0();

    // Phase 1: no sink — nothing recorded.
    e.enqueue(QueueOp::Init {
        txn: g(1),
        sites: vec![s(0)],
    });
    e.pump();
    assert!(sink.is_empty());

    // Phase 2: sink attached — events flow.
    e.set_sink(Some(Box::new(sink.clone())));
    e.enqueue(QueueOp::Ser {
        txn: g(1),
        site: s(0),
    });
    e.pump();
    let recorded_attached = sink.drain();
    assert!(
        recorded_attached
            .iter()
            .any(|ev| matches!(ev.event, SchedEvent::Enqueue { .. })),
        "expected an enqueue event, got {recorded_attached:?}"
    );
    assert!(recorded_attached
        .iter()
        .any(|ev| matches!(ev.event, SchedEvent::Act { .. })));

    // Phase 3: sink detached again — scheduling continues, recording stops.
    e.set_sink(None);
    e.enqueue(QueueOp::Ack {
        txn: g(1),
        site: s(0),
    });
    e.enqueue(QueueOp::Fin { txn: g(1) });
    e.pump();
    assert!(sink.is_empty());
    let stats = e.stats();
    assert_eq!(stats.fins, 1);
    assert_eq!(stats.protocol_violations, 0);
}

#[test]
fn sink_events_carry_the_engine_clock() {
    let sink = SharedSink::new();
    let mut e = scheme0();
    e.set_sink(Some(Box::new(sink.clone())));
    e.set_now(42);
    e.enqueue(QueueOp::Init {
        txn: g(1),
        sites: vec![s(0)],
    });
    e.pump();
    e.set_now(99);
    e.enqueue(QueueOp::Fin { txn: g(1) });
    e.pump();
    let events = sink.drain();
    assert!(events.iter().any(|ev| ev.at == 42));
    assert!(events.iter().any(|ev| ev.at == 99));
    assert!(events.iter().all(|ev| ev.at == 42 || ev.at == 99));
}

// ---------------------------------------------------------------------
// Observation is free of side effects: for every conservative scheme and
// a spread of random scripts, a run with a sink attached produces the
// identical schedule (stats, step counts, completions) as one without.
// ---------------------------------------------------------------------

#[test]
fn sinks_do_not_change_scheduling() {
    for kind in SchemeKind::CONSERVATIVE {
        for seed in 0..8u64 {
            let script = Script::random(24, 5, 2.5, seed);

            let plain = replay_with(Gtm2::new(kind.build()), &script);

            let sink = SharedSink::new();
            let mut observed_engine = Gtm2::new(kind.build());
            observed_engine.set_sink(Some(Box::new(sink.clone())));
            let observed = replay_with(observed_engine, &script);

            assert_eq!(
                plain.stats, observed.stats,
                "{kind:?} seed {seed}: stats diverged with a sink attached"
            );
            assert_eq!(
                plain.steps, observed.steps,
                "{kind:?} seed {seed}: step counts diverged with a sink attached"
            );
            assert_eq!(plain.completed, observed.completed);
            assert_eq!(plain.ser_serializable, observed.ser_serializable);
            // And the observation itself is non-trivial.
            assert!(!sink.is_empty(), "{kind:?} seed {seed}: no events recorded");
        }
    }
}
