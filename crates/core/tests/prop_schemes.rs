//! Property tests for the GTM2 schemes.
//!
//! 1. **Safety**: on arbitrary valid insertion orders, every conservative
//!    scheme completes all transactions with a serializable `ser(S)` and
//!    no aborts.
//! 2. **Dominance**: Scheme 3 never ser-waits more than any other scheme
//!    on the same order; on serializable orders it never ser-waits at all.
//! 3. **Wake-hint completeness**: each scheme's `wake_candidates` hints
//!    must be *complete* — running the same scheme with the hints replaced
//!    by "re-examine everything" must produce exactly the same effect
//!    sequence. (A missed hint silently deadlocks or delays; this catches
//!    it.)
//! 4. **Theorem 8 invariant**: Scheme 3 never serializes a transaction
//!    before itself; Scheme 2's TSGD stays acyclic (checked by the schemes'
//!    own `debug_validate`, enabled here).

use mdbs_core::gtm2::Gtm2;
use mdbs_core::replay::{replay, replay_with, Script, ScriptEvent};
use mdbs_core::scheme::{FullRescan, SchemeKind};
use proptest::prelude::*;

/// Degree-of-concurrency dominance, stated carefully. The paper compares
/// schemes on a *fixed* QUEUE insertion order; in a closed loop the ack
/// and fin insertions depend on the scheme's own decisions, so execution
/// paths diverge and strict per-order dominance is not implied (and indeed
/// fails occasionally). The sound statements are:
/// - aggregate dominance: Scheme 3 waits strictly less in total, and
///   per-order violations are rare;
/// - the feedback-free case (serializable orders, zero waits) is exact
///   and is asserted separately below.
#[test]
fn scheme3_aggregate_dominance() {
    let mut totals = [0u64; 4];
    let mut violations = 0u32;
    const RUNS: u64 = 300;
    for seed in 0..RUNS {
        let script = Script::random(10, 4, 2.5, 90_000 + seed);
        let w: Vec<u64> = SchemeKind::CONSERVATIVE
            .iter()
            .map(|&k| replay(k, &script).stats.waited_kind[1])
            .collect();
        for i in 0..4 {
            totals[i] += w[i];
        }
        if w[3] > w[0] || w[3] > w[1] || w[3] > w[2] {
            violations += 1;
        }
    }
    assert!(
        totals[3] < totals[0] && totals[3] < totals[1] && totals[3] < totals[2],
        "aggregate dominance: {totals:?}"
    );
    assert!(
        violations <= RUNS as u32 / 20,
        "per-order inversions should be rare under feedback: {violations}/{RUNS}"
    );
}

/// Strategy: a valid random script described by (n, m, dav-seed).
fn arb_script() -> impl Strategy<Value = Script> {
    (2usize..10, 2usize..5, 10u64..35, any::<u64>())
        .prop_map(|(n, m, dav10, seed)| Script::random(n, m, dav10 as f64 / 10.0, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn conservative_schemes_safe_on_any_order(script in arb_script()) {
        let n = script.txn_count();
        for kind in SchemeKind::CONSERVATIVE {
            let out = replay(kind, &script);
            prop_assert!(out.ser_serializable, "{kind}");
            prop_assert!(out.aborted.is_empty(), "{kind}");
            prop_assert_eq!(out.completed, n, "{}", kind);
        }
    }

    #[test]
    fn scheme3_waitless_on_serializable_orders(
        n in 2usize..12,
        m in 2usize..5,
        dav10 in 10u64..35,
        seed in any::<u64>(),
    ) {
        let script = Script::serializable_order(n, m, dav10 as f64 / 10.0, seed);
        let out = replay(SchemeKind::Scheme3, &script);
        prop_assert_eq!(out.stats.waited_kind[1], 0);
    }

    /// Hints == full rescans, for every scheme, on every order.
    #[test]
    fn wake_hints_are_complete(script in arb_script()) {
        for kind in SchemeKind::CONSERVATIVE {
            let mut hinted_engine = Gtm2::new(kind.build());
            hinted_engine.set_validate(true);
            let hinted = replay_with(hinted_engine, &script);

            let mut full_engine = Gtm2::new(Box::new(FullRescan(kind.build())));
            full_engine.set_validate(true);
            let full = replay_with(full_engine, &script);

            prop_assert_eq!(
                hinted.stats.processed, full.stats.processed,
                "{}: hinted vs full processed", kind
            );
            prop_assert_eq!(
                hinted.stats.waited, full.stats.waited,
                "{}: hinted vs full waits", kind
            );
            prop_assert_eq!(hinted.completed, full.completed, "{}", kind);
            prop_assert!(hinted.ser_serializable && full.ser_serializable);
        }
    }

    /// Baselines: every transaction either completes or is aborted, and
    /// the committed projection of ser(S) is serializable.
    #[test]
    fn baselines_account_for_everyone(script in arb_script()) {
        let n = script.txn_count();
        for kind in [SchemeKind::AbortingTo, SchemeKind::OptimisticTicket] {
            let out = replay(kind, &script);
            prop_assert_eq!(out.completed + out.aborted.len(), n, "{}", kind);
            prop_assert!(out.ser_serializable, "{kind}");
        }
    }

    /// The per-site act order recorded in ser(S) covers exactly the
    /// scripted ser events for conservative schemes.
    #[test]
    fn ser_log_covers_script(script in arb_script()) {
        for kind in SchemeKind::CONSERVATIVE {
            let mut engine = Gtm2::new(kind.build());
            engine.set_validate(true);
            // replay_with consumes the engine; recompute event count from
            // the script instead.
            let out = replay_with(engine, &script);
            let expected: usize = script
                .events
                .iter()
                .filter(|e| matches!(e, ScriptEvent::Ser(..)))
                .count();
            prop_assert_eq!(out.stats.processed as usize >= expected, true, "{}", kind);
        }
    }
}
