//! Property tests for the TSGD and `Eliminate_Cycles` (Figure 4).
//!
//! Ground truth is the direct implementation of the paper's cycle
//! definition (`Tsgd::has_cycle_involving`); `eliminate_cycles` must
//! always produce a Δ (of the correct `(Ĝ_j, s_k) → (s_k, Ĝ_i)` form)
//! that removes every cycle through the new transaction, and the exact
//! exponential search must never find a larger minimum than EC's output.

use mdbs_common::ids::{GlobalTxnId, SiteId};
use mdbs_common::step::StepCounter;
use mdbs_core::tsgd::{eliminate_cycles, minimal_delta_exact, Dep, Tsgd};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Build a random TSGD plus a fresh transaction to initialize.
///
/// `shape[i]` is a bitmask of the sites transaction i touches (over up to
/// 4 sites); `dep_picks` selects consistent pre-existing dependencies
/// (only between co-located pairs, oriented by transaction id so the
/// pre-existing D is acyclic — as Scheme 2's induction guarantees).
fn build(shape: &[u8], dep_picks: &[bool], fresh_mask: u8) -> (Tsgd, GlobalTxnId) {
    let mut t = Tsgd::new();
    let site_list = |mask: u8| -> Vec<SiteId> {
        (0..4u32)
            .filter(|b| mask & (1 << b) != 0)
            .map(SiteId)
            .collect()
    };
    for (i, &mask) in shape.iter().enumerate() {
        let sites = site_list(mask | 1 << (i % 4)); // at least one site
        t.insert_txn(GlobalTxnId(i as u64 + 1), &sites);
    }
    // Deterministic dependency candidates: ordered pairs at shared sites.
    let mut candidates = Vec::new();
    let txns: Vec<GlobalTxnId> = t.txns().collect();
    for (ai, &a) in txns.iter().enumerate() {
        for &b in &txns[ai + 1..] {
            let sites_a: BTreeSet<SiteId> = t.sites_of(a).collect();
            for s in t.sites_of(b) {
                if sites_a.contains(&s) {
                    candidates.push(Dep {
                        site: s,
                        before: a,
                        after: b,
                    });
                }
            }
        }
    }
    for (i, dep) in candidates.into_iter().enumerate() {
        if dep_picks.get(i).copied().unwrap_or(false) {
            t.add_dep(dep);
        }
    }
    let fresh = GlobalTxnId(999);
    let fresh_sites = site_list(fresh_mask | 1);
    t.insert_txn(fresh, &fresh_sites);
    (t, fresh)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn eliminate_cycles_is_sound(
        shape in prop::collection::vec(0u8..16, 1..6),
        dep_picks in prop::collection::vec(any::<bool>(), 0..24),
        fresh_mask in 0u8..16,
    ) {
        let (t, fresh) = build(&shape, &dep_picks, fresh_mask);
        let mut steps = StepCounter::new();
        let delta = eliminate_cycles(&t, fresh, &mut steps);
        // Form: every Δ dependency points into the fresh transaction.
        for d in &delta {
            prop_assert_eq!(d.after, fresh);
            prop_assert!(t.has_edge(d.before, d.site));
            prop_assert!(t.has_edge(fresh, d.site));
        }
        // Soundness: no cycle through the fresh transaction remains.
        prop_assert!(
            !t.has_cycle_involving(fresh, &delta),
            "Δ = {delta:?} leaves a cycle"
        );
        // EC does nontrivial work only when needed.
        if delta.is_empty() {
            prop_assert!(!t.has_cycle_involving(fresh, &BTreeSet::new()));
        }
    }

    #[test]
    fn exact_minimum_never_exceeds_ec(
        shape in prop::collection::vec(0u8..16, 1..4),
        dep_picks in prop::collection::vec(any::<bool>(), 0..12),
        fresh_mask in 0u8..16,
    ) {
        let (t, fresh) = build(&shape, &dep_picks, fresh_mask);
        let mut steps = StepCounter::new();
        let ec = eliminate_cycles(&t, fresh, &mut steps);
        if let Some(min) = minimal_delta_exact(&t, fresh) {
            prop_assert!(min.len() <= ec.len());
            prop_assert!(!t.has_cycle_involving(fresh, &min));
        } else {
            prop_assert!(false, "full candidate set must always suffice");
        }
    }

    /// The cycle checker is symmetric in direction: reversing every
    /// dependency preserves (a)cyclicity, because a cycle's reverse
    /// traversal is blocked by the reversed dependencies exactly when the
    /// original was.
    #[test]
    fn cycle_check_direction_symmetry(
        shape in prop::collection::vec(0u8..16, 2..5),
        dep_picks in prop::collection::vec(any::<bool>(), 0..16),
    ) {
        let (t, _) = build(&shape, &dep_picks, 0);
        let mut reversed = Tsgd::new();
        for txn in t.txns() {
            let sites: Vec<SiteId> = t.sites_of(txn).collect();
            reversed.insert_txn(txn, &sites);
        }
        for d in t.deps() {
            reversed.add_dep(Dep { site: d.site, before: d.after, after: d.before });
        }
        prop_assert_eq!(t.has_any_cycle(), reversed.has_any_cycle());
    }

    /// Removing a transaction can never create a cycle.
    #[test]
    fn removal_monotonicity(
        shape in prop::collection::vec(0u8..16, 2..5),
        dep_picks in prop::collection::vec(any::<bool>(), 0..16),
        victim_idx in 0usize..5,
    ) {
        let (t, fresh) = build(&shape, &dep_picks, 3);
        let mut steps = StepCounter::new();
        let delta = eliminate_cycles(&t, fresh, &mut steps);
        let mut t2 = t.clone();
        for d in &delta {
            t2.add_dep(*d);
        }
        // After installing Δ there is no cycle through fresh; removing any
        // transaction keeps it that way.
        let txns: Vec<GlobalTxnId> = t2.txns().filter(|&x| x != fresh).collect();
        if let Some(&victim) = txns.get(victim_idx % txns.len().max(1)) {
            t2.remove_txn(victim);
            prop_assert!(!t2.has_cycle_involving(fresh, &BTreeSet::new()));
        }
    }
}
