//! Per-function control-flow graphs, lowered from the bracketed
//! [`FlowEvent`](crate::facts::FlowEvent) stream that the fact walker
//! emits alongside each function's steps.
//!
//! Blocks hold step indices (into `FnFact::steps`) in execution order.
//! Branches fork at `BranchOpen` and join at a fresh merge block; an `if`
//! without `else` contributes a fallthrough edge from the pre-branch
//! block straight to the merge. Loops get a dedicated header block —
//! conditional loops (`while`, `for`) may exit from the header, `loop`
//! only via `break` — and a back edge from the body end to the header.
//! `return` and `?` edge to the dedicated exit block (`?` also continues
//! into a fresh block on the ok path). Code made unreachable by an early
//! exit lands in a predecessor-less block, which the dataflow solver
//! leaves at its initial value.

use crate::facts::{FlowEvent, FnFact, Step};
use std::fmt::Write as _;

/// A per-function control-flow graph over step indices.
#[derive(Clone, Debug)]
pub struct Cfg {
    /// Step indices (into `FnFact::steps`) per block, in execution order.
    pub blocks: Vec<Vec<usize>>,
    /// Successor block ids per block (deduplicated, insertion order).
    pub succs: Vec<Vec<usize>>,
    /// Entry block (always 0, holds the first straight-line steps).
    pub entry: usize,
    /// Dedicated empty exit block (always 1).
    pub exit: usize,
    /// True for blocks created inside at least one loop — the scope the
    /// `lost-wakeup` rule restricts itself to.
    pub in_loop: Vec<bool>,
}

impl Cfg {
    /// Lower one function's event stream.
    pub fn build(fact: &FnFact) -> Cfg {
        Builder::run(&fact.events)
    }

    /// Predecessor lists derived from `succs`.
    pub fn preds(&self) -> Vec<Vec<usize>> {
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); self.blocks.len()];
        for (b, ss) in self.succs.iter().enumerate() {
            for &s in ss {
                preds[s].push(b);
            }
        }
        preds
    }

    /// Total edge count.
    pub fn edge_count(&self) -> usize {
        self.succs.iter().map(Vec::len).sum()
    }

    /// Render the CFG as DOT, labelling blocks with their steps.
    pub fn to_dot(&self, fact: &FnFact) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "digraph cfg {{");
        let _ = writeln!(
            s,
            "  label=\"{} ({}:{})\";",
            fact.qual(),
            fact.file,
            fact.line
        );
        let _ = writeln!(s, "  node [shape=box, fontname=\"monospace\"];");
        for (b, steps) in self.blocks.iter().enumerate() {
            let mut label = if b == self.entry {
                String::from("entry")
            } else if b == self.exit {
                String::from("exit")
            } else {
                format!("b{b}")
            };
            for &i in steps {
                label.push_str("\\n");
                label.push_str(&step_label(&fact.steps[i]));
            }
            let _ = writeln!(s, "  n{b} [label=\"{label}\"];");
        }
        for (b, ss) in self.succs.iter().enumerate() {
            for &t in ss {
                let style = if self.is_back_edge(b, t) {
                    " [style=dashed, label=\"back\"]"
                } else {
                    ""
                };
                let _ = writeln!(s, "  n{b} -> n{t}{style};");
            }
        }
        s.push_str("}\n");
        s
    }

    /// An edge to an earlier block id is a back edge under this builder's
    /// allocation order (headers are allocated before their bodies).
    fn is_back_edge(&self, from: usize, to: usize) -> bool {
        to < from && to != self.exit
    }
}

/// One line of DOT block label per step.
fn step_label(step: &Step) -> String {
    match step {
        Step::Acquire {
            lock,
            binding,
            line,
            ..
        } => {
            if binding.starts_with("#t") {
                format!("{line}: acquire {lock} (tmp)")
            } else {
                format!("{line}: acquire {lock} as {binding}")
            }
        }
        Step::Release { binding } => format!("release {binding}"),
        Step::Send { method, line, .. } => format!("{line}: {method}"),
        Step::Recv { method, line, .. } => format!("{line}: {method}"),
        Step::Blocking { what, line, .. } => format!("{line}: blocking {what}"),
        Step::Call { target, line, .. } => format!("{line}: call {}", target.name()),
        Step::Suspend { what, line, .. } => format!("{line}: suspend {what}"),
    }
}

struct BranchFrame {
    /// Block before the fork; every `ArmOpen` edges from it.
    pre: usize,
    /// Block each arm ended in; `None` for arms that terminated early.
    arm_ends: Vec<Option<usize>>,
}

struct LoopFrame {
    header: usize,
    /// Block the header (condition) ends in — differs from `header` when
    /// the condition itself branches.
    header_end: Option<usize>,
    conditional: bool,
    /// Blocks that `break` out of this loop.
    breaks: Vec<usize>,
}

struct Builder {
    blocks: Vec<Vec<usize>>,
    succs: Vec<Vec<usize>>,
    in_loop: Vec<bool>,
    exit: usize,
    /// Current block; `None` after a terminator (`return`, `break`, ...).
    cur: Option<usize>,
    branches: Vec<BranchFrame>,
    loops: Vec<LoopFrame>,
}

impl Builder {
    fn run(events: &[FlowEvent]) -> Cfg {
        let mut b = Builder {
            blocks: vec![Vec::new(), Vec::new()],
            succs: vec![Vec::new(), Vec::new()],
            in_loop: vec![false, false],
            exit: 1,
            cur: Some(0),
            branches: Vec::new(),
            loops: Vec::new(),
        };
        for e in events {
            b.event(*e);
        }
        if let Some(last) = b.cur {
            b.edge(last, b.exit);
        }
        Cfg {
            blocks: b.blocks,
            succs: b.succs,
            entry: 0,
            exit: 1,
            in_loop: b.in_loop,
        }
    }

    fn new_block(&mut self) -> usize {
        self.blocks.push(Vec::new());
        self.succs.push(Vec::new());
        self.in_loop.push(!self.loops.is_empty());
        self.blocks.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize) {
        if !self.succs[from].contains(&to) {
            self.succs[from].push(to);
        }
    }

    /// The current block, materializing a fresh (unreachable) one after a
    /// terminator.
    fn cur_block(&mut self) -> usize {
        match self.cur {
            Some(b) => b,
            None => {
                let b = self.new_block();
                self.cur = Some(b);
                b
            }
        }
    }

    fn event(&mut self, e: FlowEvent) {
        match e {
            FlowEvent::Step(i) => {
                let b = self.cur_block();
                self.blocks[b].push(i);
            }
            FlowEvent::BranchOpen => {
                let pre = self.cur_block();
                self.branches.push(BranchFrame {
                    pre,
                    arm_ends: Vec::new(),
                });
                self.cur = None;
            }
            FlowEvent::ArmOpen => {
                let Some(frame) = self.branches.last() else {
                    return;
                };
                let pre = frame.pre;
                let b = self.new_block();
                self.edge(pre, b);
                self.cur = Some(b);
            }
            FlowEvent::ArmClose => {
                let end = self.cur.take();
                if let Some(frame) = self.branches.last_mut() {
                    frame.arm_ends.push(end);
                }
            }
            FlowEvent::BranchClose { has_fallthrough } => {
                let Some(frame) = self.branches.pop() else {
                    return;
                };
                let merge = self.new_block();
                for end in frame.arm_ends.iter().flatten() {
                    self.edge(*end, merge);
                }
                if has_fallthrough || frame.arm_ends.is_empty() {
                    self.edge(frame.pre, merge);
                }
                self.cur = Some(merge);
            }
            FlowEvent::LoopOpen { conditional } => {
                let pre = self.cur_block();
                self.loops.push(LoopFrame {
                    header: 0, // patched below (new_block must see the frame)
                    header_end: None,
                    conditional,
                    breaks: Vec::new(),
                });
                let header = self.new_block();
                self.loops.last_mut().expect("just pushed").header = header;
                self.edge(pre, header);
                self.cur = Some(header);
            }
            FlowEvent::LoopBody => {
                let he = self.cur_block();
                let body = self.new_block();
                self.edge(he, body);
                if let Some(frame) = self.loops.last_mut() {
                    frame.header_end = Some(he);
                }
                self.cur = Some(body);
            }
            FlowEvent::LoopClose => {
                let Some(frame) = self.loops.pop() else {
                    return;
                };
                if let Some(end) = self.cur {
                    self.edge(end, frame.header); // back edge
                }
                let after = self.new_block();
                if frame.conditional {
                    if let Some(he) = frame.header_end {
                        self.edge(he, after);
                    }
                }
                for b in frame.breaks {
                    self.edge(b, after);
                }
                self.cur = Some(after);
            }
            FlowEvent::Return => {
                if let Some(b) = self.cur.take() {
                    self.edge(b, self.exit);
                }
            }
            FlowEvent::Try => {
                if let Some(b) = self.cur {
                    self.edge(b, self.exit);
                    let ok = self.new_block();
                    self.edge(b, ok);
                    self.cur = Some(ok);
                }
            }
            FlowEvent::Break => {
                if let Some(b) = self.cur.take() {
                    if let Some(frame) = self.loops.last_mut() {
                        frame.breaks.push(b);
                    }
                }
            }
            FlowEvent::Continue => {
                if let Some(b) = self.cur.take() {
                    if let Some(frame) = self.loops.last() {
                        let header = frame.header;
                        self.edge(b, header);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facts::extract;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn cfg_of(src: &str) -> (Cfg, FnFact) {
        let parsed = parse(&lex(src).tokens);
        let facts = extract("crates/test/src/f.rs", &parsed.trees, parsed.errors);
        let fact = facts.fns[0].clone();
        (Cfg::build(&fact), fact)
    }

    /// Blocks reachable from entry.
    fn reachable(cfg: &Cfg) -> Vec<bool> {
        let mut seen = vec![false; cfg.blocks.len()];
        let mut stack = vec![cfg.entry];
        seen[cfg.entry] = true;
        while let Some(b) = stack.pop() {
            for &s in &cfg.succs[b] {
                if !seen[s] {
                    seen[s] = true;
                    stack.push(s);
                }
            }
        }
        seen
    }

    #[test]
    fn straight_line_is_two_blocks() {
        let (cfg, fact) = cfg_of("fn f(tx: &Sender<u32>) { tx.send(1).ok(); tx.send(2).ok(); }");
        assert_eq!(cfg.blocks[cfg.entry].len(), fact.steps.len());
        assert_eq!(cfg.succs[cfg.entry], vec![cfg.exit]);
    }

    #[test]
    fn if_else_is_a_diamond() {
        let (cfg, _) = cfg_of(
            "fn f(c: bool, tx: &Sender<u32>) {\n\
               if c { tx.send(1).ok(); } else { tx.send(2).ok(); }\n\
               tx.send(3).ok();\n\
             }",
        );
        // entry -> arm1, arm2; both -> merge -> exit.
        assert_eq!(cfg.succs[cfg.entry].len(), 2);
        let merge = cfg.succs[cfg.succs[cfg.entry][0]][0];
        assert_eq!(cfg.succs[cfg.succs[cfg.entry][1]], vec![merge]);
        assert_eq!(cfg.succs[merge], vec![cfg.exit]);
    }

    #[test]
    fn if_without_else_has_fallthrough_edge() {
        let (cfg, _) = cfg_of(
            "fn f(c: bool, tx: &Sender<u32>) {\n\
               if c { tx.send(1).ok(); }\n\
               tx.send(2).ok();\n\
             }",
        );
        // entry -> arm and entry -> merge directly.
        assert_eq!(cfg.succs[cfg.entry].len(), 2);
        let arm = cfg.succs[cfg.entry][0];
        let merge = cfg.succs[cfg.entry][1];
        assert_eq!(cfg.succs[arm], vec![merge]);
    }

    #[test]
    fn loop_has_back_edge_and_break_exit() {
        let (cfg, _) = cfg_of(
            "fn f(rx: &Receiver<u32>) {\n\
               loop {\n\
                 if done { break; }\n\
                 rx.try_recv();\n\
               }\n\
               rx.try_recv();\n\
             }",
        );
        // Some edge must point backwards (body end -> header).
        let has_back = cfg
            .succs
            .iter()
            .enumerate()
            .any(|(b, ss)| ss.iter().any(|&t| cfg.is_back_edge(b, t)));
        assert!(has_back);
        // The step after the loop is reachable (via the break).
        let reach = reachable(&cfg);
        let after_blocks: Vec<usize> = (0..cfg.blocks.len())
            .filter(|&b| !cfg.blocks[b].is_empty())
            .collect();
        assert!(after_blocks.iter().all(|&b| reach[b]), "{cfg:?}");
        // An unconditional loop's header has no edge to the after block.
        assert!(reach[cfg.exit]);
    }

    #[test]
    fn infinite_loop_leaves_after_block_unreachable() {
        let (cfg, _) = cfg_of(
            "fn f(rx: &Receiver<u32>) {\n\
               loop { rx.try_recv(); }\n\
               rx.recv();\n\
             }",
        );
        let reach = reachable(&cfg);
        // The trailing recv's block exists but is unreachable.
        let recv_block = cfg
            .blocks
            .iter()
            .position(|b| b.len() == 1 && !reach[cfg.blocks.iter().position(|x| x == b).unwrap()]);
        assert!(recv_block.is_some() || !reach[cfg.exit]);
    }

    #[test]
    fn while_loop_exits_from_header() {
        let (cfg, _) = cfg_of(
            "fn f(rx: &Receiver<u32>) {\n\
               while rx.try_recv().is_ok() { rx.recv_timeout(d); }\n\
               rx.try_recv();\n\
             }",
        );
        let reach = reachable(&cfg);
        assert!(reach[cfg.exit]);
        // Header (holds try_recv + is_ok) has two successors: body + after.
        let header = (0..cfg.blocks.len())
            .find(|&b| cfg.blocks[b].len() == 2)
            .expect("header");
        assert_eq!(cfg.succs[header].len(), 2);
    }

    #[test]
    fn return_and_try_edge_to_exit() {
        let (cfg, _) = cfg_of(
            "fn f(m: &Mutex<u32>) -> Result<(), E> {\n\
               let g = m.lock()?;\n\
               if c { return Ok(()); }\n\
               Ok(())\n\
             }",
        );
        let exit_preds: usize = cfg
            .succs
            .iter()
            .map(|ss| ss.iter().filter(|&&t| t == cfg.exit).count())
            .sum();
        // `?` error path, early return, and the fn-end fallthrough.
        assert_eq!(exit_preds, 3, "{cfg:?}");
    }

    #[test]
    fn in_loop_marks_loop_blocks_only() {
        let (cfg, fact) = cfg_of(
            "fn f(rx: &Receiver<u32>) {\n\
               rx.try_recv();\n\
               loop { rx.recv_timeout(d); }\n\
             }",
        );
        assert!(!cfg.in_loop[cfg.entry]);
        let rt = fact
            .steps
            .iter()
            .position(|s| matches!(s, Step::Recv { method, .. } if method == "recv_timeout"))
            .unwrap();
        let body = (0..cfg.blocks.len())
            .find(|&b| cfg.blocks[b].contains(&rt))
            .unwrap();
        assert!(cfg.in_loop[body]);
    }
}
