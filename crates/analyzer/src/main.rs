//! `mdbs-lint` CLI.
//!
//! ```text
//! cargo run -p mdbs-analyzer -- --workspace [--json PATH] [--sarif PATH]
//!     [--format human|json|sarif] [--emit-graphs DIR] [--legacy-flow] [--quiet]
//!     [--cache-dir DIR | --no-cache] [--jobs N] [--baseline REPORT.json]
//!     [--fail-on error|warning|note]
//! cargo run -p mdbs-analyzer -- FILE.rs [FILE.rs ...]
//! ```
//!
//! Exit codes: 0 gate passed, 1 gate failed, 2 usage or I/O error.
//! The gate fails on any finding at or above the `--fail-on` threshold
//! (default `note`, i.e. every finding — the historical behavior); with
//! `--baseline`, only findings classified *new* against the baseline
//! report count toward the gate.

use mdbs_analyzer::report::baseline_from_json;
use mdbs_analyzer::rules::{parse_level, AnalyzeOptions, Level, SourceFile};
use mdbs_analyzer::{find_workspace_root, run_sources_with, run_workspace_with, RunOptions};
use std::path::PathBuf;
use std::process::ExitCode;

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Human,
    Json,
    Sarif,
}

fn main() -> ExitCode {
    let mut workspace = false;
    let mut quiet = false;
    let mut format = Format::Human;
    let mut json_path: Option<PathBuf> = None;
    let mut sarif_path: Option<PathBuf> = None;
    let mut graphs_dir: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut cache_dir: Option<PathBuf> = None;
    let mut no_cache = false;
    let mut jobs = 0usize;
    let mut fail_on = Level::Note;
    let mut opts = AnalyzeOptions::default();
    let mut files: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--quiet" | "-q" => quiet = true,
            "--legacy-flow" => opts.legacy_flow = true,
            "--no-cache" => no_cache = true,
            "--print-schema-hash" => {
                println!("{:016x}", mdbs_analyzer::cache::schema_hash());
                return ExitCode::SUCCESS;
            }
            "--format" => match args.next().as_deref() {
                Some("human") => format = Format::Human,
                Some("json") => format = Format::Json,
                Some("sarif") => format = Format::Sarif,
                Some(other) => {
                    eprintln!("mdbs-lint: unknown format `{other}` (human|json|sarif)");
                    return ExitCode::from(2);
                }
                None => {
                    eprintln!("mdbs-lint: --format needs a value (human|json|sarif)");
                    return ExitCode::from(2);
                }
            },
            "--fail-on" => match args.next().as_deref().and_then(parse_level) {
                Some(level) => fail_on = level,
                None => {
                    eprintln!("mdbs-lint: --fail-on needs a value (error|warning|note)");
                    return ExitCode::from(2);
                }
            },
            "--jobs" | "-j" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => jobs = n,
                None => {
                    eprintln!("mdbs-lint: --jobs needs a number");
                    return ExitCode::from(2);
                }
            },
            "--cache-dir" => match args.next() {
                Some(p) => cache_dir = Some(PathBuf::from(p)),
                None => {
                    eprintln!("mdbs-lint: --cache-dir needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--baseline" => match args.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("mdbs-lint: --baseline needs a report.json path");
                    return ExitCode::from(2);
                }
            },
            "--json" => match args.next() {
                Some(p) => json_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("mdbs-lint: --json needs a path");
                    return ExitCode::from(2);
                }
            },
            "--sarif" => match args.next() {
                Some(p) => sarif_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("mdbs-lint: --sarif needs a path");
                    return ExitCode::from(2);
                }
            },
            "--emit-graphs" => match args.next() {
                Some(p) => graphs_dir = Some(PathBuf::from(p)),
                None => {
                    eprintln!("mdbs-lint: --emit-graphs needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "mdbs-lint: static analysis for the mdbs workspace\n\n\
                     USAGE:\n  mdbs-lint --workspace [--json PATH] [--sarif PATH] \
                     [--format human|json|sarif]\n      [--emit-graphs DIR] [--legacy-flow] \
                     [--quiet]\n      [--cache-dir DIR | --no-cache] [--jobs N] \
                     [--baseline REPORT.json]\n      [--fail-on error|warning|note]\n  \
                     mdbs-lint FILE.rs [FILE.rs ...]\n\n\
                     Scans workspace sources for the eleven invariants documented in the\n\
                     README's \"Static analysis\" section.\n\
                     --format selects the stdout rendering; --json/--sarif additionally\n\
                     write the JSON report / SARIF 2.1.0 log to files.\n\
                     --cache-dir persists a fingerprint-keyed fact database so unchanged\n\
                     files skip the front-end and unchanged functions skip the\n\
                     interprocedural re-solve; --no-cache overrides it for an oracle run.\n\
                     --jobs N sets front-end worker threads (default: one per core).\n\
                     --baseline diffs findings against a prior --json report: only *new*\n\
                     findings gate, pre-existing ones are annotated, fixed ones listed.\n\
                     --fail-on sets the severity threshold for exit code 1 (default\n\
                     note = any finding).\n\
                     --print-schema-hash prints the analyzer schema hash (the cache\n\
                     version key) and exits.\n\
                     --emit-graphs writes lock_order.dot, channel_topology.dot and a\n\
                     cfg_<fn>.dot per pump entry point into DIR (created if missing).\n\
                     --legacy-flow runs the pre-CFG linear guard scan (no path-sensitive\n\
                     rules, no stale-allow detection) to diff engines.\n\n\
                     Exit codes: 0 gate passed, 1 findings at/above --fail-on (only new\n\
                     ones under --baseline), 2 usage or I/O error."
                );
                return ExitCode::SUCCESS;
            }
            _ if arg.starts_with('-') => {
                eprintln!("mdbs-lint: unknown flag `{arg}` (try --help)");
                return ExitCode::from(2);
            }
            _ => files.push(PathBuf::from(arg)),
        }
    }
    if no_cache {
        cache_dir = None;
    }

    let mut report = if workspace {
        let cwd = match std::env::current_dir() {
            Ok(d) => d,
            Err(e) => {
                eprintln!("mdbs-lint: cannot read cwd: {e}");
                return ExitCode::from(2);
            }
        };
        let Some(root) = find_workspace_root(&cwd) else {
            eprintln!("mdbs-lint: no workspace root above {}", cwd.display());
            return ExitCode::from(2);
        };
        let run = RunOptions {
            analyze: opts,
            cache_dir,
            jobs,
        };
        match run_workspace_with(&root, run) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("mdbs-lint: {e}");
                return ExitCode::from(2);
            }
        }
    } else if files.is_empty() {
        eprintln!("mdbs-lint: pass --workspace or explicit files (try --help)");
        return ExitCode::from(2);
    } else {
        if cache_dir.is_some() {
            eprintln!("mdbs-lint: --cache-dir requires --workspace");
            return ExitCode::from(2);
        }
        let mut sources = Vec::new();
        for f in &files {
            match std::fs::read_to_string(f) {
                Ok(source) => sources.push(SourceFile {
                    path: f.to_string_lossy().replace('\\', "/"),
                    source,
                }),
                Err(e) => {
                    eprintln!("mdbs-lint: {}: {e}", f.display());
                    return ExitCode::from(2);
                }
            }
        }
        run_sources_with(&sources, None, opts)
    };

    if let Some(path) = &baseline_path {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("mdbs-lint: reading baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let findings = match baseline_from_json(&text) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("mdbs-lint: baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        report.apply_baseline(&path.to_string_lossy().replace('\\', "/"), findings);
    }

    if let Some(path) = &json_path {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("mdbs-lint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if let Some(path) = &sarif_path {
        if let Err(e) = std::fs::write(path, report.to_sarif()) {
            eprintln!("mdbs-lint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if let Some(dir) = &graphs_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("mdbs-lint: creating {}: {e}", dir.display());
            return ExitCode::from(2);
        }
        let lock = dir.join("lock_order.dot");
        let chan = dir.join("channel_topology.dot");
        if let Err(e) = std::fs::write(&lock, report.graphs.lock_dot()) {
            eprintln!("mdbs-lint: writing {}: {e}", lock.display());
            return ExitCode::from(2);
        }
        if let Err(e) = std::fs::write(&chan, report.graphs.channel_dot(None)) {
            eprintln!("mdbs-lint: writing {}: {e}", chan.display());
            return ExitCode::from(2);
        }
        for c in &report.graphs.cfgs {
            let name = format!("cfg_{}.dot", c.func.replace("::", "_"));
            let path = dir.join(name);
            if let Err(e) = std::fs::write(&path, &c.dot) {
                eprintln!("mdbs-lint: writing {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
    }
    match format {
        Format::Human => {
            if !quiet {
                print!("{}", report.render_human());
            }
        }
        Format::Json => print!("{}", report.to_json()),
        Format::Sarif => print!("{}", report.to_sarif()),
    }
    if report.fails(fail_on) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
