//! `mdbs-lint` CLI.
//!
//! ```text
//! cargo run -p mdbs-analyzer -- --workspace [--json PATH] [--emit-graphs DIR] [--quiet]
//! cargo run -p mdbs-analyzer -- FILE.rs [FILE.rs ...]
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

use mdbs_analyzer::rules::SourceFile;
use mdbs_analyzer::{find_workspace_root, run_sources, run_workspace};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut workspace = false;
    let mut quiet = false;
    let mut json_path: Option<PathBuf> = None;
    let mut graphs_dir: Option<PathBuf> = None;
    let mut files: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--quiet" | "-q" => quiet = true,
            "--json" => match args.next() {
                Some(p) => json_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("mdbs-lint: --json needs a path");
                    return ExitCode::from(2);
                }
            },
            "--emit-graphs" => match args.next() {
                Some(p) => graphs_dir = Some(PathBuf::from(p)),
                None => {
                    eprintln!("mdbs-lint: --emit-graphs needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "mdbs-lint: static analysis for the mdbs workspace\n\n\
                     USAGE:\n  mdbs-lint --workspace [--json PATH] [--emit-graphs DIR] \
                     [--quiet]\n  \
                     mdbs-lint FILE.rs [FILE.rs ...]\n\n\
                     Scans workspace sources for the eight invariants documented in the\n\
                     README's \"Static analysis\" section; exits 1 on any violation.\n\
                     --emit-graphs writes lock_order.dot and channel_topology.dot from\n\
                     the interprocedural pass into DIR (created if missing)."
                );
                return ExitCode::SUCCESS;
            }
            _ if arg.starts_with('-') => {
                eprintln!("mdbs-lint: unknown flag `{arg}` (try --help)");
                return ExitCode::from(2);
            }
            _ => files.push(PathBuf::from(arg)),
        }
    }

    let report = if workspace {
        let cwd = match std::env::current_dir() {
            Ok(d) => d,
            Err(e) => {
                eprintln!("mdbs-lint: cannot read cwd: {e}");
                return ExitCode::from(2);
            }
        };
        let Some(root) = find_workspace_root(&cwd) else {
            eprintln!("mdbs-lint: no workspace root above {}", cwd.display());
            return ExitCode::from(2);
        };
        match run_workspace(&root) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("mdbs-lint: {e}");
                return ExitCode::from(2);
            }
        }
    } else if files.is_empty() {
        eprintln!("mdbs-lint: pass --workspace or explicit files (try --help)");
        return ExitCode::from(2);
    } else {
        let mut sources = Vec::new();
        for f in &files {
            match std::fs::read_to_string(f) {
                Ok(source) => sources.push(SourceFile {
                    path: f.to_string_lossy().replace('\\', "/"),
                    source,
                }),
                Err(e) => {
                    eprintln!("mdbs-lint: {}: {e}", f.display());
                    return ExitCode::from(2);
                }
            }
        }
        run_sources(&sources, None)
    };

    if let Some(path) = &json_path {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("mdbs-lint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if let Some(dir) = &graphs_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("mdbs-lint: creating {}: {e}", dir.display());
            return ExitCode::from(2);
        }
        let lock = dir.join("lock_order.dot");
        let chan = dir.join("channel_topology.dot");
        if let Err(e) = std::fs::write(&lock, report.graphs.lock_dot()) {
            eprintln!("mdbs-lint: writing {}: {e}", lock.display());
            return ExitCode::from(2);
        }
        if let Err(e) = std::fs::write(&chan, report.graphs.channel_dot(None)) {
            eprintln!("mdbs-lint: writing {}: {e}", chan.display());
            return ExitCode::from(2);
        }
    }
    if !quiet {
        print!("{}", report.render_human());
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
