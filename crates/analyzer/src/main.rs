//! `mdbs-lint` CLI.
//!
//! ```text
//! cargo run -p mdbs-analyzer -- --workspace [--json PATH] [--sarif PATH]
//!     [--format human|json|sarif] [--emit-graphs DIR] [--legacy-flow] [--quiet]
//! cargo run -p mdbs-analyzer -- FILE.rs [FILE.rs ...]
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

use mdbs_analyzer::rules::{AnalyzeOptions, SourceFile};
use mdbs_analyzer::{find_workspace_root, run_sources_with, run_workspace_with};
use std::path::PathBuf;
use std::process::ExitCode;

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Human,
    Json,
    Sarif,
}

fn main() -> ExitCode {
    let mut workspace = false;
    let mut quiet = false;
    let mut format = Format::Human;
    let mut json_path: Option<PathBuf> = None;
    let mut sarif_path: Option<PathBuf> = None;
    let mut graphs_dir: Option<PathBuf> = None;
    let mut opts = AnalyzeOptions::default();
    let mut files: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--quiet" | "-q" => quiet = true,
            "--legacy-flow" => opts.legacy_flow = true,
            "--format" => match args.next().as_deref() {
                Some("human") => format = Format::Human,
                Some("json") => format = Format::Json,
                Some("sarif") => format = Format::Sarif,
                Some(other) => {
                    eprintln!("mdbs-lint: unknown format `{other}` (human|json|sarif)");
                    return ExitCode::from(2);
                }
                None => {
                    eprintln!("mdbs-lint: --format needs a value (human|json|sarif)");
                    return ExitCode::from(2);
                }
            },
            "--json" => match args.next() {
                Some(p) => json_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("mdbs-lint: --json needs a path");
                    return ExitCode::from(2);
                }
            },
            "--sarif" => match args.next() {
                Some(p) => sarif_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("mdbs-lint: --sarif needs a path");
                    return ExitCode::from(2);
                }
            },
            "--emit-graphs" => match args.next() {
                Some(p) => graphs_dir = Some(PathBuf::from(p)),
                None => {
                    eprintln!("mdbs-lint: --emit-graphs needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "mdbs-lint: static analysis for the mdbs workspace\n\n\
                     USAGE:\n  mdbs-lint --workspace [--json PATH] [--sarif PATH] \
                     [--format human|json|sarif]\n      [--emit-graphs DIR] [--legacy-flow] \
                     [--quiet]\n  \
                     mdbs-lint FILE.rs [FILE.rs ...]\n\n\
                     Scans workspace sources for the eleven invariants documented in the\n\
                     README's \"Static analysis\" section; exits 1 on any violation.\n\
                     --format selects the stdout rendering; --json/--sarif additionally\n\
                     write the JSON report / SARIF 2.1.0 log to files.\n\
                     --emit-graphs writes lock_order.dot, channel_topology.dot and a\n\
                     cfg_<fn>.dot per pump entry point into DIR (created if missing).\n\
                     --legacy-flow runs the pre-CFG linear guard scan (no path-sensitive\n\
                     rules, no stale-allow detection) to diff engines."
                );
                return ExitCode::SUCCESS;
            }
            _ if arg.starts_with('-') => {
                eprintln!("mdbs-lint: unknown flag `{arg}` (try --help)");
                return ExitCode::from(2);
            }
            _ => files.push(PathBuf::from(arg)),
        }
    }

    let report = if workspace {
        let cwd = match std::env::current_dir() {
            Ok(d) => d,
            Err(e) => {
                eprintln!("mdbs-lint: cannot read cwd: {e}");
                return ExitCode::from(2);
            }
        };
        let Some(root) = find_workspace_root(&cwd) else {
            eprintln!("mdbs-lint: no workspace root above {}", cwd.display());
            return ExitCode::from(2);
        };
        match run_workspace_with(&root, opts) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("mdbs-lint: {e}");
                return ExitCode::from(2);
            }
        }
    } else if files.is_empty() {
        eprintln!("mdbs-lint: pass --workspace or explicit files (try --help)");
        return ExitCode::from(2);
    } else {
        let mut sources = Vec::new();
        for f in &files {
            match std::fs::read_to_string(f) {
                Ok(source) => sources.push(SourceFile {
                    path: f.to_string_lossy().replace('\\', "/"),
                    source,
                }),
                Err(e) => {
                    eprintln!("mdbs-lint: {}: {e}", f.display());
                    return ExitCode::from(2);
                }
            }
        }
        run_sources_with(&sources, None, opts)
    };

    if let Some(path) = &json_path {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("mdbs-lint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if let Some(path) = &sarif_path {
        if let Err(e) = std::fs::write(path, report.to_sarif()) {
            eprintln!("mdbs-lint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if let Some(dir) = &graphs_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("mdbs-lint: creating {}: {e}", dir.display());
            return ExitCode::from(2);
        }
        let lock = dir.join("lock_order.dot");
        let chan = dir.join("channel_topology.dot");
        if let Err(e) = std::fs::write(&lock, report.graphs.lock_dot()) {
            eprintln!("mdbs-lint: writing {}: {e}", lock.display());
            return ExitCode::from(2);
        }
        if let Err(e) = std::fs::write(&chan, report.graphs.channel_dot(None)) {
            eprintln!("mdbs-lint: writing {}: {e}", chan.display());
            return ExitCode::from(2);
        }
        for c in &report.graphs.cfgs {
            let name = format!("cfg_{}.dot", c.func.replace("::", "_"));
            let path = dir.join(name);
            if let Err(e) = std::fs::write(&path, &c.dot) {
                eprintln!("mdbs-lint: writing {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
    }
    match format {
        Format::Human => {
            if !quiet {
                print!("{}", report.render_human());
            }
        }
        Format::Json => print!("{}", report.to_json()),
        Format::Sarif => print!("{}", report.to_sarif()),
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
