//! A minimal, hand-rolled Rust lexer.
//!
//! `mdbs-lint` needs just enough fidelity to reason about source text
//! without false positives from strings and comments: identifiers,
//! literals (strings, raw strings, chars, bytes, numbers), lifetimes and
//! single-character punctuation, each carrying a 1-based line/column span.
//! Comments are captured out-of-band so the rule engine can extract
//! `mdbs-lint: allow(...)` directives.
//!
//! The lexer is intentionally permissive: on malformed input it degrades
//! to single-character punctuation tokens rather than erroring, because a
//! lint tool must never take the build down harder than `rustc` would.

/// Kind of a lexed token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unwrap`, `_`, `r#match`).
    Ident,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Any literal: string, raw string, byte string, char, byte, number.
    Literal,
    /// A single punctuation character (`.`, `{`, `=`, ...).
    Punct,
}

/// One token with its source position.
#[derive(Clone, Debug)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokKind,
    /// The token text exactly as written (including quotes for literals).
    pub text: String,
    /// 1-based line of the first character.
    pub line: u32,
    /// 1-based column (in characters) of the first character.
    pub col: u32,
}

impl Token {
    /// True iff this is an identifier with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True iff this is a punctuation token with exactly this text.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// A comment (line or block) captured during lexing.
#[derive(Clone, Debug)]
pub struct Comment {
    /// Comment body without the `//` / `/*` markers.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
}

/// The result of lexing one file.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Lex `src` into tokens and comments. Never fails.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        col: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    out: Lexed,
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            if c.is_whitespace() {
                self.bump();
            } else if c == '/' && self.peek(1) == Some('/') {
                self.line_comment(line);
            } else if c == '/' && self.peek(1) == Some('*') {
                self.block_comment(line);
            } else if c == '"' {
                let text = self.string_literal();
                self.push(TokKind::Literal, text, line, col);
            } else if c == '\'' {
                self.char_or_lifetime(line, col);
            } else if is_ident_start(c) {
                self.ident_or_prefixed_literal(line, col);
            } else if c.is_ascii_digit() {
                let text = self.number_literal();
                self.push(TokKind::Literal, text, line, col);
            } else {
                self.bump();
                self.push(TokKind::Punct, c.to_string(), line, col);
            }
        }
        self.out
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32, col: u32) {
        self.out.tokens.push(Token {
            kind,
            text,
            line,
            col,
        });
    }

    fn line_comment(&mut self, line: u32) {
        self.bump();
        self.bump();
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment { text, line });
    }

    fn block_comment(&mut self, line: u32) {
        self.bump();
        self.bump();
        let mut depth = 1usize;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                self.bump();
                self.bump();
                text.push_str("/*");
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
                text.push_str("*/");
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.out.comments.push(Comment { text, line });
    }

    /// Consume a `"..."` string starting at the current `"`.
    fn string_literal(&mut self) -> String {
        let mut text = String::new();
        text.push(self.bump().unwrap_or('"'));
        while let Some(c) = self.peek(0) {
            if c == '\\' {
                text.push(c);
                self.bump();
                if let Some(e) = self.bump() {
                    text.push(e);
                }
            } else if c == '"' {
                text.push(c);
                self.bump();
                break;
            } else {
                text.push(c);
                self.bump();
            }
        }
        text
    }

    /// Consume `r"..."` / `r#"..."#` style raw strings; the caller has
    /// already verified the shape and consumed nothing.
    fn raw_string_literal(&mut self) -> String {
        let mut text = String::new();
        // Leading 'r' (the caller strips any 'b' before calling).
        if let Some(c) = self.bump() {
            text.push(c);
        }
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            text.push('#');
            self.bump();
        }
        if self.peek(0) == Some('"') {
            text.push('"');
            self.bump();
        }
        loop {
            match self.peek(0) {
                None => break,
                Some('"') => {
                    text.push('"');
                    self.bump();
                    let mut close = 0usize;
                    while close < hashes && self.peek(0) == Some('#') {
                        close += 1;
                        text.push('#');
                        self.bump();
                    }
                    if close == hashes {
                        break;
                    }
                }
                Some(c) => {
                    text.push(c);
                    self.bump();
                }
            }
        }
        text
    }

    /// `'` starts either a char literal or a lifetime.
    fn char_or_lifetime(&mut self, line: u32, col: u32) {
        let mut text = String::from('\'');
        self.bump();
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal: '\n', '\'', '\u{..}'. The character
                // right after the backslash is consumed unconditionally —
                // in '\'' it is a quote that must not be mistaken for the
                // closing delimiter.
                text.push('\\');
                self.bump();
                if let Some(c) = self.peek(0) {
                    text.push(c);
                    self.bump();
                }
                while let Some(c) = self.peek(0) {
                    text.push(c);
                    self.bump();
                    if c == '\'' {
                        break;
                    }
                }
                self.push(TokKind::Literal, text, line, col);
            }
            Some(c) if is_ident_start(c) => {
                let mut ident = String::new();
                while let Some(c) = self.peek(0) {
                    if !is_ident_continue(c) {
                        break;
                    }
                    ident.push(c);
                    self.bump();
                }
                if self.peek(0) == Some('\'') {
                    // 'a' — char literal.
                    self.bump();
                    text.push_str(&ident);
                    text.push('\'');
                    self.push(TokKind::Literal, text, line, col);
                } else {
                    // 'ident — lifetime.
                    text.push_str(&ident);
                    self.push(TokKind::Lifetime, text, line, col);
                }
            }
            Some(c) => {
                // Plain char literal like '(' or '0'.
                text.push(c);
                self.bump();
                if self.peek(0) == Some('\'') {
                    text.push('\'');
                    self.bump();
                }
                self.push(TokKind::Literal, text, line, col);
            }
            None => self.push(TokKind::Punct, text, line, col),
        }
    }

    /// An identifier, or a literal with an ident-like prefix (`r"`, `b"`,
    /// `br"`, `b'`, `r#ident`).
    fn ident_or_prefixed_literal(&mut self, line: u32, col: u32) {
        let c = self.peek(0).unwrap_or('_');
        let next = self.peek(1);
        let raw_after = |i: usize| -> bool {
            // After position i, zero or more '#' then '"'.
            let mut j = i;
            while self.peek(j) == Some('#') {
                j += 1;
            }
            // `r#ident` is a raw identifier, not a raw string: require the
            // quote right after the hashes.
            self.peek(j) == Some('"') && (self.peek(i) == Some('"') || self.peek(i) == Some('#'))
        };
        if c == 'r' && raw_after(1) {
            let text = self.raw_string_literal();
            self.push(TokKind::Literal, text, line, col);
            return;
        }
        if c == 'b' {
            match next {
                Some('"') => {
                    self.bump();
                    let mut text = String::from('b');
                    text.push_str(&self.string_literal());
                    self.push(TokKind::Literal, text, line, col);
                    return;
                }
                Some('\'') => {
                    self.bump();
                    self.bump();
                    let mut text = String::from("b'");
                    while let Some(ch) = self.peek(0) {
                        if ch == '\\' {
                            text.push(ch);
                            self.bump();
                            if let Some(e) = self.bump() {
                                text.push(e);
                            }
                        } else {
                            text.push(ch);
                            self.bump();
                            if ch == '\'' {
                                break;
                            }
                        }
                    }
                    self.push(TokKind::Literal, text, line, col);
                    return;
                }
                Some('r') if raw_after(2) => {
                    self.bump();
                    let mut text = String::from('b');
                    text.push_str(&self.raw_string_literal());
                    self.push(TokKind::Literal, text, line, col);
                    return;
                }
                _ => {}
            }
        }
        let mut text = String::new();
        while let Some(ch) = self.peek(0) {
            if !is_ident_continue(ch) {
                break;
            }
            text.push(ch);
            self.bump();
        }
        // Raw identifier `r#match`: keep the prefix in the text; rules
        // compare against plain names so `r#match` intentionally differs
        // from `match`.
        if text == "r" && self.peek(0) == Some('#') {
            if let Some(ch) = self.peek(1) {
                if is_ident_start(ch) {
                    text.push('#');
                    self.bump();
                    while let Some(ch) = self.peek(0) {
                        if !is_ident_continue(ch) {
                            break;
                        }
                        text.push(ch);
                        self.bump();
                    }
                }
            }
        }
        self.push(TokKind::Ident, text, line, col);
    }

    /// A numeric literal: integers, floats, hex/oct/bin, suffixes.
    fn number_literal(&mut self) -> String {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                text.push(c);
                self.bump();
            } else if c == '.'
                && self.peek(1).is_some_and(|d| d.is_ascii_digit())
                && !text.contains('.')
            {
                // `1.5` is a float; `1..5` is a range — only consume the
                // dot when a digit follows.
                text.push(c);
                self.bump();
            } else if (c == '+' || c == '-')
                && matches!(text.chars().last(), Some('e') | Some('E'))
                && self.peek(1).is_some_and(|d| d.is_ascii_digit())
            {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        text
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn strings_hide_code() {
        let toks = kinds(r#"let s = "x.unwrap()";"#);
        assert!(toks
            .iter()
            .all(|(k, t)| *k != TokKind::Ident || t != "unwrap"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Literal && t.contains("unwrap")));
    }

    #[test]
    fn raw_strings_and_escapes() {
        let toks = kinds(r##"let s = r#"a "quoted" b"#; let t = "\"";"##);
        let lits: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Literal)
            .collect();
        assert_eq!(lits.len(), 2);
        assert!(lits[0].1.contains("quoted"));
    }

    #[test]
    fn comments_are_captured() {
        let out = lex("// top\nfn f() {} /* block\nspan */ let x = 1;");
        assert_eq!(out.comments.len(), 2);
        assert_eq!(out.comments[0].text, " top");
        assert_eq!(out.comments[0].line, 1);
        assert_eq!(out.comments[1].line, 2);
        assert!(out.comments[1].text.contains("block"));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes = toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count();
        let chars = toks.iter().filter(|(k, _)| *k == TokKind::Literal).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn escaped_quote_char_literal_does_not_swallow_delimiters() {
        // Regression: the escaped quote in '\'' was once taken for the
        // closing delimiter, so the real closer started a bogus char
        // literal that ate the `)` after it.
        let toks = kinds(r"f('\''); g('\\');");
        let lits: Vec<&String> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Literal)
            .map(|(_, t)| t)
            .collect();
        assert_eq!(lits, [r"'\''", r"'\\'"]);
        let closers = toks.iter().filter(|(_, t)| *t == ")").count();
        assert_eq!(closers, 2);
    }

    #[test]
    fn nested_block_comments() {
        let out = lex("/* outer /* inner */ still comment */ fn f() {}");
        assert_eq!(out.comments.len(), 1);
        assert!(out.comments[0].text.contains("inner"));
        assert!(out.comments[0].text.contains("still comment"));
        assert!(out.tokens.iter().any(|t| t.is_ident("fn")));
    }

    #[test]
    fn numbers_and_ranges() {
        let toks = kinds("a[0]; 1.5; 0..n; 0xFF_u8; 1e-3;");
        let lits: Vec<&String> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Literal)
            .map(|(_, t)| t)
            .collect();
        assert_eq!(lits, ["0", "1.5", "0", "0xFF_u8", "1e-3"]);
    }

    #[test]
    fn positions_are_one_based() {
        let out = lex("ab\n  cd");
        assert_eq!(out.tokens[0].line, 1);
        assert_eq!(out.tokens[0].col, 1);
        assert_eq!(out.tokens[1].line, 2);
        assert_eq!(out.tokens[1].col, 3);
    }
}
