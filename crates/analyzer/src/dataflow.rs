//! Generic forward dataflow over [`Cfg`](crate::cfg::Cfg)-shaped graphs.
//!
//! The solver is a classic worklist fixpoint: block out-states propagate
//! along successor edges, joining at merge points with either set union
//! (`Merge::May` — "on some path") or set intersection (`Merge::Must` —
//! "on all paths"). Transfer functions are arbitrary closures over a
//! [`BitSet`], which lets rules whose effects are state-dependent (e.g.
//! lost-wakeup's check→register ordering bit) reuse the same engine as
//! plain gen/kill analyses. For gen/kill frameworks the result equals
//! the meet-over-all-paths solution, which is what the property test in
//! `tests/dataflow_prop.rs` pins against a path-enumeration oracle.

/// Join operator at control-flow merges.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Merge {
    /// Fact holds on *some* path (union). Used for guard liveness: a
    /// guard dropped on only one arm is still live after the merge.
    May,
    /// Fact holds on *all* paths (intersection).
    Must,
}

/// A fixed-width bit set sized at construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    nbits: usize,
}

impl BitSet {
    pub fn empty(nbits: usize) -> BitSet {
        BitSet {
            words: vec![0; nbits.div_ceil(64).max(1)],
            nbits,
        }
    }

    pub fn full(nbits: usize) -> BitSet {
        let mut s = BitSet::empty(nbits);
        for i in 0..nbits {
            s.set(i);
        }
        s
    }

    pub fn len(&self) -> usize {
        self.nbits
    }

    pub fn is_empty(&self) -> bool {
        self.nbits == 0
    }

    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.nbits);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.nbits);
        self.words[i / 64] |= 1 << (i % 64);
    }

    pub fn clear(&mut self, i: usize) {
        debug_assert!(i < self.nbits);
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// `self |= other`; returns true if any bit changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        debug_assert_eq!(self.nbits, other.nbits);
        let mut changed = false;
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            let new = *w | o;
            changed |= new != *w;
            *w = new;
        }
        changed
    }

    /// `self &= other`; returns true if any bit changed.
    pub fn intersect_with(&mut self, other: &BitSet) -> bool {
        debug_assert_eq!(self.nbits, other.nbits);
        let mut changed = false;
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            let new = *w & o;
            changed |= new != *w;
            *w = new;
        }
        changed
    }

    pub fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.nbits).filter(|&i| self.get(i))
    }
}

/// Solve a forward dataflow problem; returns the IN state of each block.
///
/// `boundary` is the entry block's IN state. `transfer(b, state)` must
/// mutate `state` from the block's IN to its OUT. Unreachable blocks
/// keep an untouched initial value (empty for `May`, full for `Must`) —
/// callers that walk blocks afterwards should skip blocks the entry
/// cannot reach, or accept the conservative initial value.
pub fn solve(
    nblocks: usize,
    succs: &[Vec<usize>],
    entry: usize,
    nfacts: usize,
    merge: Merge,
    boundary: &BitSet,
    transfer: &mut dyn FnMut(usize, &mut BitSet),
) -> Vec<BitSet> {
    let init = || match merge {
        Merge::May => BitSet::empty(nfacts),
        Merge::Must => BitSet::full(nfacts),
    };
    let mut ins: Vec<BitSet> = (0..nblocks).map(|_| init()).collect();
    let mut reached = vec![false; nblocks];
    if nblocks == 0 {
        return ins;
    }
    ins[entry] = boundary.clone();
    reached[entry] = true;

    let mut worklist = vec![entry];
    let mut queued = vec![false; nblocks];
    queued[entry] = true;
    // Monotone lattice of height nfacts per block bounds iterations;
    // the cap is a defensive backstop, not a correctness requirement.
    let mut budget = (nblocks * (nfacts + 2) + 64) * 4;

    while let Some(b) = worklist.pop() {
        queued[b] = false;
        if budget == 0 {
            break;
        }
        budget -= 1;
        let mut out = ins[b].clone();
        transfer(b, &mut out);
        for &s in &succs[b] {
            let changed = if !reached[s] {
                // First write wins outright: the Must init value (full)
                // must not poison the join from a real predecessor.
                reached[s] = true;
                ins[s] = out.clone();
                true
            } else {
                match merge {
                    Merge::May => ins[s].union_with(&out),
                    Merge::Must => ins[s].intersect_with(&out),
                }
            };
            if changed && !queued[s] {
                queued[s] = true;
                worklist.push(s);
            }
        }
    }
    ins
}

/// Convenience wrapper for plain gen/kill transfer functions given as
/// per-block masks: `out = (in & !kill) | gen`.
pub fn solve_gen_kill(
    succs: &[Vec<usize>],
    entry: usize,
    nfacts: usize,
    merge: Merge,
    boundary: &BitSet,
    gen: &[BitSet],
    kill: &[BitSet],
) -> Vec<BitSet> {
    let nblocks = succs.len();
    solve(
        nblocks,
        succs,
        entry,
        nfacts,
        merge,
        boundary,
        &mut |b, state| {
            for i in kill[b].iter_ones() {
                state.clear(i);
            }
            let _ = state.union_with(&gen[b]);
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(nfacts: usize, ones: &[usize]) -> BitSet {
        let mut s = BitSet::empty(nfacts);
        for &i in ones {
            s.set(i);
        }
        s
    }

    #[test]
    fn bitset_ops() {
        let mut a = bits(70, &[0, 65]);
        assert!(a.get(65) && !a.get(64));
        assert!(a.union_with(&bits(70, &[64])));
        assert!(!a.union_with(&bits(70, &[64])));
        assert!(a.intersect_with(&bits(70, &[0, 64])));
        assert_eq!(a.iter_ones().collect::<Vec<_>>(), vec![0, 64]);
        a.clear(0);
        a.clear(64);
        assert!(!a.any());
    }

    /// Diamond: 0 -> {1, 2} -> 3. Fact 0 killed on block 1 only.
    fn diamond() -> Vec<Vec<usize>> {
        vec![vec![1, 2], vec![3], vec![3], vec![]]
    }

    #[test]
    fn may_keeps_fact_killed_on_one_arm() {
        let n = 1;
        let gen = vec![bits(n, &[0]), bits(n, &[]), bits(n, &[]), bits(n, &[])];
        let kill = vec![bits(n, &[]), bits(n, &[0]), bits(n, &[]), bits(n, &[])];
        let ins = solve_gen_kill(&diamond(), 0, n, Merge::May, &BitSet::empty(n), &gen, &kill);
        // Killed on arm 1, survives arm 2 — May join keeps it live at 3.
        assert!(ins[3].get(0));
    }

    #[test]
    fn must_drops_fact_killed_on_one_arm() {
        let n = 1;
        let gen = vec![bits(n, &[0]), bits(n, &[]), bits(n, &[]), bits(n, &[])];
        let kill = vec![bits(n, &[]), bits(n, &[0]), bits(n, &[]), bits(n, &[])];
        let ins = solve_gen_kill(
            &diamond(),
            0,
            n,
            Merge::Must,
            &BitSet::empty(n),
            &gen,
            &kill,
        );
        assert!(!ins[3].get(0));
    }

    #[test]
    fn loop_reaches_fixpoint() {
        // 0 -> 1 (header) -> 2 (body, gens fact) -> 1; 1 -> 3.
        let succs = vec![vec![1], vec![2, 3], vec![1], vec![]];
        let n = 1;
        let gen = vec![bits(n, &[]), bits(n, &[]), bits(n, &[0]), bits(n, &[])];
        let kill = vec![bits(n, &[]); 4];
        let ins = solve_gen_kill(&succs, 0, n, Merge::May, &BitSet::empty(n), &gen, &kill);
        // Fact genned in the body flows around the back edge to the
        // header and out the exit edge.
        assert!(ins[1].get(0));
        assert!(ins[3].get(0));
        // Must: exit via the zero-trip path lacks the fact.
        let must = solve_gen_kill(&succs, 0, n, Merge::Must, &BitSet::empty(n), &gen, &kill);
        assert!(!must[3].get(0));
    }

    #[test]
    fn unreachable_block_keeps_init() {
        let succs = vec![vec![], vec![]];
        let n = 2;
        let ins = solve(2, &succs, 0, n, Merge::Must, &bits(n, &[0]), &mut |_, _| {});
        assert!(ins[0].get(0) && !ins[0].get(1));
        // Block 1 is unreachable; Must init is full.
        assert!(ins[1].get(0) && ins[1].get(1));
    }

    #[test]
    fn conditional_transfer_orders_facts() {
        // Lost-wakeup style: bit1 set only if bit0 already set when the
        // "register" block runs. 0(check: set bit0) -> 1(register) -> 2.
        let succs = vec![vec![1], vec![2], vec![]];
        let ins = solve(
            3,
            &succs,
            0,
            2,
            Merge::May,
            &BitSet::empty(2),
            &mut |b, st| match b {
                0 => st.set(0),
                1 => {
                    if st.get(0) {
                        st.set(1);
                        st.clear(0);
                    }
                }
                _ => {}
            },
        );
        assert!(ins[2].get(1) && !ins[2].get(0));
    }
}
