//! A minimal JSON reader for `--baseline` report loading.
//!
//! The analyzer is dependency-free by design, and the only JSON it ever
//! *reads* is its own `--json` output, so this parser supports exactly
//! RFC 8259 — objects, arrays, strings (with escapes), numbers, bools,
//! null — with no extensions and no serde. Errors carry a byte offset
//! for diagnostics.

/// A parsed JSON value. Object keys keep insertion order (the report
/// schema is ordered); duplicate keys keep the first occurrence on
/// lookup.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (the report only emits unsigned integers).
    Num(f64),
    /// String with escapes resolved.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String payload.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array payload.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Numeric payload as u32 (what line/col fields hold).
    pub fn as_u32(&self) -> Option<u32> {
        match self {
            Json::Num(n) if *n >= 0.0 && *n <= u32::MAX as f64 && n.fract() == 0.0 => {
                Some(*n as u32)
            }
            _ => None,
        }
    }
}

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let b = text.as_bytes();
    let mut i = 0usize;
    let v = value(b, &mut i)?;
    skip_ws(b, &mut i);
    if i != b.len() {
        return Err(format!("trailing data at byte {i}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn value(b: &[u8], i: &mut usize) -> Result<Json, String> {
    skip_ws(b, i);
    match b.get(*i) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *i += 1;
            let mut pairs = Vec::new();
            skip_ws(b, i);
            if b.get(*i) == Some(&b'}') {
                *i += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(b, i);
                let key = match b.get(*i) {
                    Some(b'"') => string(b, i)?,
                    _ => return Err(format!("expected object key at byte {i}")),
                };
                skip_ws(b, i);
                if b.get(*i) != Some(&b':') {
                    return Err(format!("expected ':' at byte {i}"));
                }
                *i += 1;
                pairs.push((key, value(b, i)?));
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b'}') => {
                        *i += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {i}")),
                }
            }
        }
        Some(b'[') => {
            *i += 1;
            let mut items = Vec::new();
            skip_ws(b, i);
            if b.get(*i) == Some(&b']') {
                *i += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(value(b, i)?);
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b']') => {
                        *i += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {i}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(string(b, i)?)),
        Some(b't') => lit(b, i, "true", Json::Bool(true)),
        Some(b'f') => lit(b, i, "false", Json::Bool(false)),
        Some(b'n') => lit(b, i, "null", Json::Null),
        Some(_) => number(b, i),
    }
}

fn lit(b: &[u8], i: &mut usize, word: &str, v: Json) -> Result<Json, String> {
    if b[*i..].starts_with(word.as_bytes()) {
        *i += word.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {i}"))
    }
}

fn number(b: &[u8], i: &mut usize) -> Result<Json, String> {
    let start = *i;
    if b.get(*i) == Some(&b'-') {
        *i += 1;
    }
    while *i < b.len() && matches!(b[*i], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *i += 1;
    }
    let s = std::str::from_utf8(&b[start..*i]).map_err(|_| "bad number".to_string())?;
    s.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number `{s}` at byte {start}"))
}

fn string(b: &[u8], i: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b.get(*i), Some(&b'"'));
    *i += 1;
    let mut out = String::new();
    let mut chunk_start = *i;
    while *i < b.len() {
        match b[*i] {
            b'"' => {
                out.push_str(
                    std::str::from_utf8(&b[chunk_start..*i])
                        .map_err(|_| "invalid utf-8 in string".to_string())?,
                );
                *i += 1;
                return Ok(out);
            }
            b'\\' => {
                out.push_str(
                    std::str::from_utf8(&b[chunk_start..*i])
                        .map_err(|_| "invalid utf-8 in string".to_string())?,
                );
                *i += 1;
                match b.get(*i) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*i + 1..*i + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| format!("truncated \\u escape at byte {i}"))?;
                        let cp = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {i}"))?;
                        // Surrogate pairs: the report escaper never emits
                        // them (it only escapes control chars), so a lone
                        // surrogate degrades to the replacement char.
                        out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                        *i += 4;
                    }
                    _ => return Err(format!("bad escape at byte {i}")),
                }
                *i += 1;
                chunk_start = *i;
            }
            _ => *i += 1,
        }
    }
    Err("unterminated string".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_report_shapes() {
        let v = parse(
            r#"{ "tool": "mdbs-lint", "total_violations": 2,
                 "violations": [
                   { "rule": "no-panic-in-scheduler", "file": "a.rs", "line": 3, "col": 1,
                     "message": "a \"quoted\" message\nwith newline" },
                   { "rule": "stale-allow", "file": "b.rs", "line": 9, "col": 1, "message": "m" }
                 ] }"#,
        )
        .expect("parse");
        assert_eq!(v.get("tool").and_then(Json::as_str), Some("mdbs-lint"));
        let arr = v.get("violations").and_then(Json::as_arr).expect("arr");
        assert_eq!(arr.len(), 2);
        assert_eq!(
            arr[0].get("message").and_then(Json::as_str),
            Some("a \"quoted\" message\nwith newline")
        );
        assert_eq!(arr[1].get("line").and_then(Json::as_u32), Some(9));
    }

    #[test]
    fn roundtrips_the_escaper() {
        let nasty = "tab\t quote\" back\\ nl\n ctrl\u{0001} em—dash";
        let doc = format!("{{ \"k\": {} }}", crate::report::json_str(nasty));
        let v = parse(&doc).expect("parse");
        assert_eq!(v.get("k").and_then(Json::as_str), Some(nasty));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("{}extra").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
    }
}
