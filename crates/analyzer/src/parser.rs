//! Stage 1 of the graph analyzer: a token-tree parser.
//!
//! Groups the flat token stream from [`crate::lexer`] into nested trees
//! at the three bracket delimiters (`()`, `[]`, `{}`), the same shape
//! `rustc`'s own token trees take before parsing proper. Everything the
//! fact extractor ([`crate::facts`]) needs — function boundaries, block
//! structure, statement splitting — falls out of this nesting; angle
//! brackets (generics, turbofish) deliberately stay flat leaves because
//! `<`/`>` are ambiguous with comparison operators and nothing downstream
//! needs them grouped.
//!
//! Unbalanced delimiters produce [`ParseError`]s and a best-effort
//! recovered tree — a lint must degrade, not panic, on code `rustc`
//! itself would reject.

use crate::lexer::Token;

/// One node of the token tree.
#[derive(Clone, Debug)]
pub enum Tree {
    /// A non-delimiter token.
    Leaf(Token),
    /// A delimited group and its contents.
    Group(Group),
}

/// A `(...)`, `[...]` or `{...}` group.
#[derive(Clone, Debug)]
pub struct Group {
    /// Opening delimiter: `(`, `[` or `{`.
    pub delim: char,
    /// 1-based line of the opening delimiter.
    pub line: u32,
    /// 1-based column of the opening delimiter.
    pub col: u32,
    /// Child trees, in source order.
    pub trees: Vec<Tree>,
}

/// A delimiter-balance diagnostic produced during tree building.
#[derive(Clone, Debug)]
pub struct ParseError {
    /// 1-based line of the offending delimiter.
    pub line: u32,
    /// 1-based column of the offending delimiter.
    pub col: u32,
    /// What went wrong.
    pub message: String,
}

/// The result of parsing one file's token stream.
#[derive(Clone, Debug, Default)]
pub struct Parsed {
    /// Top-level trees.
    pub trees: Vec<Tree>,
    /// Delimiter-balance diagnostics (empty for well-formed input).
    pub errors: Vec<ParseError>,
}

impl Tree {
    /// The token, if this is a leaf.
    pub fn leaf(&self) -> Option<&Token> {
        match self {
            Tree::Leaf(t) => Some(t),
            Tree::Group(_) => None,
        }
    }

    /// The group, if this is one.
    pub fn group(&self) -> Option<&Group> {
        match self {
            Tree::Leaf(_) => None,
            Tree::Group(g) => Some(g),
        }
    }

    /// The identifier text, if this is an identifier leaf.
    pub fn ident(&self) -> Option<&str> {
        self.leaf().and_then(|t| {
            if t.kind == crate::lexer::TokKind::Ident {
                Some(t.text.as_str())
            } else {
                None
            }
        })
    }

    /// True iff this is an identifier leaf with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.leaf().is_some_and(|t| t.is_ident(s))
    }

    /// True iff this is a punctuation leaf with exactly this text.
    pub fn is_punct(&self, s: &str) -> bool {
        self.leaf().is_some_and(|t| t.is_punct(s))
    }

    /// True iff this is a group opened by `delim`.
    pub fn is_group(&self, delim: char) -> bool {
        self.group().is_some_and(|g| g.delim == delim)
    }

    /// Source position of the first character of this tree.
    pub fn pos(&self) -> (u32, u32) {
        match self {
            Tree::Leaf(t) => (t.line, t.col),
            Tree::Group(g) => (g.line, g.col),
        }
    }
}

fn closer_for(open: char) -> char {
    match open {
        '(' => ')',
        '[' => ']',
        _ => '}',
    }
}

/// Build token trees from a token stream. Never panics: stray closers are
/// skipped and unclosed groups are closed at end of input, each with a
/// [`ParseError`] recording the recovery.
pub fn parse(tokens: &[Token]) -> Parsed {
    let mut errors = Vec::new();
    // Stack of open groups; the bottom pseudo-frame collects top-level trees.
    let mut stack: Vec<Group> = vec![Group {
        delim: '\0',
        line: 0,
        col: 0,
        trees: Vec::new(),
    }];
    for t in tokens {
        let c = if t.kind == crate::lexer::TokKind::Punct && t.text.len() == 1 {
            t.text.chars().next()
        } else {
            None
        };
        match c {
            Some(open @ ('(' | '[' | '{')) => {
                stack.push(Group {
                    delim: open,
                    line: t.line,
                    col: t.col,
                    trees: Vec::new(),
                });
            }
            Some(close @ (')' | ']' | '}')) => {
                // Find the nearest open group this closer matches.
                let matches_top = stack
                    .last()
                    .is_some_and(|g| g.delim != '\0' && closer_for(g.delim) == close);
                if matches_top {
                    let done = match stack.pop() {
                        Some(g) => g,
                        None => continue,
                    };
                    if let Some(parent) = stack.last_mut() {
                        parent.trees.push(Tree::Group(done));
                    }
                } else if stack
                    .iter()
                    .any(|g| g.delim != '\0' && closer_for(g.delim) == close)
                {
                    // A matching opener exists further out: the inner
                    // group(s) are unclosed. Close them implicitly.
                    while let Some(top) = stack.last() {
                        if top.delim == '\0' {
                            break;
                        }
                        let is_match = closer_for(top.delim) == close;
                        let done = match stack.pop() {
                            Some(g) => g,
                            None => break,
                        };
                        if !is_match {
                            errors.push(ParseError {
                                line: done.line,
                                col: done.col,
                                message: format!(
                                    "unclosed `{}` opened here (implicitly closed by `{close}` \
                                     at {}:{})",
                                    done.delim, t.line, t.col
                                ),
                            });
                        }
                        if let Some(parent) = stack.last_mut() {
                            parent.trees.push(Tree::Group(done));
                        }
                        if is_match {
                            break;
                        }
                    }
                } else {
                    errors.push(ParseError {
                        line: t.line,
                        col: t.col,
                        message: format!("stray `{close}` with no matching opener"),
                    });
                }
            }
            _ => {
                if let Some(top) = stack.last_mut() {
                    top.trees.push(Tree::Leaf(t.clone()));
                }
            }
        }
    }
    // Close any groups left open at end of input.
    while stack.len() > 1 {
        let done = match stack.pop() {
            Some(g) => g,
            None => break,
        };
        errors.push(ParseError {
            line: done.line,
            col: done.col,
            message: format!("unclosed `{}` still open at end of file", done.delim),
        });
        if let Some(parent) = stack.last_mut() {
            parent.trees.push(Tree::Group(done));
        }
    }
    let trees = stack.pop().map(|g| g.trees).unwrap_or_default();
    Parsed { trees, errors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Parsed {
        parse(&lex(src).tokens)
    }

    #[test]
    fn nesting_recovers_structure() {
        let p = parse_src("fn f(a: u32) { if a > 0 { g(a); } }");
        assert!(p.errors.is_empty());
        // fn, f, (..), {..}
        assert_eq!(p.trees.len(), 4);
        assert!(p.trees[2].is_group('('));
        let body = p.trees[3].group().expect("body group");
        assert_eq!(body.delim, '{');
        // if, a, >, 0, {..}
        assert!(body.trees.iter().any(|t| t.is_group('{')));
    }

    #[test]
    fn turbofish_angles_stay_flat() {
        let p = parse_src("let v = Vec::<u32>::new(); let w = a < b;");
        assert!(p.errors.is_empty());
        // `<` and `>` are leaves, not group delimiters.
        let angles = p
            .trees
            .iter()
            .filter(|t| t.is_punct("<") || t.is_punct(">"))
            .count();
        assert_eq!(angles, 3);
    }

    #[test]
    fn stray_closer_reports_not_panics() {
        let p = parse_src("fn f() { } }");
        assert_eq!(p.errors.len(), 1);
        assert!(p.errors[0].message.contains("stray"));
        assert_eq!(p.trees.len(), 4);
    }

    #[test]
    fn unclosed_group_reports_not_panics() {
        let p = parse_src("fn f() { let x = (1;");
        assert!(!p.errors.is_empty());
        assert!(p
            .errors
            .iter()
            .any(|e| e.message.contains("unclosed") || e.message.contains("implicitly")));
    }

    #[test]
    fn mismatched_closer_recovers_outer_group() {
        // `(` closed by `}` — the paren group is implicitly closed so the
        // brace group still terminates.
        let p = parse_src("fn f() { g(1 }");
        assert!(!p.errors.is_empty());
        assert!(p.trees.iter().any(|t| t.is_group('{')));
    }
}
