//! Stage 3 of the graph analyzer: the interprocedural pass.
//!
//! Assembles a call graph from the per-function facts ([`crate::facts`])
//! and runs the graph-level analyses on top of it:
//!
//! * **`lock-order-cycle`** — build the global lock-acquisition-order
//!   graph (edge `A -> B` when `B` is acquired while `A` is held, in the
//!   same function or through a callee) and report every cycle as a
//!   potential deadlock.
//! * **`channel-topology`** — unify channel creation sites with their
//!   send/recv endpoints (through local aliases, `container.push(tx)` and
//!   struct-literal fields) and flag channels someone sends into but no
//!   one ever drains. The full topology is exported as DOT + JSON.
//! * **`blocking-in-pump`** — flag blocking calls (unbounded `recv`,
//!   `join`, condvar `wait`, `sleep`, blocking `lock`) reachable from the
//!   scheduler entry points in [`PUMP_ENTRY_POINTS`].
//! * **`no-lock-across-send`** — guard liveness as a *may*-dataflow over
//!   each function's CFG ([`crate::cfg`]/[`crate::dataflow`]): a guard
//!   released on every path before the channel call no longer fires, a
//!   guard dropped on only one `match` arm still does (the branch-merge
//!   soundness fix), and a send hidden inside a callee is caught through
//!   the call graph. The pre-CFG linear scan survives as
//!   [`Db::lock_pass_legacy`] behind `--legacy-flow`.
//! * **`guard-across-suspend`** — any lock guard live at a suspension
//!   point (`.await`, `block_timeout`, park/yield) on some CFG path,
//!   interprocedurally via may-suspend summaries.
//! * **`double-lock-path`** — re-acquisition of a held lock along any
//!   CFG path (including through a directly-called method on the same
//!   type), previously only caught when it formed a global cycle.
//! * **`lost-wakeup`** — inside pump/worker loops, a state check that
//!   precedes waker registration on some path into a suspension point.
//!
//! Call resolution is name-based with two precision aids: struct-field
//! types resolve `self.field.method()` to the field type's impls, and
//! bare-name fallback is filtered by the workspace crate-dependency
//! order, so a `crates/core` function never "calls into" `crates/sim`.
//! Unresolvable calls degrade to *external* (no edge), keeping the
//! analyses conservative about what they claim rather than what they
//! assume.

use crate::cfg::Cfg;
use crate::dataflow::{solve, BitSet, Merge};
use crate::facts::{is_suspension, Base, CallTarget, FileFacts, FnFact, Step, StructFact};
use crate::report::json_str;
use crate::rules::{
    Violation, BLOCKING_IN_PUMP, CHANNEL_TOPOLOGY, DOUBLE_LOCK_PATH, GUARD_ACROSS_SUSPEND,
    LOCK_ORDER_CYCLE, LOST_WAKEUP, NO_LOCK_ACROSS_SEND,
};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt::Write as _;

/// Scheduler loops that must never block: the GTM2 pump and the threaded
/// site-server loop. Matching is on the qualified name, so a free `fn
/// pump` elsewhere is not an entry point.
pub const PUMP_ENTRY_POINTS: [&str; 2] = ["Gtm2::pump", "SiteWorker::run"];

/// Methods so ubiquitous on std types that a name-based fallback edge
/// would be noise (`batch.len()` is never `SharedSink::len`). Applies
/// only to the *fallback* path — `self.x()` and typed `self.field.x()`
/// calls still resolve through impls, whatever the name.
const UBIQUITOUS_METHODS: [&str; 48] = [
    "len",
    "is_empty",
    "push",
    "push_back",
    "push_front",
    "pop",
    "pop_back",
    "pop_front",
    "insert",
    "remove",
    "get",
    "get_mut",
    "entry",
    "keys",
    "values",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "clear",
    "drain",
    "extend",
    "contains",
    "contains_key",
    "clone",
    "cloned",
    "collect",
    "map",
    "filter",
    "filter_map",
    "and_then",
    "or_else",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "take",
    "replace",
    "to_string",
    "to_owned",
    "into",
    "as_ref",
    "as_str",
    "min",
    "max",
    "ok",
    "err",
    "expect",
    "unwrap",
];

/// Workspace crate dependency rank: a function in crate with rank `r`
/// may (via name fallback) only call into crates of rank `<= r`. The
/// analyzer itself and unknown paths rank last — nothing falls back into
/// them.
fn crate_rank(path: &str) -> u32 {
    let name = path
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("");
    match name {
        "common" => 0,
        "schedule" => 1,
        "localdb" => 2,
        "core" => 3,
        "workload" => 4,
        "sim" => 5,
        "bench" => 6,
        _ => u32::MAX,
    }
}

// ---------------------------------------------------------------------------
// Graph artifacts
// ---------------------------------------------------------------------------

/// One lock-order edge: `to` acquired while `from` is held.
#[derive(Clone, Debug)]
pub struct LockEdge {
    /// Held lock.
    pub from: String,
    /// Lock acquired under it.
    pub to: String,
    /// Site of the inner acquisition (or of the call that reaches it).
    pub file: String,
    /// 1-based line of that site.
    pub line: u32,
    /// Callee whose transitive acquisition closes the edge, for
    /// interprocedural edges; `None` when both locks are taken in the
    /// same function.
    pub via: Option<String>,
}

/// A send/recv site attributed to a function.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Endpoint {
    /// Qualified function name.
    pub func: String,
    /// File of the call site.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// One channel creation site with its resolved endpoints.
#[derive(Clone, Debug)]
pub struct ChannelNode {
    /// Sender binding at the creation site.
    pub tx: String,
    /// Receiver binding at the creation site.
    pub rx: String,
    /// File of the `let (tx, rx) = ...` statement.
    pub file: String,
    /// 1-based line of the creation.
    pub line: u32,
    /// Qualified name of the creating function.
    pub created_in: String,
    /// Resolved send sites.
    pub senders: Vec<Endpoint>,
    /// Resolved recv sites (any flavor — a `try_recv` loop still drains).
    pub receivers: Vec<Endpoint>,
}

/// One exported per-function CFG (the pump entry points only — the
/// functions whose shape the reactor migration cares about).
#[derive(Clone, Debug)]
pub struct FnCfg {
    /// Qualified function name.
    pub func: String,
    /// Defining file.
    pub file: String,
    /// 1-based line of the definition.
    pub line: u32,
    /// Block count (including entry/exit).
    pub blocks: usize,
    /// Edge count.
    pub edges: usize,
    /// Full DOT rendering, written by `--emit-graphs`.
    pub dot: String,
}

/// The graph artifacts exported in the JSON report and as DOT files.
#[derive(Clone, Debug, Default)]
pub struct Graphs {
    /// Lock names, sorted.
    pub lock_nodes: Vec<String>,
    /// Lock-order edges, sorted by (from, to).
    pub lock_edges: Vec<LockEdge>,
    /// Detected cycles as node sequences (first node repeated implicitly).
    pub lock_cycles: Vec<Vec<String>>,
    /// Channel topology, sorted by (file, line).
    pub channels: Vec<ChannelNode>,
    /// Per-function CFGs for [`PUMP_ENTRY_POINTS`], sorted by name. The
    /// JSON report carries block/edge counts; the DOT text goes to
    /// `--emit-graphs` files only.
    pub cfgs: Vec<FnCfg>,
}

impl Graphs {
    /// Serialize as the report's `graphs` object. The returned string is
    /// a JSON object indented for splicing at the report's top level.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n    \"lock_order\": {\n");
        let nodes: Vec<String> = self.lock_nodes.iter().map(|n| json_str(n)).collect();
        let _ = writeln!(s, "      \"nodes\": [{}],", nodes.join(", "));
        s.push_str("      \"edges\": [");
        for (i, e) in self.lock_edges.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('\n');
            let via = match &e.via {
                Some(v) => json_str(v),
                None => "null".to_string(),
            };
            let _ = write!(
                s,
                "        {{ \"from\": {}, \"to\": {}, \"file\": {}, \"line\": {}, \"via\": {} }}",
                json_str(&e.from),
                json_str(&e.to),
                json_str(&e.file),
                e.line,
                via
            );
        }
        if !self.lock_edges.is_empty() {
            s.push_str("\n      ");
        }
        s.push_str("],\n");
        s.push_str("      \"cycles\": [");
        for (i, c) in self.lock_cycles.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let nodes: Vec<String> = c.iter().map(|n| json_str(n)).collect();
            let _ = write!(s, "[{}]", nodes.join(", "));
        }
        s.push_str("]\n    },\n");
        s.push_str("    \"channel_topology\": {\n      \"channels\": [");
        for (i, ch) in self.channels.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('\n');
            let _ = write!(
                s,
                "        {{ \"tx\": {}, \"rx\": {}, \"file\": {}, \"line\": {}, \
                 \"created_in\": {},\n          \"senders\": [{}],\n          \
                 \"receivers\": [{}] }}",
                json_str(&ch.tx),
                json_str(&ch.rx),
                json_str(&ch.file),
                ch.line,
                json_str(&ch.created_in),
                endpoints_json(&ch.senders),
                endpoints_json(&ch.receivers)
            );
        }
        if !self.channels.is_empty() {
            s.push_str("\n      ");
        }
        s.push_str("]\n    },\n");
        s.push_str("    \"cfgs\": [");
        for (i, c) in self.cfgs.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('\n');
            let _ = write!(
                s,
                "      {{ \"fn\": {}, \"file\": {}, \"line\": {}, \"blocks\": {}, \"edges\": {} }}",
                json_str(&c.func),
                json_str(&c.file),
                c.line,
                c.blocks,
                c.edges
            );
        }
        if !self.cfgs.is_empty() {
            s.push_str("\n    ");
        }
        s.push_str("]\n  }");
        s
    }

    /// The lock-order graph as DOT.
    pub fn lock_dot(&self) -> String {
        let mut s = String::from("digraph lock_order {\n");
        for n in &self.lock_nodes {
            let _ = writeln!(s, "  \"{n}\";");
        }
        for e in &self.lock_edges {
            let via = match &e.via {
                Some(v) => format!(" via {v}"),
                None => String::new(),
            };
            let _ = writeln!(
                s,
                "  \"{}\" -> \"{}\" [label=\"{}:{}{}\"];",
                e.from, e.to, e.file, e.line, via
            );
        }
        s.push_str("}\n");
        s
    }

    /// The channel topology as DOT. With `file_filter`, only channels
    /// *created* in that file are emitted (the per-file golden artifact).
    pub fn channel_dot(&self, file_filter: Option<&str>) -> String {
        let mut s = String::from("digraph channel_topology {\n  rankdir=LR;\n");
        for ch in &self.channels {
            if file_filter.is_some_and(|f| f != ch.file) {
                continue;
            }
            let id = format!("chan@{}:{}", ch.file, ch.line);
            let _ = writeln!(
                s,
                "  \"{id}\" [shape=box, label=\"({}, {})\\n{}:{}\"];",
                ch.tx, ch.rx, ch.file, ch.line
            );
            for func in dedup_funcs(&ch.senders) {
                let _ = writeln!(s, "  \"{func}\" -> \"{id}\" [label=\"send\"];");
            }
            for func in dedup_funcs(&ch.receivers) {
                let _ = writeln!(s, "  \"{id}\" -> \"{func}\" [label=\"recv\"];");
            }
        }
        s.push_str("}\n");
        s
    }
}

fn endpoints_json(eps: &[Endpoint]) -> String {
    let parts: Vec<String> = eps
        .iter()
        .map(|e| {
            format!(
                "{{ \"fn\": {}, \"file\": {}, \"line\": {}, \"col\": {} }}",
                json_str(&e.func),
                json_str(&e.file),
                e.line,
                e.col
            )
        })
        .collect();
    parts.join(", ")
}

fn dedup_funcs(eps: &[Endpoint]) -> Vec<&str> {
    let set: BTreeSet<&str> = eps.iter().map(|e| e.func.as_str()).collect();
    set.into_iter().collect()
}

// ---------------------------------------------------------------------------
// Analysis driver
// ---------------------------------------------------------------------------

/// The interprocedural pass output.
pub struct GraphAnalysis {
    /// Raw violations (allow filtering happens in the caller, which holds
    /// the per-file directive tables).
    pub violations: Vec<Violation>,
    /// Exportable graph artifacts.
    pub graphs: Graphs,
}

/// Run the graph-level analyses over all extracted file facts with the
/// default (CFG dataflow) engine.
pub fn analyze_graph(files: &[&FileFacts]) -> GraphAnalysis {
    analyze_graph_with(files, false)
}

/// Run the graph-level analyses. With `legacy_flow`, guard liveness uses
/// the pre-CFG linear scan and the three path-sensitive rules
/// (`guard-across-suspend`, `double-lock-path`, `lost-wakeup`) are
/// skipped — the `--legacy-flow` engine-diffing mode.
pub fn analyze_graph_with(files: &[&FileFacts], legacy_flow: bool) -> GraphAnalysis {
    analyze_graph_incremental(files, legacy_flow, None)
}

/// The per-function results the expensive CFG passes produce — the unit
/// of caching for the dirty-region re-solve. Replayable verbatim when
/// the function's dependency digest is unchanged.
#[derive(Clone, Debug, Default)]
pub struct FnGraphResult {
    /// Lock-pass violations (`no-lock-across-send`,
    /// `guard-across-suspend`, `double-lock-path`).
    pub violations: Vec<Violation>,
    /// Lock-order edges in first-attempt order, deduplicated per
    /// function; the driver keeps the globally-first edge per
    /// `(from, to)` pair, matching the full-run semantics.
    pub edges: Vec<LockEdge>,
    /// Lost-wakeup violations (empty when not pump-reachable).
    pub lost: Vec<Violation>,
}

/// Cross-run state for the dirty-region re-solve: the previous run's
/// per-function results, the fresh ones being assembled, the per-file
/// content fingerprints feeding the dependency digests, and hit/miss
/// counters for the report.
pub struct GraphCacheCtx {
    /// Previous run's results, keyed by dependency digest.
    pub old: crate::cache::GraphCacheMap,
    /// This run's results (persisted afterwards; entries for deleted
    /// functions are pruned by construction).
    pub fresh: crate::cache::GraphCacheMap,
    /// Workspace-relative path -> content fingerprint.
    pub fps: BTreeMap<String, u64>,
    /// Functions whose stored result was replayed.
    pub hits: usize,
    /// Functions recomputed from scratch.
    pub misses: usize,
}

impl GraphCacheCtx {
    /// Fresh context seeded with a prior run's graph results.
    pub fn new(old: crate::cache::GraphCacheMap, fps: BTreeMap<String, u64>) -> Self {
        GraphCacheCtx {
            old,
            fresh: crate::cache::GraphCacheMap::new(),
            fps,
            hits: 0,
            misses: 0,
        }
    }
}

/// Run the graph-level analyses with an optional per-function result
/// cache. The global prep (call graph, transitive summaries,
/// pump-reachability) is recomputed every run — it is cheap and global
/// by nature; the expensive per-function CFG passes (`lock_pass`,
/// `lost-wakeup`) replay cached results for every function whose
/// dependency digest is unchanged. The digest covers exactly what those
/// passes read: the function's own body (via its file's content
/// fingerprint + ordinal), and each resolved callee's observable
/// summary (qual, transitive locks/channel/suspend, same-type flag,
/// acquire list) — so an edit dirties precisely the functions whose
/// *observed* facts changed, i.e. the call-graph region the edit
/// reaches.
pub fn analyze_graph_incremental(
    files: &[&FileFacts],
    legacy_flow: bool,
    mut cache: Option<&mut GraphCacheCtx>,
) -> GraphAnalysis {
    let db = Db::build(files);
    let adj = db.call_edges();
    let trans_locks = db.transitive_locks(&adj);
    let trans_chan = db.transitive_channel_ops(&adj);
    let reachable = db.pump_reachable(&adj);
    let mut violations = Vec::new();
    let (lock_nodes, lock_edges) = if legacy_flow {
        db.lock_pass_legacy(&trans_locks, &trans_chan, &mut violations)
    } else {
        let trans_suspend = db.transitive_suspends(&adj);
        let mut nodes: BTreeSet<String> = BTreeSet::new();
        for f in &db.fns {
            for step in &f.steps {
                if let Step::Acquire { lock, .. } = step {
                    nodes.insert(lock.clone());
                }
            }
        }
        let mut edges: BTreeMap<(String, String), LockEdge> = BTreeMap::new();
        let mut lost_acc: Vec<Violation> = Vec::new();
        let obs = if cache.is_some() {
            db.observables(&trans_locks, &trans_chan, &trans_suspend)
        } else {
            Vec::new()
        };
        for (i, adj_i) in adj.iter().enumerate() {
            let entry = reachable.get(&i).map(|(e, _)| e.clone());
            let key = cache
                .as_ref()
                .map(|c| db.digest_fn(i, &c.fps, &obs, adj_i, entry.as_deref()));
            let mut replayed: Option<FnGraphResult> = None;
            if let (Some(c), Some(k)) = (cache.as_deref_mut(), &key) {
                if let Some(r) = c.old.remove(k) {
                    c.hits += 1;
                    replayed = Some(r);
                } else {
                    c.misses += 1;
                }
            }
            let result = match replayed {
                Some(r) => r,
                None => {
                    let (v, e) = db.lock_pass_one(i, &trans_locks, &trans_chan, &trans_suspend);
                    let lost = match &entry {
                        Some(en) if db.fns[i].steps.iter().any(is_register_step) => {
                            db.lost_wakeup_one(i, en)
                        }
                        _ => Vec::new(),
                    };
                    FnGraphResult {
                        violations: v,
                        edges: e,
                        lost,
                    }
                }
            };
            violations.extend(result.violations.iter().cloned());
            lost_acc.extend(result.lost.iter().cloned());
            for e in &result.edges {
                edges
                    .entry((e.from.clone(), e.to.clone()))
                    .or_insert_with(|| e.clone());
            }
            if let (Some(c), Some(k)) = (cache.as_deref_mut(), key) {
                c.fresh.insert(k, result);
            }
        }
        violations.extend(lost_acc);
        (nodes.into_iter().collect(), edges.into_values().collect())
    };
    let lock_cycles = cycle_pass(&lock_nodes, &lock_edges, &mut violations);
    let channels = db.channel_pass(&mut violations);
    db.blocking_pass(&reachable, &mut violations);
    GraphAnalysis {
        violations,
        graphs: Graphs {
            lock_nodes,
            lock_edges,
            lock_cycles,
            channels,
            cfgs: db.cfg_exports(),
        },
    }
}

/// A resolved call edge (deduplicated per callee; first site wins).
#[derive(Clone)]
struct CallEdge {
    callee: usize,
}

struct Db<'a> {
    fns: Vec<&'a FnFact>,
    quals: Vec<String>,
    rank: Vec<u32>,
    /// Ordinal of each function within its defining file — part of the
    /// cache key digest, so two same-qual functions in one file never
    /// share an entry.
    ord_in_file: Vec<u32>,
    by_name: BTreeMap<&'a str, Vec<usize>>,
    structs: BTreeMap<&'a str, &'a StructFact>,
}

impl<'a> Db<'a> {
    fn build(files: &[&'a FileFacts]) -> Self {
        let mut fns = Vec::new();
        let mut ord_in_file = Vec::new();
        let mut structs: BTreeMap<&str, &StructFact> = BTreeMap::new();
        for file in files {
            for (ord, f) in file.fns.iter().enumerate() {
                fns.push(f);
                ord_in_file.push(ord as u32);
            }
            for s in &file.structs {
                structs.entry(s.name.as_str()).or_insert(s);
            }
        }
        let quals: Vec<String> = fns.iter().map(|f| f.qual()).collect();
        let rank: Vec<u32> = fns.iter().map(|f| crate_rank(&f.file)).collect();
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.name.as_str()).or_default().push(i);
        }
        Db {
            fns,
            quals,
            rank,
            ord_in_file,
            by_name,
            structs,
        }
    }

    /// The dependency digest deciding whether a cached per-function
    /// result is replayable. It folds in everything
    /// [`Db::lock_pass_one`] / [`Db::lost_wakeup_one`] can observe:
    ///
    /// * the function's own body — via its file's content fingerprint
    ///   plus its ordinal in the file (distinguishing same-qual twins);
    /// * its pump-reachability entry point (message text + whether the
    ///   lost-wakeup pass runs at all);
    /// * for every `Call` step, each resolved callee's observables:
    ///   qual (violation messages embed it), transitive lock set,
    ///   channel-op and may-suspend summaries, the same-self-type flag
    ///   (depth-1 re-entry), and its direct acquire list.
    ///
    /// A change anywhere in a callee that alters any of these flips the
    /// digest of every (transitive) caller that can observe it — the
    /// dirty region is exactly the affected call-graph cone, while
    /// callers whose observed summaries are unchanged keep their hits.
    #[allow(clippy::too_many_arguments)]
    /// One hash per function summarizing everything a *caller's*
    /// analysis can observe about it: qualified name, transitive
    /// lock/channel/suspend summaries, `self` type and own acquire
    /// sites. Computed once per run so [`Db::digest_fn`] folds a single
    /// u64 per resolved callee instead of re-hashing lock sets.
    fn observables(
        &self,
        trans_locks: &[BTreeSet<String>],
        trans_chan: &[bool],
        trans_suspend: &[bool],
    ) -> Vec<u64> {
        (0..self.fns.len())
            .map(|j| {
                let mut h = crate::cache::Fnv::new();
                h.str(&self.quals[j]);
                let locks = &trans_locks[j];
                h.u32(locks.len() as u32);
                for l in locks {
                    h.str(l);
                }
                h.bool(trans_chan[j]);
                h.bool(trans_suspend[j]);
                match self.fns[j].self_type.as_deref() {
                    Some(t) => {
                        h.u8(1);
                        h.str(t);
                    }
                    None => h.u8(0),
                }
                for step in &self.fns[j].steps {
                    if let Step::Acquire { lock, .. } = step {
                        h.str(lock);
                    }
                }
                h.u8(0xFE); // acquire-list terminator
                h.finish()
            })
            .collect()
    }

    /// Dependency digest of function `i`: covers its own body (file
    /// fingerprint + ordinal), its entry-point classification, its own
    /// `self` type and every resolved callee's observable summary —
    /// exactly the inputs `lock_pass_one`/`lost_wakeup_one` read, so an
    /// equal digest guarantees a byte-identical result. (Hashing both
    /// sides' `self` types is a sound over-approximation of the
    /// same-self-type comparison the pass performs; hashing the
    /// *deduplicated* adjacency rather than per-site resolution is too —
    /// a callee's per-site contribution is its observable summary, which
    /// is identical at every site, and the sites themselves are covered
    /// by the file fingerprint.)
    fn digest_fn(
        &self,
        i: usize,
        fps: &BTreeMap<String, u64>,
        obs: &[u64],
        adj_i: &[CallEdge],
        entry: Option<&str>,
    ) -> u64 {
        let f = self.fns[i];
        let mut h = crate::cache::Fnv::new();
        h.u64(fps.get(&f.file).copied().unwrap_or(0));
        // The defining *path* too, not just the content fingerprint:
        // violations embed it, and two identical-content files share a
        // fingerprint. With path + ordinal + qual folded in, the digest
        // identifies the function, so it serves as the whole cache key.
        h.str(&f.file);
        h.u32(self.ord_in_file[i]);
        h.str(&self.quals[i]);
        match entry {
            Some(e) => {
                h.u8(1);
                h.str(e);
            }
            None => h.u8(0),
        }
        match f.self_type.as_deref() {
            Some(t) => {
                h.u8(1);
                h.str(t);
            }
            None => h.u8(0),
        }
        h.u32(adj_i.len() as u32);
        for e in adj_i {
            h.u64(obs[e.callee]);
        }
        h.finish()
    }

    /// Functions named `name` implemented on / for the type or trait
    /// `ty`, into a cleared caller buffer.
    fn typed_into(&self, ty: &str, name: &str, out: &mut Vec<usize>) {
        out.clear();
        self.typed_append(ty, name, out);
    }

    /// The same type/trait filter, appended (for multi-type unions).
    fn typed_append(&self, ty: &str, name: &str, out: &mut Vec<usize>) {
        if let Some(c) = self.by_name.get(name) {
            out.extend(c.iter().copied().filter(|&i| {
                self.fns[i].self_type.as_deref() == Some(ty)
                    || self.fns[i].trait_name.as_deref() == Some(ty)
            }));
        }
    }

    /// Name fallback for receivers we cannot type: every same-named
    /// function in a crate the caller's crate may depend on. Ubiquitous
    /// std-collection names are excluded — they would only add noise.
    fn fallback_into(&self, caller: usize, name: &str, out: &mut Vec<usize>) {
        if UBIQUITOUS_METHODS.contains(&name) {
            return;
        }
        if let Some(c) = self.by_name.get(name) {
            out.extend(
                c.iter()
                    .copied()
                    .filter(|&i| self.rank[i] <= self.rank[caller]),
            );
        }
    }

    /// Resolve one call target to workspace function indices. Empty means
    /// external: the call leaves the analyzed code.
    fn resolve(&self, caller: usize, target: &CallTarget) -> Vec<usize> {
        let mut out = Vec::new();
        self.resolve_into(caller, target, &mut out);
        out
    }

    /// [`Db::resolve`] into a caller-owned buffer (cleared first), so the
    /// adjacency construction — one resolution per call site, every run —
    /// does not allocate per site.
    fn resolve_into(&self, caller: usize, target: &CallTarget, out: &mut Vec<usize>) {
        out.clear();
        match target {
            CallTarget::Qualified { ty, name } => {
                let ty = if ty == "Self" {
                    match self.fns[caller].self_type.as_deref() {
                        Some(t) => t,
                        None => return,
                    }
                } else {
                    ty.as_str()
                };
                self.typed_into(ty, name, out);
            }
            CallTarget::Bare { name } => {
                if let Some(c) = self.by_name.get(name.as_str()) {
                    out.extend(c.iter().copied().filter(|&i| {
                        self.fns[i].self_type.is_none() && self.rank[i] <= self.rank[caller]
                    }));
                }
            }
            CallTarget::Method { name, base } => match base {
                Base::SelfOnly => {
                    if let Some(t) = self.fns[caller].self_type.as_deref() {
                        self.typed_into(t, name, out);
                    }
                }
                Base::SelfField(field) => {
                    if let Some(t) = self.fns[caller].self_type.as_deref() {
                        if let Some(s) = self.structs.get(t) {
                            if let Some((_, idents)) = s.fields.iter().find(|(f, _)| f == field) {
                                // Known struct, known field: resolve only
                                // through the field's type idents. Empty
                                // is a *definitive* external.
                                for id in idents {
                                    self.typed_append(id, name, out);
                                }
                                out.sort_unstable();
                                out.dedup();
                                return;
                            }
                        }
                    }
                    self.fallback_into(caller, name, out);
                }
                Base::Local(_) | Base::Complex => self.fallback_into(caller, name, out),
            },
        }
    }

    /// Resolved, per-callee-deduplicated adjacency (first call site wins).
    fn call_edges(&self) -> Vec<Vec<CallEdge>> {
        let mut adj: Vec<Vec<CallEdge>> = vec![Vec::new(); self.fns.len()];
        let mut buf = Vec::new();
        for (i, f) in self.fns.iter().enumerate() {
            for step in &f.steps {
                if let Step::Call { target, .. } = step {
                    self.resolve_into(i, target, &mut buf);
                    for &callee in &buf {
                        if !adj[i].iter().any(|e| e.callee == callee) {
                            adj[i].push(CallEdge { callee });
                        }
                    }
                }
            }
        }
        adj
    }

    /// Fixpoint: lock names each function acquires, directly or through
    /// any callee.
    fn transitive_locks(&self, adj: &[Vec<CallEdge>]) -> Vec<BTreeSet<String>> {
        let mut locks: Vec<BTreeSet<String>> = self
            .fns
            .iter()
            .map(|f| {
                f.steps
                    .iter()
                    .filter_map(|s| match s {
                        Step::Acquire { lock, .. } => Some(lock.clone()),
                        _ => None,
                    })
                    .collect()
            })
            .collect();
        loop {
            let mut changed = false;
            for i in 0..self.fns.len() {
                for e in &adj[i] {
                    let extra: Vec<String> = locks[e.callee]
                        .iter()
                        .filter(|l| !locks[i].contains(*l))
                        .cloned()
                        .collect();
                    if !extra.is_empty() {
                        locks[i].extend(extra);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        locks
    }

    /// Fixpoint: does the function perform any channel operation (send or
    /// recv), directly or through any callee?
    fn transitive_channel_ops(&self, adj: &[Vec<CallEdge>]) -> Vec<bool> {
        let mut chan: Vec<bool> = self
            .fns
            .iter()
            .map(|f| {
                f.steps
                    .iter()
                    .any(|s| matches!(s, Step::Send { .. } | Step::Recv { .. }))
            })
            .collect();
        loop {
            let mut changed = false;
            for i in 0..self.fns.len() {
                if chan[i] {
                    continue;
                }
                if adj[i].iter().any(|e| chan[e.callee]) {
                    chan[i] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        chan
    }

    /// The pre-CFG linear scan (`--legacy-flow`): walk every function's
    /// step stream with a live-guard list. Unsound at branch merges — a
    /// `drop()` on one `match` arm clears the guard for the code after
    /// the merge on *every* path — which is exactly what the CFG-based
    /// [`Db::lock_pass`] fixes. Kept for one release to diff engines.
    fn lock_pass_legacy(
        &self,
        trans_locks: &[BTreeSet<String>],
        trans_chan: &[bool],
        out: &mut Vec<Violation>,
    ) -> (Vec<String>, Vec<LockEdge>) {
        let mut nodes: BTreeSet<String> = BTreeSet::new();
        let mut edges: BTreeMap<(String, String), LockEdge> = BTreeMap::new();
        for (i, f) in self.fns.iter().enumerate() {
            // (binding, lock, bound line)
            let mut live: Vec<(String, String, u32)> = Vec::new();
            for step in &f.steps {
                match step {
                    Step::Acquire {
                        lock,
                        binding,
                        line,
                        ..
                    } => {
                        nodes.insert(lock.clone());
                        for (_, held, _) in &live {
                            edges
                                .entry((held.clone(), lock.clone()))
                                .or_insert_with(|| LockEdge {
                                    from: held.clone(),
                                    to: lock.clone(),
                                    file: f.file.clone(),
                                    line: *line,
                                    via: None,
                                });
                        }
                        live.push((binding.clone(), lock.clone(), *line));
                    }
                    Step::Release { binding } => {
                        live.retain(|(b, _, _)| b != binding);
                    }
                    Step::Send {
                        method, line, col, ..
                    }
                    | Step::Recv {
                        method, line, col, ..
                    } => {
                        if let Some((binding, lock, gline)) = live.last() {
                            out.push(Violation {
                                rule: NO_LOCK_ACROSS_SEND,
                                file: f.file.clone(),
                                line: *line,
                                col: *col,
                                message: format!(
                                    "`.{method}()` while lock guard `{}` (bound line {gline}) \
                                     is live — a blocked channel with a held lock deadlocks \
                                     the site pump; drop the guard first",
                                    guard_label(binding, lock)
                                ),
                            });
                        }
                    }
                    Step::Call { target, line, col } => {
                        if live.is_empty() {
                            continue;
                        }
                        for callee in self.resolve(i, target) {
                            // Interprocedural lock-order edges; same-name
                            // edges are dropped because the name heuristic
                            // cannot distinguish two `lock` fields of
                            // different objects from a genuine re-entry.
                            for inner in &trans_locks[callee] {
                                for (_, held, _) in &live {
                                    if held != inner {
                                        edges.entry((held.clone(), inner.clone())).or_insert_with(
                                            || LockEdge {
                                                from: held.clone(),
                                                to: inner.clone(),
                                                file: f.file.clone(),
                                                line: *line,
                                                via: Some(self.quals[callee].clone()),
                                            },
                                        );
                                    }
                                }
                            }
                            if trans_chan[callee] {
                                let (binding, lock, gline) =
                                    live.last().expect("live checked non-empty");
                                out.push(Violation {
                                    rule: NO_LOCK_ACROSS_SEND,
                                    file: f.file.clone(),
                                    line: *line,
                                    col: *col,
                                    message: format!(
                                        "call to `{}` performs channel operations while lock \
                                         guard `{}` (bound line {gline}) is live — drop the \
                                         guard before calling",
                                        self.quals[callee],
                                        guard_label(binding, lock)
                                    ),
                                });
                            }
                        }
                    }
                    Step::Blocking { .. } | Step::Suspend { .. } => {}
                }
            }
        }
        (nodes.into_iter().collect(), edges.into_values().collect())
    }

    /// Fixpoint: does the function hit a non-channel suspension point
    /// (`.await`, `block_timeout`, park/yield), directly or through any
    /// callee? Channel receives are deliberately excluded — a call that
    /// does channel ops under a guard is already `no-lock-across-send`.
    fn transitive_suspends(&self, adj: &[Vec<CallEdge>]) -> Vec<bool> {
        let mut susp: Vec<bool> = self
            .fns
            .iter()
            .map(|f| f.steps.iter().any(is_non_channel_suspension))
            .collect();
        loop {
            let mut changed = false;
            for i in 0..self.fns.len() {
                if susp[i] {
                    continue;
                }
                if adj[i].iter().any(|e| susp[e.callee]) {
                    susp[i] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        susp
    }

    /// CFG-based guard-liveness pass for ONE function: solve a
    /// *may*-dataflow (one fact per acquire site) over its CFG, then
    /// re-walk every block from its fixpoint in-state to emit lock-order
    /// edges and the `no-lock-across-send` / `guard-across-suspend` /
    /// `double-lock-path` violations. May-join means a guard dropped on
    /// only one branch is still live after the merge. Pure in the
    /// function's own facts plus its resolved callees' summaries —
    /// exactly what [`Db::digest_fn`] fingerprints — so the result is
    /// replayable from the graph cache.
    fn lock_pass_one(
        &self,
        i: usize,
        trans_locks: &[BTreeSet<String>],
        trans_chan: &[bool],
        trans_suspend: &[bool],
    ) -> (Vec<Violation>, Vec<LockEdge>) {
        let mut out: Vec<Violation> = Vec::new();
        // First-attempt order with per-pair dedup: the driver's global
        // `or_insert` merge then reproduces the full-run "first edge
        // wins" semantics across functions.
        let mut edges: Vec<LockEdge> = Vec::new();
        let mut seen: BTreeSet<(String, String)> = BTreeSet::new();
        let add_edge =
            |edges: &mut Vec<LockEdge>, seen: &mut BTreeSet<(String, String)>, e: LockEdge| {
                if seen.insert((e.from.clone(), e.to.clone())) {
                    edges.push(e);
                }
            };
        {
            let f = self.fns[i];
            // One dataflow fact per acquire site in this function.
            let acquires: Vec<usize> = f
                .steps
                .iter()
                .enumerate()
                .filter(|(_, s)| matches!(s, Step::Acquire { .. }))
                .map(|(idx, _)| idx)
                .collect();
            if acquires.is_empty() {
                return (out, edges);
            }
            let nfacts = acquires.len();
            let acq_fields = |si: usize| -> (&str, &str, u32) {
                match &f.steps[si] {
                    Step::Acquire {
                        lock,
                        binding,
                        line,
                        ..
                    } => (lock.as_str(), binding.as_str(), *line),
                    _ => unreachable!("acquires holds Acquire indices only"),
                }
            };
            let apply = |state: &mut BitSet, step_idx: usize| match &f.steps[step_idx] {
                Step::Acquire { .. } => {
                    let bit = acquires
                        .iter()
                        .position(|&si| si == step_idx)
                        .expect("every Acquire step is an acquire site");
                    state.set(bit);
                }
                Step::Release { binding } => {
                    for (bit, &si) in acquires.iter().enumerate() {
                        if acq_fields(si).1 == binding {
                            state.clear(bit);
                        }
                    }
                }
                _ => {}
            };
            let cfg = Cfg::build(f);
            let ins = solve(
                cfg.blocks.len(),
                &cfg.succs,
                cfg.entry,
                nfacts,
                Merge::May,
                &BitSet::empty(nfacts),
                &mut |b, state| {
                    for &step_idx in &cfg.blocks[b] {
                        apply(state, step_idx);
                    }
                },
            );
            // Innermost live guard: the latest acquire site still live.
            let innermost = |state: &BitSet| -> Option<usize> {
                state.iter_ones().map(|bit| acquires[bit]).max()
            };
            for (b, block) in cfg.blocks.iter().enumerate() {
                let mut state = ins[b].clone();
                for &step_idx in block {
                    match &f.steps[step_idx] {
                        Step::Acquire {
                            lock, line, col, ..
                        } => {
                            if let Some(held_bit) = state
                                .iter_ones()
                                .find(|&bit| acq_fields(acquires[bit]).0 == lock)
                            {
                                let (_, hbind, hline) = acq_fields(acquires[held_bit]);
                                out.push(Violation {
                                    rule: DOUBLE_LOCK_PATH,
                                    file: f.file.clone(),
                                    line: *line,
                                    col: *col,
                                    message: format!(
                                        "lock `{lock}` re-acquired while guard `{}` (bound line \
                                         {hline}) still holds it on some path — self-deadlock \
                                         on a non-reentrant mutex",
                                        guard_label(hbind, lock)
                                    ),
                                });
                            }
                            for bit in state.iter_ones() {
                                let held = acq_fields(acquires[bit]).0;
                                // Same-lock re-acquisition is double-lock-path's
                                // finding; a self-edge here would re-report it
                                // as a one-node lock-order cycle.
                                if held == lock {
                                    continue;
                                }
                                add_edge(
                                    &mut edges,
                                    &mut seen,
                                    LockEdge {
                                        from: held.to_string(),
                                        to: lock.clone(),
                                        file: f.file.clone(),
                                        line: *line,
                                        via: None,
                                    },
                                );
                            }
                        }
                        Step::Send {
                            method, line, col, ..
                        }
                        | Step::Recv {
                            method, line, col, ..
                        } => {
                            if let Some(si) = innermost(&state) {
                                let (lock, binding, gline) = acq_fields(si);
                                out.push(Violation {
                                    rule: NO_LOCK_ACROSS_SEND,
                                    file: f.file.clone(),
                                    line: *line,
                                    col: *col,
                                    message: format!(
                                        "`.{method}()` while lock guard `{}` (bound line {gline}) \
                                         is live — a blocked channel with a held lock deadlocks \
                                         the site pump; drop the guard first",
                                        guard_label(binding, lock)
                                    ),
                                });
                            }
                        }
                        step @ (Step::Suspend { .. } | Step::Blocking { .. }) => {
                            // Channel suspensions (recv_timeout) are
                            // no-lock-across-send's Recv case, not ours.
                            if !is_suspension(step) {
                                // Non-park Blocking: blocking-in-pump's.
                            } else if let Some(si) = innermost(&state) {
                                let (lock, binding, gline) = acq_fields(si);
                                let (what, line, col) = match step {
                                    Step::Suspend { what, line, col } => (what, *line, *col),
                                    Step::Blocking { what, line, col } => (what, *line, *col),
                                    _ => unreachable!(),
                                };
                                out.push(Violation {
                                    rule: GUARD_ACROSS_SUSPEND,
                                    file: f.file.clone(),
                                    line,
                                    col,
                                    message: format!(
                                        "suspension point `{what}` while lock guard `{}` (bound \
                                         line {gline}) is live on some path — a suspended task \
                                         holding a lock starves every task that needs it; drop \
                                         the guard before suspending",
                                        guard_label(binding, lock)
                                    ),
                                });
                            }
                        }
                        Step::Call { target, line, col } => {
                            if !state.any() {
                                continue;
                            }
                            for callee in self.resolve(i, target) {
                                // Interprocedural lock-order edges;
                                // same-name edges are dropped because the
                                // name heuristic cannot distinguish two
                                // `lock` fields of different objects from
                                // a genuine re-entry.
                                for inner in &trans_locks[callee] {
                                    for bit in state.iter_ones() {
                                        let held = acq_fields(acquires[bit]).0;
                                        if held != inner {
                                            add_edge(
                                                &mut edges,
                                                &mut seen,
                                                LockEdge {
                                                    from: held.to_string(),
                                                    to: inner.clone(),
                                                    file: f.file.clone(),
                                                    line: *line,
                                                    via: Some(self.quals[callee].clone()),
                                                },
                                            );
                                        }
                                    }
                                }
                                if trans_chan[callee] {
                                    let si = innermost(&state).expect("state non-empty");
                                    let (lock, binding, gline) = acq_fields(si);
                                    out.push(Violation {
                                        rule: NO_LOCK_ACROSS_SEND,
                                        file: f.file.clone(),
                                        line: *line,
                                        col: *col,
                                        message: format!(
                                            "call to `{}` performs channel operations while lock \
                                             guard `{}` (bound line {gline}) is live — drop the \
                                             guard before calling",
                                            self.quals[callee],
                                            guard_label(binding, lock)
                                        ),
                                    });
                                } else if trans_suspend[callee] && confidently_typed(target) {
                                    // May-suspend summaries only travel
                                    // through calls whose target is typed
                                    // (or a rank-filtered free fn) — a
                                    // complex-receiver name fallback that
                                    // happens to share a name with a
                                    // spinning method is not evidence the
                                    // guard crosses a suspension.
                                    let si = innermost(&state).expect("state non-empty");
                                    let (lock, binding, gline) = acq_fields(si);
                                    out.push(Violation {
                                        rule: GUARD_ACROSS_SUSPEND,
                                        file: f.file.clone(),
                                        line: *line,
                                        col: *col,
                                        message: format!(
                                            "call to `{}` may suspend while lock guard `{}` \
                                             (bound line {gline}) is live — drop the guard \
                                             before calling",
                                            self.quals[callee],
                                            guard_label(binding, lock)
                                        ),
                                    });
                                }
                                // Depth-1 interprocedural re-entry: a
                                // method on the *same type* directly
                                // re-acquiring a lock we hold. Typed
                                // receivers only — name fallback is too
                                // weak to claim same-object re-entry.
                                let same_object = matches!(
                                    target,
                                    CallTarget::Method {
                                        base: Base::SelfOnly | Base::SelfField(_),
                                        ..
                                    }
                                ) && self.fns[callee].self_type
                                    == self.fns[i].self_type;
                                if !same_object {
                                    continue;
                                }
                                for cstep in &self.fns[callee].steps {
                                    let Step::Acquire { lock: clock, .. } = cstep else {
                                        continue;
                                    };
                                    if let Some(bit) = state
                                        .iter_ones()
                                        .find(|&bit| acq_fields(acquires[bit]).0 == clock)
                                    {
                                        let (_, hbind, hline) = acq_fields(acquires[bit]);
                                        out.push(Violation {
                                            rule: DOUBLE_LOCK_PATH,
                                            file: f.file.clone(),
                                            line: *line,
                                            col: *col,
                                            message: format!(
                                                "call to `{}` re-acquires lock `{clock}` while \
                                                 guard `{}` (bound line {hline}) still holds it \
                                                 — self-deadlock on a non-reentrant mutex",
                                                self.quals[callee],
                                                guard_label(hbind, clock)
                                            ),
                                        });
                                        break;
                                    }
                                }
                            }
                        }
                        Step::Release { .. } => {}
                    }
                    apply(&mut state, step_idx);
                }
            }
        }
        (out, edges)
    }

    /// Build the channel topology and flag channels with senders but no
    /// draining receiver.
    fn channel_pass(&self, out: &mut Vec<Violation>) -> Vec<ChannelNode> {
        // Creation sites, ordered by (file, line, tx).
        let mut channels: Vec<ChannelNode> = Vec::new();
        let mut index: BTreeMap<(String, u32, String), usize> = BTreeMap::new();
        let mut per_fn: Vec<Vec<usize>> = vec![Vec::new(); self.fns.len()];
        for (i, f) in self.fns.iter().enumerate() {
            for c in &f.creates {
                let key = (f.file.clone(), c.line, c.tx.clone());
                let idx = *index.entry(key).or_insert_with(|| {
                    channels.push(ChannelNode {
                        tx: c.tx.clone(),
                        rx: c.rx.clone(),
                        file: f.file.clone(),
                        line: c.line,
                        created_in: self.quals[i].clone(),
                        senders: Vec::new(),
                        receivers: Vec::new(),
                    });
                    channels.len() - 1
                });
                per_fn[i].push(idx);
            }
        }
        // Endpoint attribution.
        for (i, f) in self.fns.iter().enumerate() {
            for step in &f.steps {
                let (base, line, col, is_send) = match step {
                    Step::Send {
                        base, line, col, ..
                    } => (base, *line, *col, true),
                    Step::Recv {
                        base, line, col, ..
                    } => (base, *line, *col, false),
                    _ => continue,
                };
                let Some(ch) = self.resolve_endpoint(i, base, is_send, &per_fn) else {
                    continue;
                };
                let ep = Endpoint {
                    func: self.quals[i].clone(),
                    file: f.file.clone(),
                    line,
                    col,
                };
                if is_send {
                    channels[ch].senders.push(ep);
                } else {
                    channels[ch].receivers.push(ep);
                }
            }
        }
        for ch in &mut channels {
            ch.senders.sort();
            ch.senders.dedup();
            ch.receivers.sort();
            ch.receivers.dedup();
        }
        channels.sort_by(|a, b| (&a.file, a.line, &a.tx).cmp(&(&b.file, b.line, &b.tx)));
        for ch in &channels {
            if !ch.senders.is_empty() && ch.receivers.is_empty() {
                let first = &ch.senders[0];
                out.push(Violation {
                    rule: CHANNEL_TOPOLOGY,
                    file: first.file.clone(),
                    line: first.line,
                    col: first.col,
                    message: format!(
                        "send into channel `({}, {})` created at {}:{} ({}) — no receiver \
                         anywhere drains it; once the buffer fills every sender blocks forever",
                        ch.tx, ch.rx, ch.file, ch.line, ch.created_in
                    ),
                });
            }
        }
        channels
    }

    /// Resolve a send/recv receiver base to one of the known channels.
    fn resolve_endpoint(
        &self,
        i: usize,
        base: &Base,
        want_tx: bool,
        per_fn: &[Vec<usize>],
    ) -> Option<usize> {
        match base {
            Base::Local(name) => self.chan_in_fn(i, name, want_tx, per_fn),
            Base::SelfField(field) => {
                let ty = self.fns[i].self_type.as_deref()?;
                for (j, g) in self.fns.iter().enumerate() {
                    for fa in &g.field_aliases {
                        if fa.struct_name == ty && &fa.field == field {
                            if let Some(ch) = self.chan_in_fn(j, &fa.source, want_tx, per_fn) {
                                return Some(ch);
                            }
                        }
                    }
                }
                None
            }
            Base::SelfOnly | Base::Complex => None,
        }
    }

    /// Match `name` (through the function's local aliases) against the
    /// channels the function creates.
    fn chan_in_fn(
        &self,
        i: usize,
        name: &str,
        want_tx: bool,
        per_fn: &[Vec<usize>],
    ) -> Option<usize> {
        if per_fn[i].is_empty() {
            return None;
        }
        // Alias closure: every source reachable from `name`.
        let mut names: BTreeSet<&str> = BTreeSet::new();
        names.insert(name);
        loop {
            let mut grew = false;
            for (alias, source) in &self.fns[i].local_aliases {
                if names.contains(alias.as_str()) && names.insert(source.as_str()) {
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }
        let mut chan = None;
        for (ci, c) in self.fns[i].creates.iter().enumerate() {
            let end = if want_tx { &c.tx } else { &c.rx };
            if names.contains(end.as_str()) {
                chan = Some(per_fn[i][ci]);
            }
        }
        chan
    }

    /// BFS from the pump entry points: fn index -> (entry qual, call
    /// path). Shared by `blocking_pass` and `lost_wakeup_pass`.
    fn pump_reachable(&self, adj: &[Vec<CallEdge>]) -> BTreeMap<usize, (String, Vec<usize>)> {
        let mut visited: BTreeMap<usize, (String, Vec<usize>)> = BTreeMap::new();
        for entry_name in PUMP_ENTRY_POINTS {
            for (i, q) in self.quals.iter().enumerate() {
                if q != entry_name || visited.contains_key(&i) {
                    continue;
                }
                let mut queue = VecDeque::from([i]);
                visited.insert(i, (q.clone(), vec![i]));
                while let Some(cur) = queue.pop_front() {
                    let path = visited[&cur].1.clone();
                    for e in &adj[cur] {
                        if visited.contains_key(&e.callee) {
                            continue;
                        }
                        let mut p = path.clone();
                        p.push(e.callee);
                        visited.insert(e.callee, (q.clone(), p));
                        queue.push_back(e.callee);
                    }
                }
            }
        }
        visited
    }

    /// Flag every blocking step in a function reachable from a pump
    /// entry point, with the call path in the message.
    fn blocking_pass(
        &self,
        visited: &BTreeMap<usize, (String, Vec<usize>)>,
        out: &mut Vec<Violation>,
    ) {
        for (&i, (entry, path)) in visited {
            let f = self.fns[i];
            let path_str = path
                .iter()
                .map(|&j| format!("`{}`", self.quals[j]))
                .collect::<Vec<_>>()
                .join(" -> ");
            for step in &f.steps {
                let (desc, line, col) = match step {
                    Step::Blocking { what, line, col } => (format!("`{what}`"), *line, *col),
                    Step::Recv {
                        method,
                        bounded: false,
                        line,
                        col,
                        ..
                    } => (format!("`.{method}()`"), *line, *col),
                    Step::Acquire {
                        lock, line, col, ..
                    } => (format!("blocking `.lock()` on `{lock}`"), *line, *col),
                    _ => continue,
                };
                out.push(Violation {
                    rule: BLOCKING_IN_PUMP,
                    file: f.file.clone(),
                    line,
                    col,
                    message: format!(
                        "{desc} is reachable from `{entry}` (call path: {path_str}) — the \
                         scheduler pump must never block; use try_/timeout variants or move \
                         the work off the pump thread"
                    ),
                });
            }
        }
    }

    /// `lost-wakeup` for ONE function: in pump/worker loops, a state
    /// check that precedes waker registration on some path into a
    /// suspension point. Between the check and the registration a
    /// producer can enqueue and notify; the notification hits no
    /// registered waker and the consumer parks on stale state. Two-bit
    /// may-dataflow: C = "a state check has happened", S = "the most
    /// recent check precedes the most recent registration" (stale). The
    /// driver calls this only for functions reachable from
    /// [`PUMP_ENTRY_POINTS`] (`entry` is the reaching entry point) that
    /// register a waker; only suspension points inside loops flag.
    fn lost_wakeup_one(&self, i: usize, entry: &str) -> Vec<Violation> {
        const C: usize = 0; // a state check has happened
        const S: usize = 1; // that check is stale (register came after)
        let mut out = Vec::new();
        let f = self.fns[i];
        let cfg = Cfg::build(f);
        let apply = |state: &mut BitSet, step: &Step| {
            if is_check_step(step) {
                state.set(C);
                state.clear(S);
            } else if is_register_step(step) && state.get(C) {
                state.set(S);
            }
        };
        let ins = solve(
            cfg.blocks.len(),
            &cfg.succs,
            cfg.entry,
            2,
            Merge::May,
            &BitSet::empty(2),
            &mut |b, state| {
                for &si in &cfg.blocks[b] {
                    apply(state, &f.steps[si]);
                }
            },
        );
        for (b, block) in cfg.blocks.iter().enumerate() {
            let mut state = ins[b].clone();
            for &si in block {
                let step = &f.steps[si];
                if cfg.in_loop[b] && is_suspension(step) && state.get(S) {
                    let (what, line, col) = suspension_site(step);
                    out.push(Violation {
                        rule: LOST_WAKEUP,
                        file: f.file.clone(),
                        line,
                        col,
                        message: format!(
                            "suspension point `{what}` in a loop reachable from `{entry}` \
                             can miss a wakeup: on some path the state check happens before \
                             the waker is registered, so a notification between them is \
                             lost — register first, re-check, then suspend"
                        ),
                    });
                }
                apply(&mut state, step);
            }
        }
        out
    }

    /// Per-function CFG exports for the pump entry points.
    fn cfg_exports(&self) -> Vec<FnCfg> {
        let mut out: Vec<FnCfg> = self
            .fns
            .iter()
            .enumerate()
            .filter(|(i, _)| PUMP_ENTRY_POINTS.contains(&self.quals[*i].as_str()))
            .map(|(i, f)| {
                let cfg = Cfg::build(f);
                FnCfg {
                    func: self.quals[i].clone(),
                    file: f.file.clone(),
                    line: f.line,
                    blocks: cfg.blocks.len(),
                    edges: cfg.edge_count(),
                    dot: cfg.to_dot(f),
                }
            })
            .collect();
        out.sort_by(|a, b| (&a.func, &a.file).cmp(&(&b.func, &b.file)));
        out
    }
}

/// Non-channel suspension: `.await`, `block_timeout`, park/yield — the
/// facts a may-suspend summary propagates. Channel receives are excluded
/// (they are `no-lock-across-send`'s concern under a guard).
fn is_non_channel_suspension(step: &Step) -> bool {
    matches!(step, Step::Suspend { .. })
        || matches!(step, Step::Blocking { what, .. } if what.contains("park"))
}

/// Call targets precise enough to carry a may-suspend summary: typed
/// receivers and qualified paths resolve through impls, bare names only
/// to rank-filtered free fns. Method calls on local/complex receivers
/// fall back to any same-named function — too weak for this rule.
fn confidently_typed(target: &CallTarget) -> bool {
    match target {
        CallTarget::Qualified { .. } | CallTarget::Bare { .. } => true,
        CallTarget::Method { base, .. } => matches!(base, Base::SelfOnly | Base::SelfField(_)),
    }
}

/// State-check calls whose result guards a suspension decision.
const CHECK_METHODS: [&str; 4] = ["try_recv", "is_empty", "peek", "is_ready"];

/// Waker/handoff-hint registration calls.
const REGISTER_METHODS: [&str; 5] = [
    "register",
    "register_waker",
    "subscribe",
    "add_waker",
    "set_waker",
];

fn is_check_step(step: &Step) -> bool {
    match step {
        Step::Recv { method, .. } => method == "try_recv",
        Step::Call { target, .. } => CHECK_METHODS.contains(&target.name()),
        _ => false,
    }
}

fn is_register_step(step: &Step) -> bool {
    matches!(step, Step::Call { target, .. } if REGISTER_METHODS.contains(&target.name()))
}

/// Location of a suspension step (callers guarantee `is_suspension`).
fn suspension_site(step: &Step) -> (String, u32, u32) {
    match step {
        Step::Suspend { what, line, col } => (what.clone(), *line, *col),
        Step::Blocking { what, line, col } => (what.clone(), *line, *col),
        Step::Recv {
            method, line, col, ..
        } => (format!(".{method}()"), *line, *col),
        _ => (String::new(), 1, 1),
    }
}

/// Display name for a guard in diagnostics: statement temporaries get
/// described by their lock instead of the synthetic binding.
fn guard_label(binding: &str, lock: &str) -> String {
    if binding.starts_with("#t") {
        format!("<temporary {lock} guard>")
    } else {
        binding.to_string()
    }
}

// ---------------------------------------------------------------------------
// Cycle detection
// ---------------------------------------------------------------------------

/// Find cycles in the lock-order graph; one violation per strongly
/// connected component that contains a cycle.
fn cycle_pass(nodes: &[String], edges: &[LockEdge], out: &mut Vec<Violation>) -> Vec<Vec<String>> {
    let idx: BTreeMap<&str, usize> = nodes
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i))
        .collect();
    let n = nodes.len();
    let mut reach = vec![vec![false; n]; n];
    for e in edges {
        reach[idx[e.from.as_str()]][idx[e.to.as_str()]] = true;
    }
    // Floyd–Warshall closure (lock graphs are tiny; cloning row k keeps
    // the inner loop a simple zip without split-borrow gymnastics).
    for k in 0..n {
        let row_k = reach[k].clone();
        for row in reach.iter_mut() {
            if !row[k] {
                continue;
            }
            for (dst, &src) in row.iter_mut().zip(row_k.iter()) {
                *dst |= src;
            }
        }
    }
    let edge_at = |from: usize, to: usize| -> Option<&LockEdge> {
        edges
            .iter()
            .find(|e| idx[e.from.as_str()] == from && idx[e.to.as_str()] == to)
    };
    let mut seen = vec![false; n];
    let mut cycles = Vec::new();
    for start in 0..n {
        if seen[start] || !reach[start][start] {
            continue;
        }
        // The SCC of `start` among cyclic nodes.
        let scc: Vec<usize> = (0..n)
            .filter(|&m| reach[start][m] && reach[m][start])
            .collect();
        for &m in &scc {
            seen[m] = true;
        }
        // Shortest explicit cycle through `start`, by BFS inside the SCC.
        let path = match shortest_cycle(start, &scc, edges, &idx) {
            Some(p) => p,
            None => continue,
        };
        let mut desc = Vec::new();
        for w in path.windows(2) {
            if let Some(e) = edge_at(w[0], w[1]) {
                let via = match &e.via {
                    Some(v) => format!(" via `{v}`"),
                    None => String::new(),
                };
                desc.push(format!(
                    "`{}` -> `{}` at {}:{}{via}",
                    e.from, e.to, e.file, e.line
                ));
            }
        }
        let first = edge_at(path[0], path[1]);
        let cycle_nodes: Vec<String> = path[..path.len() - 1]
            .iter()
            .map(|&m| nodes[m].clone())
            .collect();
        out.push(Violation {
            rule: LOCK_ORDER_CYCLE,
            file: first.map(|e| e.file.clone()).unwrap_or_default(),
            line: first.map(|e| e.line).unwrap_or(1),
            col: 1,
            message: format!(
                "lock-acquisition-order cycle: {} — two threads taking these locks in \
                 opposite orders can deadlock; pick one global order",
                desc.join(", ")
            ),
        });
        cycles.push(cycle_nodes);
    }
    cycles
}

/// BFS for the shortest edge path `start -> ... -> start` (length >= 1)
/// inside one SCC. Returns node indices including the final `start`.
fn shortest_cycle(
    start: usize,
    scc: &[usize],
    edges: &[LockEdge],
    idx: &BTreeMap<&str, usize>,
) -> Option<Vec<usize>> {
    let in_scc = |m: usize| scc.contains(&m);
    let succs = |m: usize| -> Vec<usize> {
        edges
            .iter()
            .filter(|e| idx[e.from.as_str()] == m)
            .map(|e| idx[e.to.as_str()])
            .filter(|&t| in_scc(t))
            .collect()
    };
    let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
    let mut queue = VecDeque::from([start]);
    while let Some(cur) = queue.pop_front() {
        for t in succs(cur) {
            if t == start {
                // Walk the parent chain cur -> ... -> start, then close
                // the cycle with the edge cur -> start just found.
                let mut chain = vec![cur];
                let mut at = cur;
                while at != start {
                    let p = *parent.get(&at)?;
                    chain.push(p);
                    at = p;
                }
                chain.reverse();
                chain.push(start);
                return Some(chain);
            }
            if !parent.contains_key(&t) && t != start {
                parent.insert(t, cur);
                queue.push_back(t);
            }
        }
    }
    None
}
