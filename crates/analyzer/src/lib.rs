//! `mdbs-lint` — static analysis for the mdbs workspace.
//!
//! The paper's Section 3 argument — a multidatabase scheduler must be
//! *conservative* because aborting a global transaction is prohibitively
//! expensive — translates into code discipline: the GTM2 pump, the
//! scheme `cond`/`act` implementations and the site servers must never
//! panic or silently drop protocol messages. PR 1 converted panics into
//! [`SchemeEffect::ProtocolViolation`] effects; this crate is the gate
//! that keeps it that way.
//!
//! See [`rules`] for the eleven invariants, [`report`] for the JSON and
//! SARIF schemas, [`parser`]/[`facts`]/[`cfg`]/[`dataflow`]/[`graph`]
//! for the analysis stages, and the repository README's "Static
//! analysis" section for the allow-comment escape hatch.
//!
//! Run it as a tool:
//!
//! ```text
//! cargo run -p mdbs-analyzer -- --workspace
//! ```
//!
//! [`SchemeEffect::ProtocolViolation`]: ../mdbs_core/scheme/enum.SchemeEffect.html

pub mod cfg;
pub mod dataflow;
pub mod facts;
pub mod graph;
pub mod lexer;
pub mod parser;
pub mod report;
pub mod rules;

use report::Report;
use rules::{AnalyzeOptions, SourceFile};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Directory names never scanned: vendored deps, build output, test code
/// (exempt from every rule) and the analyzer's own deliberately-violating
/// fixtures.
const SKIP_DIRS: [&str; 7] = [
    "vendor", "target", ".git", "tests", "benches", "fixtures", "results",
];

/// Walk upward from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Collect every lintable `.rs` file under `root`, workspace-relative and
/// sorted.
pub fn collect_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    walk(root, root, &mut out)?;
    out.sort();
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

/// Lint the whole workspace rooted at `root` (including `README.md` for
/// the `metric-docs-sync` rule).
pub fn run_workspace(root: &Path) -> io::Result<Report> {
    run_workspace_with(root, AnalyzeOptions::default())
}

/// [`run_workspace`] with explicit engine options (`--legacy-flow`).
/// Times the full sweep so the report carries its own perf budget.
pub fn run_workspace_with(root: &Path, opts: AnalyzeOptions) -> io::Result<Report> {
    let start = Instant::now();
    let files = collect_files(root)?;
    let mut sources = Vec::with_capacity(files.len());
    for rel in &files {
        let source = fs::read_to_string(root.join(rel))?;
        sources.push(SourceFile {
            path: rel
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/"),
            source,
        });
    }
    let readme = fs::read_to_string(root.join("README.md")).ok();
    let analysis = rules::analyze_with(&sources, readme.as_deref(), opts);
    Ok(Report {
        files_scanned: sources.len(),
        violations: analysis.violations,
        graphs: analysis.graphs,
        wall_ms: Some(start.elapsed().as_millis() as u64),
    })
}

/// Lint an in-memory set of sources — the entry point fixture tests use.
pub fn run_sources(sources: &[SourceFile], readme: Option<&str>) -> Report {
    run_sources_with(sources, readme, AnalyzeOptions::default())
}

/// [`run_sources`] with explicit engine options.
pub fn run_sources_with(
    sources: &[SourceFile],
    readme: Option<&str>,
    opts: AnalyzeOptions,
) -> Report {
    let analysis = rules::analyze_with(sources, readme, opts);
    Report {
        files_scanned: sources.len(),
        violations: analysis.violations,
        graphs: analysis.graphs,
        wall_ms: None,
    }
}
