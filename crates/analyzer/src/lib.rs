//! `mdbs-lint` — static analysis for the mdbs workspace.
//!
//! The paper's Section 3 argument — a multidatabase scheduler must be
//! *conservative* because aborting a global transaction is prohibitively
//! expensive — translates into code discipline: the GTM2 pump, the
//! scheme `cond`/`act` implementations and the site servers must never
//! panic or silently drop protocol messages. PR 1 converted panics into
//! [`SchemeEffect::ProtocolViolation`] effects; this crate is the gate
//! that keeps it that way.
//!
//! The engine is split into a pure per-file front-end
//! ([`rules::frontend`]: lex → token trees → facts) whose output is
//! content-addressed by a file fingerprint and persisted to an on-disk
//! fact database ([`cache`]), and a deterministic aggregation stage
//! ([`rules::aggregate`]) that replays allow directives, metric
//! registrations and the interprocedural graph pass over the artifacts.
//! Unchanged files load their facts instead of re-analyzing; dirty files
//! fan out across a scoped-thread worker pool.
//!
//! See [`rules`] for the eleven invariants, [`report`] for the JSON and
//! SARIF schemas, [`parser`]/[`facts`]/[`cfg`]/[`dataflow`]/[`graph`]
//! for the analysis stages, and the repository README's "Static
//! analysis" section for the allow-comment escape hatch.
//!
//! Run it as a tool:
//!
//! ```text
//! cargo run -p mdbs-analyzer -- --workspace
//! ```
//!
//! [`SchemeEffect::ProtocolViolation`]: ../mdbs_core/scheme/enum.SchemeEffect.html

pub mod cache;
pub mod cfg;
pub mod dataflow;
pub mod facts;
pub mod graph;
pub mod jsonv;
pub mod lexer;
pub mod parser;
pub mod report;
pub mod rules;

use report::{CacheStats, Report};
use rules::{AnalyzeOptions, FileArtifacts, SourceFile};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Instant, UNIX_EPOCH};

/// Directory names never scanned: vendored deps, build output, test code
/// (exempt from every rule) and the analyzer's own deliberately-violating
/// fixtures.
const SKIP_DIRS: [&str; 7] = [
    "vendor", "target", ".git", "tests", "benches", "fixtures", "results",
];

/// Options for a workspace run — engine flags plus the incremental and
/// parallel knobs the CLI exposes.
#[derive(Clone, Debug, Default)]
pub struct RunOptions {
    /// Engine options (`--legacy-flow`).
    pub analyze: AnalyzeOptions,
    /// Fact-database directory (`--cache-dir`); `None` runs cold.
    pub cache_dir: Option<PathBuf>,
    /// Front-end worker threads (`--jobs`); 0 means one per core.
    pub jobs: usize,
}

/// Walk upward from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Collect every lintable `.rs` file under `root` as workspace-relative
/// `/`-joined paths, sorted bytewise.
///
/// Sorting the *string* form (not `PathBuf`, whose ordering is
/// component-wise over platform `OsStr`) pins one global file order on
/// every filesystem and OS. That order is load-bearing: metric
/// first-registration wins, graph node numbering, lock-edge first-sight
/// dedup and the fact-database layout all follow it, so JSON/SARIF/DOT
/// goldens and cache fingerprints stay stable across machines and
/// worker counts.
pub fn collect_files(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    walk(root, root, &mut out)?;
    out.sort();
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // `target/` and `vendor/` are explicitly skipped (build
            // output and vendored deps are not ours to lint), along with
            // the rest of SKIP_DIRS and any dot-directory.
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(
                    rel.components()
                        .map(|c| c.as_os_str().to_string_lossy())
                        .collect::<Vec<_>>()
                        .join("/"),
                );
            }
        }
    }
    Ok(())
}

/// Lint the whole workspace rooted at `root` (including `README.md` for
/// the `metric-docs-sync` rule).
pub fn run_workspace(root: &Path) -> io::Result<Report> {
    run_workspace_with(root, RunOptions::default())
}

/// [`run_workspace`] with explicit options. Times the full sweep so the
/// report carries its own perf budget.
///
/// With `cache_dir` set, front-end artifacts are looked up by content
/// fingerprint (hits skip lex/parse/facts entirely; files whose size
/// and mtime match the stored stat record are not even read) and the
/// interprocedural pass replays per-function results whose dependency
/// digest is unchanged; the refreshed database is written back after
/// analysis. Persisting is best-effort — an unwritable cache directory
/// degrades to a cold run with a note on stderr, never a failed lint.
pub fn run_workspace_with(root: &Path, opts: RunOptions) -> io::Result<Report> {
    let start = Instant::now();
    let trace = std::env::var_os("MDBS_LINT_TRACE").is_some();
    let mut mark = Instant::now();
    let mut lap = |label: &str, trace: bool| {
        if trace {
            eprintln!("trace: {label}: {:?}", mark.elapsed());
        }
        mark = Instant::now();
    };
    let rels = collect_files(root)?;
    let files_scanned = rels.len();
    let readme = fs::read_to_string(root.join("README.md")).ok();
    let jobs = effective_jobs(opts.jobs);
    lap("read", trace);

    let (artifacts, blobs, manifest, pruned, stat_fresh, mut stats, mut gctx) = match &opts
        .cache_dir
    {
        None => {
            let mut sources = Vec::with_capacity(rels.len());
            for rel in &rels {
                let source = fs::read_to_string(root.join(rel))?;
                sources.push(SourceFile {
                    path: rel.clone(),
                    source,
                });
            }
            (
                frontend_all(&sources, jobs),
                Vec::new(),
                cache::Manifest::new(),
                false,
                false,
                None,
                None,
            )
        }
        Some(dir) => {
            let mut db = cache::load(dir);
            lap("load", trace);
            let mut stats = CacheStats::default();
            let mut slots: Vec<Option<FileArtifacts>> = Vec::with_capacity(rels.len());
            let mut blobs: Vec<Option<Vec<u8>>> = Vec::with_capacity(rels.len());
            let mut manifest = cache::Manifest::new();
            let mut pending: Vec<(usize, SourceFile)> = Vec::new();
            let mut stat_fresh = true;
            for (idx, rel) in rels.iter().enumerate() {
                let full = root.join(rel);
                let meta = fs::metadata(&full)?;
                let size = meta.len();
                let mtime = mtime_ns(&meta);
                // Stat fast path: an unchanged size + mtime vouches for
                // the stored fingerprint and the file is not even read.
                // The content fingerprint below stays the authority
                // whenever the stat differs (a `touch` re-reads and
                // still hits on content).
                if let Some(m) = db.manifest.get(rel) {
                    if m.size == size && m.mtime_ns == mtime && mtime != 0 {
                        if let Some((a, blob)) = db.files.remove(rel) {
                            if a.fingerprint == m.fingerprint {
                                stats.file_hits += 1;
                                manifest.insert(rel.clone(), *m);
                                slots.push(Some(a));
                                blobs.push(Some(blob));
                                continue;
                            }
                            db.files.insert(rel.clone(), (a, blob));
                        }
                    }
                }
                stat_fresh = false;
                let source = fs::read_to_string(&full)?;
                let fp = cache::fingerprint(&source);
                manifest.insert(
                    rel.clone(),
                    cache::StatEntry {
                        size,
                        mtime_ns: mtime,
                        fingerprint: fp,
                    },
                );
                match db.files.remove(rel) {
                    Some((a, blob)) if a.fingerprint == fp => {
                        stats.file_hits += 1;
                        slots.push(Some(a));
                        blobs.push(Some(blob));
                    }
                    _ => {
                        stats.file_misses += 1;
                        slots.push(None);
                        blobs.push(None);
                        pending.push((
                            idx,
                            SourceFile {
                                path: rel.clone(),
                                source,
                            },
                        ));
                    }
                }
            }
            // Whatever is left in the loaded map belongs to files no
            // longer in the workspace — the rewrite prunes them.
            let pruned = !db.files.is_empty();
            let work: Vec<(usize, &SourceFile)> = pending.iter().map(|(i, s)| (*i, s)).collect();
            for (idx, art) in frontend_indexed(&work, jobs) {
                slots[idx] = Some(art);
            }
            let artifacts: Vec<FileArtifacts> =
                slots.into_iter().map(|a| a.expect("slot filled")).collect();
            let fps = artifacts
                .iter()
                .map(|a| (a.path.clone(), a.fingerprint))
                .collect();
            (
                artifacts,
                blobs,
                manifest,
                pruned,
                stat_fresh,
                Some(stats),
                Some(graph::GraphCacheCtx::new(db.graph, fps)),
            )
        }
    };

    lap("frontend", trace);
    let analysis = rules::aggregate(&artifacts, readme.as_deref(), opts.analyze, gctx.as_mut());
    lap("aggregate", trace);
    if let Some(g) = &gctx {
        if let Some(s) = stats.as_mut() {
            s.fn_hits = g.hits;
            s.fn_misses = g.misses;
        }
    }
    if let (Some(dir), Some(g)) = (&opts.cache_dir, &gctx) {
        // A fully-warm run (every file vouched for by its stat record,
        // every function replayed, nothing pruned) leaves the database
        // byte-identical — skip the rewrite. A run that merely had to
        // *read* a file (stat changed, content did not) still rewrites,
        // refreshing the manifest so the next run takes the fast path.
        let unchanged = stat_fresh
            && stats.as_ref().is_some_and(|s| s.file_misses == 0)
            && !pruned
            && g.misses == 0
            && g.old.is_empty();
        if !unchanged {
            let blob_refs: Vec<Option<&[u8]>> = blobs.iter().map(|b| b.as_deref()).collect();
            if let Err(e) = cache::save(dir, &artifacts, &blob_refs, &g.fresh, &manifest) {
                eprintln!(
                    "mdbs-lint: warning: could not persist fact database to {}: {e}",
                    dir.display()
                );
            }
        }
    }
    lap("save", trace);
    Ok(Report {
        files_scanned,
        violations: analysis.violations,
        graphs: analysis.graphs,
        wall_ms: Some(start.elapsed().as_millis() as u64),
        cache: stats,
        baseline: None,
    })
}

/// Lint an in-memory set of sources — the entry point fixture tests use.
pub fn run_sources(sources: &[SourceFile], readme: Option<&str>) -> Report {
    run_sources_with(sources, readme, AnalyzeOptions::default())
}

/// [`run_sources`] with explicit engine options.
pub fn run_sources_with(
    sources: &[SourceFile],
    readme: Option<&str>,
    opts: AnalyzeOptions,
) -> Report {
    let analysis = rules::analyze_with(sources, readme, opts);
    Report {
        files_scanned: sources.len(),
        violations: analysis.violations,
        graphs: analysis.graphs,
        wall_ms: None,
        cache: None,
        baseline: None,
    }
}

/// Modification time as nanoseconds since the Unix epoch; 0 — which
/// disables the stat fast path for that file — when the platform or
/// filesystem cannot provide one.
fn mtime_ns(meta: &fs::Metadata) -> u64 {
    meta.modified()
        .ok()
        .and_then(|t| t.duration_since(UNIX_EPOCH).ok())
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
}

/// Resolve the requested worker count: 0 means one per core.
fn effective_jobs(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run the front-end over every source, in order.
fn frontend_all(sources: &[SourceFile], jobs: usize) -> Vec<FileArtifacts> {
    let indexed: Vec<(usize, &SourceFile)> = sources.iter().enumerate().collect();
    let mut arts = frontend_indexed(&indexed, jobs);
    arts.sort_by_key(|(i, _)| *i);
    arts.into_iter().map(|(_, a)| a).collect()
}

/// Fan the pure per-file front-end out over a scoped-thread pool.
///
/// Work-stealing by atomic index: each worker claims the next file until
/// the list is drained. Results carry their original index so callers
/// can restore the deterministic workspace order regardless of which
/// worker finished first — the artifacts are identical to a serial run
/// because [`rules::frontend`] reads nothing but the file itself.
fn frontend_indexed(work: &[(usize, &SourceFile)], jobs: usize) -> Vec<(usize, FileArtifacts)> {
    if work.is_empty() {
        return Vec::new();
    }
    let jobs = jobs.min(work.len()).max(1);
    if jobs == 1 {
        return work
            .iter()
            .map(|(i, src)| (*i, rules::frontend(src)))
            .collect();
    }
    let next = AtomicUsize::new(0);
    std::thread::scope(|sc| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                sc.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let k = next.fetch_add(1, Ordering::Relaxed);
                        let Some((idx, src)) = work.get(k) else { break };
                        out.push((*idx, rules::frontend(src)));
                    }
                    out
                })
            })
            .collect();
        let mut all = Vec::with_capacity(work.len());
        for h in handles {
            match h.join() {
                Ok(batch) => all.extend(batch),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
        all
    })
}
