//! The on-disk fact database behind `--cache-dir`.
//!
//! The per-file front end (lex → token trees → CFG facts in
//! [`crate::rules::frontend`]) is a pure function of one file's path and
//! contents, so its output is content-addressed: a 64-bit FNV-1a
//! fingerprint of the source selects a cached [`FileArtifacts`] and an
//! unchanged file never gets re-lexed. The interprocedural stage caches
//! per-function results keyed by a dependency digest computed in
//! [`crate::graph`] — the digest folds in everything the function's
//! analysis actually reads (its file's fingerprint, its resolved callees'
//! summaries), so a cache hit replays byte-identical results and a
//! changed function dirties exactly the callers whose observed summaries
//! change.
//!
//! Layout under the cache dir, versioned by [`schema_hash`]:
//!
//! ```text
//! <cache-dir>/<schema-hash-hex>/facts.bin     per-file front-end artifacts
//! <cache-dir>/<schema-hash-hex>/graph.bin     per-function graph results
//! <cache-dir>/<schema-hash-hex>/manifest.bin  per-file stat fast-path records
//! ```
//!
//! `facts.bin` holds one length-prefixed blob per file. The loader keeps
//! each raw blob alongside its decoded artifact, so saving after a warm
//! run re-encodes only the files that actually changed — unchanged blobs
//! are copied back byte-for-byte.
//!
//! The schema hash is an FNV over the analyzer's *own sources* (every
//! stage that feeds the serialized representation), so any change to the
//! analyzer invalidates the database without anyone remembering to bump
//! a version — the CI cache key uses the same hash. Serialization is
//! hand-rolled (length-prefixed little-endian binary) like the rest of
//! the crate: the analyzer stays dependency-free. Every decode path
//! returns `Option`; a truncated or corrupt database degrades to a cold
//! run, never a panic.

use crate::facts::{
    Base, CallTarget, ChannelCreate, FieldAlias, FileFacts, FlowEvent, FnFact, Step, StructFact,
};
use crate::graph::FnGraphResult;
use crate::graph::LockEdge;
use crate::parser::ParseError;
use crate::rules::{rule_by_name, AllowSpan, FileArtifacts, MetricReg, Violation};
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// FNV-1a offset basis / prime (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a hasher — shared by content fingerprints, the
/// schema hash and the per-function dependency digests.
#[derive(Clone, Copy)]
pub struct Fnv(u64);

impl Fnv {
    /// Fresh hasher at the offset basis.
    pub fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    /// Fold in raw bytes.
    pub fn bytes(&mut self, b: &[u8]) {
        for &x in b {
            self.0 ^= x as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Fold in a length-delimited string (the length prefix keeps
    /// `"ab"+"c"` and `"a"+"bc"` distinct).
    pub fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }

    /// Fold in a u64.
    pub fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    /// Fold in a u32.
    pub fn u32(&mut self, v: u32) {
        self.bytes(&v.to_le_bytes());
    }

    /// Fold in a byte tag.
    pub fn u8(&mut self, v: u8) {
        self.bytes(&[v]);
    }

    /// Fold in a bool as a tag byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// The accumulated hash.
    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for Fnv {
    fn default() -> Self {
        Self::new()
    }
}

/// Content fingerprint of one source file.
///
/// A word-at-a-time FNV-1a variant: eight bytes are folded per multiply
/// (with the byte-wise tail and a final length fold), which is ~8×
/// faster than the canonical byte loop on the warm path, where every
/// file is fingerprinted every run. Not interchangeable with
/// [`Fnv::bytes`] — but fingerprints never leave the fact database, and
/// [`schema_hash`] covers this module, so changing the function
/// invalidates old databases automatically.
pub fn fingerprint(source: &str) -> u64 {
    let b = source.as_bytes();
    let mut h = FNV_OFFSET;
    let mut chunks = b.chunks_exact(8);
    for c in &mut chunks {
        h ^= u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
        h = h.wrapping_mul(FNV_PRIME);
    }
    for &x in chunks.remainder() {
        h ^= x as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h ^= b.len() as u64;
    h.wrapping_mul(FNV_PRIME)
}

/// The cache-format version of the analyzer: an FNV over its own stage
/// sources. Editing any analysis stage (or this module) produces a new
/// hash, so a stale database can never masquerade as current — CI keys
/// its persisted cache on the same value. Memoized: hashing ~350 KB of
/// embedded source costs more than a warm file decode, and load, save
/// and header checks each need the value.
pub fn schema_hash() -> u64 {
    static HASH: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
    *HASH.get_or_init(|| {
        let mut h = Fnv::new();
        h.str("mdbs-lint-fact-db");
        h.str(crate::report::VERSION);
        for src in [
            include_str!("lexer.rs"),
            include_str!("parser.rs"),
            include_str!("facts.rs"),
            include_str!("cfg.rs"),
            include_str!("dataflow.rs"),
            include_str!("graph.rs"),
            include_str!("rules.rs"),
            include_str!("cache.rs"),
        ] {
            h.str(src);
        }
        h.finish()
    })
}

/// Magic prefixes so a file from another tool (or a half-written one)
/// fails fast.
const FACTS_MAGIC: &[u8; 8] = b"MDBSFCT1";
const GRAPH_MAGIC: &[u8; 8] = b"MDBSGRF1";
const MANIFEST_MAGIC: &[u8; 8] = b"MDBSMAN1";

/// Per-function graph cache keyed by the dependency digest alone. The
/// digest already folds in the function's identity (defining file path,
/// qualified name, ordinal) along with everything its analysis reads,
/// so the key needs no strings — lookups and persistence stay on u64s.
/// A cross-function digest collision would replay the wrong result, but
/// at ~10³ functions per workspace the probability is ~2⁻⁴⁵, and the CI
/// cold-vs-warm byte diff plus the edit-sequence proptest would surface
/// it.
pub type GraphCacheMap = BTreeMap<u64, FnGraphResult>;

/// One file's stat record in the manifest: if size and mtime both still
/// match, the file is taken as unchanged without reading it — the
/// make/ninja/cargo fast path. The content fingerprint stays the
/// authority whenever the stat differs (a `touch` re-reads but still
/// hits), and `--no-cache` is the oracle that bypasses both.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StatEntry {
    /// File size in bytes.
    pub size: u64,
    /// Modification time, nanoseconds since the Unix epoch (0 when the
    /// filesystem cannot say — which simply disables the fast path).
    pub mtime_ns: u64,
    /// Content fingerprint the stat vouches for.
    pub fingerprint: u64,
}

/// Workspace-relative path -> stat record.
pub type Manifest = BTreeMap<String, StatEntry>;

/// Everything loaded from one cache directory.
#[derive(Default)]
pub struct FactDb {
    /// Front-end artifacts keyed by workspace-relative path, each with
    /// the raw blob it was decoded from (reused verbatim on save); the
    /// stored fingerprint decides whether an entry is usable.
    pub files: BTreeMap<String, (FileArtifacts, Vec<u8>)>,
    /// Per-function interprocedural results.
    pub graph: GraphCacheMap,
    /// Stat fast-path records.
    pub manifest: Manifest,
}

/// The versioned subdirectory for the current schema.
fn schema_dir(dir: &Path) -> PathBuf {
    dir.join(format!("{:016x}", schema_hash()))
}

/// Load the database for the current schema; anything missing, stale or
/// corrupt degrades to an empty (cold) database.
pub fn load(dir: &Path) -> FactDb {
    let root = schema_dir(dir);
    let files = fs::read(root.join("facts.bin"))
        .ok()
        .and_then(|b| decode_facts_db(&b))
        .unwrap_or_default();
    let graph = fs::read(root.join("graph.bin"))
        .ok()
        .and_then(|b| decode_graph_db(&b))
        .unwrap_or_default();
    let manifest = fs::read(root.join("manifest.bin"))
        .ok()
        .and_then(|b| decode_manifest(&b))
        .unwrap_or_default();
    FactDb {
        files,
        graph,
        manifest,
    }
}

/// Persist the database: full rewrite (entries for files or functions no
/// longer present are pruned by construction), written via a temp file +
/// rename so a crashed run leaves the previous database intact.
///
/// `blobs` parallels `files`: a `Some` entry is the file's still-valid
/// encoded blob from [`load`], copied back without re-encoding; `None`
/// entries (changed files) are encoded fresh.
pub fn save(
    dir: &Path,
    files: &[FileArtifacts],
    blobs: &[Option<&[u8]>],
    graph: &GraphCacheMap,
    manifest: &Manifest,
) -> io::Result<()> {
    let root = schema_dir(dir);
    fs::create_dir_all(&root)?;
    let mut w = W::new(FACTS_MAGIC);
    w.u32(files.len() as u32);
    for (i, a) in files.iter().enumerate() {
        match blobs.get(i).copied().flatten() {
            Some(blob) => {
                w.u32(blob.len() as u32);
                w.buf.extend_from_slice(blob);
            }
            None => {
                let blob = encode_artifact_blob(a);
                w.u32(blob.len() as u32);
                w.buf.extend_from_slice(&blob);
            }
        }
    }
    write_atomic(&root.join("facts.bin"), &w.buf)?;
    let mut w = W::new(GRAPH_MAGIC);
    w.u32(graph.len() as u32);
    for (digest, r) in graph {
        w.u64(*digest);
        enc_fn_result(&mut w, r);
    }
    write_atomic(&root.join("graph.bin"), &w.buf)?;
    let mut w = W::new(MANIFEST_MAGIC);
    w.u32(manifest.len() as u32);
    for (path, e) in manifest {
        w.str(path);
        w.u64(e.size);
        w.u64(e.mtime_ns);
        w.u64(e.fingerprint);
    }
    write_atomic(&root.join("manifest.bin"), &w.buf)
}

fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, bytes)?;
    fs::rename(&tmp, path)
}

/// Encode one artifact as a standalone blob (no header).
fn encode_artifact_blob(a: &FileArtifacts) -> Vec<u8> {
    let mut w = W {
        buf: Vec::with_capacity(4096),
    };
    enc_artifacts(&mut w, a);
    w.buf
}

fn decode_facts_db(bytes: &[u8]) -> Option<BTreeMap<String, (FileArtifacts, Vec<u8>)>> {
    let mut r = R::new(bytes, FACTS_MAGIC)?;
    let n = r.u32()? as usize;
    let mut out = BTreeMap::new();
    for _ in 0..n {
        let len = r.u32()? as usize;
        let blob = r.take(len)?;
        let mut br = R { b: blob, i: 0 };
        let a = dec_artifacts(&mut br)?;
        if br.i != blob.len() {
            return None; // trailing garbage inside a blob
        }
        out.insert(a.path.clone(), (a, blob.to_vec()));
    }
    Some(out)
}

fn decode_manifest(bytes: &[u8]) -> Option<Manifest> {
    let mut r = R::new(bytes, MANIFEST_MAGIC)?;
    let n = r.u32()? as usize;
    let mut out = Manifest::new();
    for _ in 0..n {
        let path = r.str()?;
        let e = StatEntry {
            size: r.u64()?,
            mtime_ns: r.u64()?,
            fingerprint: r.u64()?,
        };
        out.insert(path, e);
    }
    Some(out)
}

fn decode_graph_db(bytes: &[u8]) -> Option<GraphCacheMap> {
    let mut r = R::new(bytes, GRAPH_MAGIC)?;
    let n = r.u32()? as usize;
    let mut out = GraphCacheMap::new();
    for _ in 0..n {
        let digest = r.u64()?;
        let res = dec_fn_result(&mut r)?;
        out.insert(digest, res);
    }
    Some(out)
}

// ---------------------------------------------------------------------------
// Binary writer / reader
// ---------------------------------------------------------------------------

struct W {
    buf: Vec<u8>,
}

impl W {
    fn new(magic: &[u8; 8]) -> Self {
        let mut buf = Vec::with_capacity(1 << 16);
        buf.extend_from_slice(magic);
        buf.extend_from_slice(&schema_hash().to_le_bytes());
        W { buf }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn opt_str(&mut self, s: Option<&str>) {
        match s {
            Some(s) => {
                self.u8(1);
                self.str(s);
            }
            None => self.u8(0),
        }
    }
}

struct R<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> R<'a> {
    fn new(bytes: &'a [u8], magic: &[u8; 8]) -> Option<Self> {
        let mut r = R { b: bytes, i: 0 };
        if r.take(8)? != magic {
            return None;
        }
        if r.u64()? != schema_hash() {
            return None;
        }
        Some(r)
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.i.checked_add(n)?;
        if end > self.b.len() {
            return None;
        }
        let s = &self.b[self.i..end];
        self.i = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn bool(&mut self) -> Option<bool> {
        match self.u8()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn str(&mut self) -> Option<String> {
        let n = self.u32()? as usize;
        Some(std::str::from_utf8(self.take(n)?).ok()?.to_owned())
    }

    /// Capacity hint for a length-prefixed sequence: trust the count
    /// only up to the bytes actually left (every element is at least one
    /// byte), so a corrupt count can never trigger a huge allocation.
    fn cap(&self, n: u32) -> usize {
        (n as usize).min(self.b.len() - self.i)
    }

    fn opt_str(&mut self) -> Option<Option<String>> {
        match self.u8()? {
            0 => Some(None),
            1 => Some(Some(self.str()?)),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Encoders / decoders, one pair per cached type
// ---------------------------------------------------------------------------

fn enc_violation(w: &mut W, v: &Violation) {
    w.str(v.rule);
    w.str(&v.file);
    w.u32(v.line);
    w.u32(v.col);
    w.str(&v.message);
}

fn dec_violation(r: &mut R) -> Option<Violation> {
    let rule = rule_by_name(&r.str()?)?;
    Some(Violation {
        rule,
        file: r.str()?,
        line: r.u32()?,
        col: r.u32()?,
        message: r.str()?,
    })
}

fn enc_base(w: &mut W, b: &Base) {
    match b {
        Base::SelfOnly => w.u8(0),
        Base::SelfField(f) => {
            w.u8(1);
            w.str(f);
        }
        Base::Local(n) => {
            w.u8(2);
            w.str(n);
        }
        Base::Complex => w.u8(3),
    }
}

fn dec_base(r: &mut R) -> Option<Base> {
    Some(match r.u8()? {
        0 => Base::SelfOnly,
        1 => Base::SelfField(r.str()?),
        2 => Base::Local(r.str()?),
        3 => Base::Complex,
        _ => return None,
    })
}

fn enc_target(w: &mut W, t: &CallTarget) {
    match t {
        CallTarget::Method { name, base } => {
            w.u8(0);
            w.str(name);
            enc_base(w, base);
        }
        CallTarget::Qualified { ty, name } => {
            w.u8(1);
            w.str(ty);
            w.str(name);
        }
        CallTarget::Bare { name } => {
            w.u8(2);
            w.str(name);
        }
    }
}

fn dec_target(r: &mut R) -> Option<CallTarget> {
    Some(match r.u8()? {
        0 => CallTarget::Method {
            name: r.str()?,
            base: dec_base(r)?,
        },
        1 => CallTarget::Qualified {
            ty: r.str()?,
            name: r.str()?,
        },
        2 => CallTarget::Bare { name: r.str()? },
        _ => return None,
    })
}

fn enc_step(w: &mut W, s: &Step) {
    match s {
        Step::Acquire {
            lock,
            binding,
            line,
            col,
        } => {
            w.u8(0);
            w.str(lock);
            w.str(binding);
            w.u32(*line);
            w.u32(*col);
        }
        Step::Release { binding } => {
            w.u8(1);
            w.str(binding);
        }
        Step::Send {
            base,
            method,
            line,
            col,
        } => {
            w.u8(2);
            enc_base(w, base);
            w.str(method);
            w.u32(*line);
            w.u32(*col);
        }
        Step::Recv {
            base,
            method,
            bounded,
            line,
            col,
        } => {
            w.u8(3);
            enc_base(w, base);
            w.str(method);
            w.bool(*bounded);
            w.u32(*line);
            w.u32(*col);
        }
        Step::Blocking { what, line, col } => {
            w.u8(4);
            w.str(what);
            w.u32(*line);
            w.u32(*col);
        }
        Step::Call { target, line, col } => {
            w.u8(5);
            enc_target(w, target);
            w.u32(*line);
            w.u32(*col);
        }
        Step::Suspend { what, line, col } => {
            w.u8(6);
            w.str(what);
            w.u32(*line);
            w.u32(*col);
        }
    }
}

fn dec_step(r: &mut R) -> Option<Step> {
    Some(match r.u8()? {
        0 => Step::Acquire {
            lock: r.str()?,
            binding: r.str()?,
            line: r.u32()?,
            col: r.u32()?,
        },
        1 => Step::Release { binding: r.str()? },
        2 => Step::Send {
            base: dec_base(r)?,
            method: r.str()?,
            line: r.u32()?,
            col: r.u32()?,
        },
        3 => Step::Recv {
            base: dec_base(r)?,
            method: r.str()?,
            bounded: r.bool()?,
            line: r.u32()?,
            col: r.u32()?,
        },
        4 => Step::Blocking {
            what: r.str()?,
            line: r.u32()?,
            col: r.u32()?,
        },
        5 => Step::Call {
            target: dec_target(r)?,
            line: r.u32()?,
            col: r.u32()?,
        },
        6 => Step::Suspend {
            what: r.str()?,
            line: r.u32()?,
            col: r.u32()?,
        },
        _ => return None,
    })
}

fn enc_event(w: &mut W, e: &FlowEvent) {
    match e {
        FlowEvent::Step(i) => {
            w.u8(0);
            w.u32(*i as u32);
        }
        FlowEvent::BranchOpen => w.u8(1),
        FlowEvent::ArmOpen => w.u8(2),
        FlowEvent::ArmClose => w.u8(3),
        FlowEvent::BranchClose { has_fallthrough } => {
            w.u8(4);
            w.bool(*has_fallthrough);
        }
        FlowEvent::LoopOpen { conditional } => {
            w.u8(5);
            w.bool(*conditional);
        }
        FlowEvent::LoopBody => w.u8(6),
        FlowEvent::LoopClose => w.u8(7),
        FlowEvent::Return => w.u8(8),
        FlowEvent::Try => w.u8(9),
        FlowEvent::Break => w.u8(10),
        FlowEvent::Continue => w.u8(11),
    }
}

fn dec_event(r: &mut R) -> Option<FlowEvent> {
    Some(match r.u8()? {
        0 => FlowEvent::Step(r.u32()? as usize),
        1 => FlowEvent::BranchOpen,
        2 => FlowEvent::ArmOpen,
        3 => FlowEvent::ArmClose,
        4 => FlowEvent::BranchClose {
            has_fallthrough: r.bool()?,
        },
        5 => FlowEvent::LoopOpen {
            conditional: r.bool()?,
        },
        6 => FlowEvent::LoopBody,
        7 => FlowEvent::LoopClose,
        8 => FlowEvent::Return,
        9 => FlowEvent::Try,
        10 => FlowEvent::Break,
        11 => FlowEvent::Continue,
        _ => return None,
    })
}

fn enc_fn_fact(w: &mut W, f: &FnFact) {
    w.str(&f.name);
    w.opt_str(f.self_type.as_deref());
    w.opt_str(f.trait_name.as_deref());
    w.str(&f.file);
    w.u32(f.line);
    w.u32(f.col);
    w.u32(f.steps.len() as u32);
    for s in &f.steps {
        enc_step(w, s);
    }
    w.u32(f.events.len() as u32);
    for e in &f.events {
        enc_event(w, e);
    }
    w.u32(f.creates.len() as u32);
    for c in &f.creates {
        w.str(&c.tx);
        w.str(&c.rx);
        w.u32(c.line);
    }
    w.u32(f.local_aliases.len() as u32);
    for (a, s) in &f.local_aliases {
        w.str(a);
        w.str(s);
    }
    w.u32(f.field_aliases.len() as u32);
    for fa in &f.field_aliases {
        w.str(&fa.struct_name);
        w.str(&fa.field);
        w.str(&fa.source);
    }
}

fn dec_fn_fact(r: &mut R) -> Option<FnFact> {
    let name = r.str()?;
    let self_type = r.opt_str()?;
    let trait_name = r.opt_str()?;
    let file = r.str()?;
    let line = r.u32()?;
    let col = r.u32()?;
    let n = r.u32()?;
    let mut steps = Vec::with_capacity(r.cap(n));
    for _ in 0..n {
        steps.push(dec_step(r)?);
    }
    let n = r.u32()?;
    let mut events = Vec::with_capacity(r.cap(n));
    for _ in 0..n {
        events.push(dec_event(r)?);
    }
    let n = r.u32()?;
    let mut creates = Vec::with_capacity(r.cap(n));
    for _ in 0..n {
        creates.push(ChannelCreate {
            tx: r.str()?,
            rx: r.str()?,
            line: r.u32()?,
        });
    }
    let n = r.u32()?;
    let mut local_aliases = Vec::with_capacity(r.cap(n));
    for _ in 0..n {
        local_aliases.push((r.str()?, r.str()?));
    }
    let n = r.u32()?;
    let mut field_aliases = Vec::with_capacity(r.cap(n));
    for _ in 0..n {
        field_aliases.push(FieldAlias {
            struct_name: r.str()?,
            field: r.str()?,
            source: r.str()?,
        });
    }
    Some(FnFact {
        name,
        self_type,
        trait_name,
        file,
        line,
        col,
        steps,
        events,
        creates,
        local_aliases,
        field_aliases,
    })
}

fn enc_file_facts(w: &mut W, f: &FileFacts) {
    w.str(&f.path);
    w.u32(f.fns.len() as u32);
    for fnf in &f.fns {
        enc_fn_fact(w, fnf);
    }
    w.u32(f.structs.len() as u32);
    for s in &f.structs {
        w.str(&s.name);
        w.u32(s.fields.len() as u32);
        for (name, idents) in &s.fields {
            w.str(name);
            w.u32(idents.len() as u32);
            for id in idents {
                w.str(id);
            }
        }
    }
    w.u32(f.parse_errors.len() as u32);
    for e in &f.parse_errors {
        w.u32(e.line);
        w.u32(e.col);
        w.str(&e.message);
    }
}

fn dec_file_facts(r: &mut R) -> Option<FileFacts> {
    let path = r.str()?;
    let n = r.u32()?;
    let mut fns = Vec::with_capacity(r.cap(n));
    for _ in 0..n {
        fns.push(dec_fn_fact(r)?);
    }
    let n = r.u32()?;
    let mut structs = Vec::with_capacity(r.cap(n));
    for _ in 0..n {
        let name = r.str()?;
        let n = r.u32()?;
        let mut fields = Vec::with_capacity(r.cap(n));
        for _ in 0..n {
            let fname = r.str()?;
            let n = r.u32()?;
            let mut idents = Vec::with_capacity(r.cap(n));
            for _ in 0..n {
                idents.push(r.str()?);
            }
            fields.push((fname, idents));
        }
        structs.push(StructFact { name, fields });
    }
    let n = r.u32()?;
    let mut parse_errors = Vec::with_capacity(r.cap(n));
    for _ in 0..n {
        parse_errors.push(ParseError {
            line: r.u32()?,
            col: r.u32()?,
            message: r.str()?,
        });
    }
    Some(FileFacts {
        path,
        fns,
        structs,
        parse_errors,
    })
}

fn enc_artifacts(w: &mut W, a: &FileArtifacts) {
    w.str(&a.path);
    w.u64(a.fingerprint);
    w.u32(a.raw.len() as u32);
    for v in &a.raw {
        enc_violation(w, v);
    }
    w.u32(a.allows.len() as u32);
    for s in &a.allows {
        w.str(&s.rule);
        w.u32(s.first);
        w.u32(s.last);
    }
    w.u32(a.metrics.len() as u32);
    for m in &a.metrics {
        w.str(&m.name);
        w.str(&m.kind);
        w.u32(m.line);
        w.u32(m.col);
    }
    enc_file_facts(w, &a.facts);
}

fn dec_artifacts(r: &mut R) -> Option<FileArtifacts> {
    let path = r.str()?;
    let fingerprint = r.u64()?;
    let n = r.u32()?;
    let mut raw = Vec::with_capacity(r.cap(n));
    for _ in 0..n {
        raw.push(dec_violation(r)?);
    }
    let n = r.u32()?;
    let mut allows = Vec::with_capacity(r.cap(n));
    for _ in 0..n {
        allows.push(AllowSpan {
            rule: r.str()?,
            first: r.u32()?,
            last: r.u32()?,
        });
    }
    let n = r.u32()?;
    let mut metrics = Vec::with_capacity(r.cap(n));
    for _ in 0..n {
        metrics.push(MetricReg {
            name: r.str()?,
            kind: r.str()?,
            line: r.u32()?,
            col: r.u32()?,
        });
    }
    let facts = dec_file_facts(r)?;
    Some(FileArtifacts {
        path,
        fingerprint,
        raw,
        allows,
        metrics,
        facts,
    })
}

fn enc_fn_result(w: &mut W, r: &FnGraphResult) {
    w.u32(r.violations.len() as u32);
    for v in &r.violations {
        enc_violation(w, v);
    }
    w.u32(r.edges.len() as u32);
    for e in &r.edges {
        w.str(&e.from);
        w.str(&e.to);
        w.str(&e.file);
        w.u32(e.line);
        w.opt_str(e.via.as_deref());
    }
    w.u32(r.lost.len() as u32);
    for v in &r.lost {
        enc_violation(w, v);
    }
}

fn dec_fn_result(r: &mut R) -> Option<FnGraphResult> {
    let n = r.u32()?;
    let mut violations = Vec::with_capacity(r.cap(n));
    for _ in 0..n {
        violations.push(dec_violation(r)?);
    }
    let n = r.u32()?;
    let mut edges = Vec::with_capacity(r.cap(n));
    for _ in 0..n {
        edges.push(LockEdge {
            from: r.str()?,
            to: r.str()?,
            file: r.str()?,
            line: r.u32()?,
            via: r.opt_str()?,
        });
    }
    let n = r.u32()?;
    let mut lost = Vec::with_capacity(r.cap(n));
    for _ in 0..n {
        lost.push(dec_violation(r)?);
    }
    Some(FnGraphResult {
        violations,
        edges,
        lost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{frontend, SourceFile};

    const SAMPLE: &str = "\
pub struct Pool { inner: std::sync::Mutex<u64> }
impl Pool {
    pub fn publish(&self, tx: &std::sync::mpsc::Sender<u64>) {
        let guard = self.inner.lock().unwrap();
        drop(guard);
        tx.send(1).ok();
    }
}
pub fn wire() {
    let (tx, rx) = std::sync::mpsc::channel::<u64>();
    let alias = tx;
    let _n = rx.recv();
    alias.send(2).ok();
}
";

    #[test]
    fn artifact_roundtrip_is_lossless() {
        let art = frontend(&SourceFile {
            path: "crates/sim/src/sample.rs".to_string(),
            source: SAMPLE.to_string(),
        });
        let mut w = W::new(FACTS_MAGIC);
        enc_artifacts(&mut w, &art);
        let bytes = w.buf.clone();
        let mut r = R::new(&bytes, FACTS_MAGIC).expect("header");
        let back = dec_artifacts(&mut r).expect("roundtrip");
        assert_eq!(back.path, art.path);
        assert_eq!(back.fingerprint, art.fingerprint);
        assert_eq!(back.raw, art.raw);
        assert_eq!(back.facts.fns.len(), art.facts.fns.len());
        for (a, b) in art.facts.fns.iter().zip(&back.facts.fns) {
            assert_eq!(format!("{:?}", a.steps), format!("{:?}", b.steps));
            assert_eq!(a.events, b.events);
            assert_eq!(a.local_aliases, b.local_aliases);
        }
        assert_eq!(r.i, bytes.len(), "trailing bytes after decode");
    }

    #[test]
    fn truncated_or_foreign_bytes_decode_to_none() {
        let art = frontend(&SourceFile {
            path: "crates/sim/src/sample.rs".to_string(),
            source: SAMPLE.to_string(),
        });
        let blob = encode_artifact_blob(&art);
        let mut w = W::new(FACTS_MAGIC);
        w.u32(1);
        w.u32(blob.len() as u32);
        w.buf.extend_from_slice(&blob);
        let bytes = w.buf;
        // The well-formed database decodes...
        let db = decode_facts_db(&bytes).expect("well-formed db decodes");
        assert_eq!(db.len(), 1);
        assert_eq!(
            db["crates/sim/src/sample.rs"].0.fingerprint,
            art.fingerprint
        );
        assert_eq!(db["crates/sim/src/sample.rs"].1, blob);
        // ...and every mangling degrades to None, never a panic.
        for cut in [0, 7, 8, 15, 16, 20, bytes.len() - 1] {
            assert!(
                decode_facts_db(&bytes[..cut]).is_none(),
                "decode accepted a truncation at {cut}"
            );
        }
        let mut wrong = bytes.clone();
        wrong[0] ^= 0xFF; // magic
        assert!(decode_facts_db(&wrong).is_none());
        let mut stale = bytes.clone();
        stale[9] ^= 0xFF; // schema hash
        assert!(decode_facts_db(&stale).is_none());
    }

    #[test]
    fn save_load_roundtrip_and_blob_reuse() {
        let art = frontend(&SourceFile {
            path: "crates/sim/src/sample.rs".to_string(),
            source: SAMPLE.to_string(),
        });
        let stamp = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos())
            .unwrap_or(0);
        let dir = std::env::temp_dir().join(format!("mdbs-lint-cache-test-{stamp}"));
        let mut graph = GraphCacheMap::new();
        graph.insert(7, FnGraphResult::default());
        let manifest = Manifest::new();
        save(&dir, std::slice::from_ref(&art), &[None], &graph, &manifest).expect("save");
        let db = load(&dir);
        assert_eq!(db.files.len(), 1);
        let (back, blob) = &db.files[&art.path];
        assert_eq!(back.fingerprint, art.fingerprint);
        assert_eq!(db.graph.len(), 1);
        // Saving again with the loaded blob reused writes identical bytes.
        let first = fs::read(schema_dir(&dir).join("facts.bin")).expect("read facts.bin");
        save(
            &dir,
            std::slice::from_ref(back),
            &[Some(blob.as_slice())],
            &graph,
            &manifest,
        )
        .expect("resave");
        let second = fs::read(schema_dir(&dir).join("facts.bin")).expect("reread facts.bin");
        assert_eq!(first, second);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_distinguishes_contents() {
        assert_ne!(fingerprint("a"), fingerprint("b"));
        assert_eq!(fingerprint("same"), fingerprint("same"));
    }

    #[test]
    fn missing_cache_dir_loads_empty() {
        let db = load(Path::new("/nonexistent/mdbs-lint-cache"));
        assert!(db.files.is_empty());
        assert!(db.graph.is_empty());
    }
}
