//! Stage 2 of the graph analyzer: per-function fact extraction.
//!
//! Walks the token trees from [`crate::parser`] and produces, for every
//! `fn` item, an ordered list of [`Step`]s: lock acquisitions (with their
//! binding and release points — `drop(guard)` or scope end), channel
//! `send`/`recv` endpoints, other blocking calls (`join`, condvar `wait`,
//! `thread::sleep`), suspension points (`.await`, `block_timeout`,
//! `yield_now`), and call expressions. Alongside the linear `steps` it
//! emits a bracketed [`FlowEvent`] stream recording the control
//! structure (`if`/`match` arms, loops with back edges, `return`/`?`/
//! `break`/`continue`) that [`crate::cfg`] lowers into a per-function
//! control-flow graph. It also records channel creation sites
//! (`let (tx, rx) = bounded(..)`), simple aliases (`let a = b;`,
//! `container.push(tx)`, struct-literal fields) and struct field types —
//! everything [`crate::graph`] needs to assemble the call graph, the
//! lock-order graph and the channel topology.
//!
//! The model is deliberately approximate (names, not types), but sound
//! in the direction a lint wants: unknown receivers degrade to
//! name-based call resolution, and unresolvable channel endpoints are
//! reported as external rather than flagged.

use crate::lexer::TokKind;
use crate::parser::{Group, ParseError, Tree};

/// How a method call's receiver expression begins.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Base {
    /// `self.method(..)`.
    SelfOnly,
    /// `self.field.method(..)` (first field segment).
    SelfField(String),
    /// `name.method(..)` or `name[i].method(..)` — a local path.
    Local(String),
    /// Anything more complicated (`f().g.method(..)`, `(*p).method(..)`).
    Complex,
}

/// A resolved-enough call target.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CallTarget {
    /// `recv.name(..)`.
    Method { name: String, base: Base },
    /// `Type::name(..)` (`Self` is rewritten to the impl type).
    Qualified { ty: String, name: String },
    /// `name(..)`.
    Bare { name: String },
}

impl CallTarget {
    /// The called function's unqualified name.
    pub fn name(&self) -> &str {
        match self {
            CallTarget::Method { name, .. } => name,
            CallTarget::Qualified { name, .. } => name,
            CallTarget::Bare { name } => name,
        }
    }
}

/// One event inside a function body, in source order.
#[derive(Clone, Debug)]
pub enum Step {
    /// A `.lock(..)` call. `binding` is the guard's `let` binding when the
    /// guard outlives the statement; temporaries get a synthetic `#tN`
    /// binding released at statement end.
    Acquire {
        lock: String,
        binding: String,
        line: u32,
        col: u32,
    },
    /// The guard named `binding` dies (explicit `drop`, statement end for
    /// temporaries, or scope end).
    Release { binding: String },
    /// `.send(..)` / `.try_send(..)`.
    Send {
        base: Base,
        method: String,
        line: u32,
        col: u32,
    },
    /// `.recv(..)` family. `bounded` is true for `try_recv`/`recv_timeout`.
    Recv {
        base: Base,
        method: String,
        bounded: bool,
        line: u32,
        col: u32,
    },
    /// A non-channel blocking call: `.join(..)`, condvar `.wait(..)`,
    /// `thread::sleep(..)`, `thread::park(..)`.
    Blocking { what: String, line: u32, col: u32 },
    /// A call that may resolve to a workspace function.
    Call {
        target: CallTarget,
        line: u32,
        col: u32,
    },
    /// A point where the task yields to its executor: `.await`,
    /// `.block_timeout(..)`, `thread::yield_now()`. (`recv_timeout` and
    /// `park` keep their [`Step::Recv`]/[`Step::Blocking`] identity;
    /// [`is_suspension`] classifies all of them uniformly.)
    Suspend { what: String, line: u32, col: u32 },
}

/// True for steps after which the task may yield to the scheduler — the
/// suspension points the reactor-oriented rules reason about: `.await`,
/// `block_timeout`, `yield_now`, `recv_timeout`, `park`.
pub fn is_suspension(step: &Step) -> bool {
    match step {
        Step::Suspend { .. } => true,
        Step::Recv { method, .. } => method == "recv_timeout",
        Step::Blocking { what, .. } => what.contains("park"),
        _ => false,
    }
}

/// One entry in a function's bracketed control-flow event stream — the
/// input [`crate::cfg`] lowers into a per-function CFG. `Step(i)` events
/// mirror `steps[i]` in order; the structural events bracket branches
/// (`if`/`match`), loops, and early exits (`return`, `?`, `break`,
/// `continue`). The stream is always properly nested because it is
/// emitted structurally while walking the token tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlowEvent {
    /// `steps[i]` executes here.
    Step(usize),
    /// An `if`/`match` opens; its arms follow.
    BranchOpen,
    /// One arm's events start.
    ArmOpen,
    /// One arm's events end.
    ArmClose,
    /// The branch closes. `has_fallthrough` is true for `if` without
    /// `else`: an implicit empty arm flows straight to the merge.
    BranchClose { has_fallthrough: bool },
    /// A loop header opens. `conditional` loops (`while`, `for`) may exit
    /// from the header; `loop` exits only via `break`.
    LoopOpen { conditional: bool },
    /// The header (condition) ends; the loop body begins.
    LoopBody,
    /// The loop closes (back edge from body end to header).
    LoopClose,
    /// `return`, after its value expression's events.
    Return,
    /// `?` — exits early on the error path, continues on the ok path.
    Try,
    /// `break` out of the innermost loop.
    Break,
    /// `continue` to the innermost loop header.
    Continue,
}

/// `let (tx, rx) = bounded(..) / channel(..) / unbounded(..)`.
#[derive(Clone, Debug)]
pub struct ChannelCreate {
    /// Sender binding name.
    pub tx: String,
    /// Receiver binding name.
    pub rx: String,
    /// 1-based line of the `let`.
    pub line: u32,
}

/// A struct-literal field assignment `Type { field: source, .. }` seen
/// inside a function body — lets `self.field` endpoints in the struct's
/// methods resolve back to the constructing function's locals.
#[derive(Clone, Debug)]
pub struct FieldAlias {
    /// The struct being built.
    pub struct_name: String,
    /// Field name.
    pub field: String,
    /// Source local in the constructing function (shorthand fields alias
    /// themselves).
    pub source: String,
}

/// Everything extracted from one `fn`.
#[derive(Clone, Debug)]
pub struct FnFact {
    /// Unqualified name.
    pub name: String,
    /// Enclosing `impl`/`trait` type, if any.
    pub self_type: Option<String>,
    /// Trait being implemented (`impl Trait for Type`), or the trait
    /// itself for default methods.
    pub trait_name: Option<String>,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based position of the `fn` keyword.
    pub line: u32,
    /// 1-based column of the `fn` keyword.
    pub col: u32,
    /// Ordered body events.
    pub steps: Vec<Step>,
    /// Bracketed control-flow stream mirroring `steps` (every step index
    /// appears exactly once, in order) — the CFG lowering input.
    pub events: Vec<FlowEvent>,
    /// Channels created here.
    pub creates: Vec<ChannelCreate>,
    /// `alias -> source` local aliases (`let a = b;`, `c.push(b)`).
    pub local_aliases: Vec<(String, String)>,
    /// Struct-literal field assignments made here.
    pub field_aliases: Vec<FieldAlias>,
}

impl FnFact {
    /// `Type::name`, or just `name` for free functions.
    pub fn qual(&self) -> String {
        match &self.self_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// A struct definition's field types, by field name.
#[derive(Clone, Debug)]
pub struct StructFact {
    /// Struct name.
    pub name: String,
    /// `(field, idents appearing in its type)`.
    pub fields: Vec<(String, Vec<String>)>,
}

/// All facts extracted from one file.
#[derive(Clone, Debug, Default)]
pub struct FileFacts {
    /// Workspace-relative path.
    pub path: String,
    /// Function facts, in source order.
    pub fns: Vec<FnFact>,
    /// Struct definitions.
    pub structs: Vec<StructFact>,
    /// Delimiter diagnostics from the tree parser.
    pub parse_errors: Vec<ParseError>,
}

/// Extract facts from one file's parsed trees.
pub fn extract(path: &str, trees: &[Tree], parse_errors: Vec<ParseError>) -> FileFacts {
    let mut out = FileFacts {
        path: path.to_string(),
        parse_errors,
        ..Default::default()
    };
    scan_items(path, trees, None, None, &mut out);
    out
}

const KEYWORDS: [&str; 27] = [
    "if", "else", "match", "while", "for", "loop", "return", "break", "continue", "let", "mut",
    "ref", "move", "in", "as", "fn", "impl", "trait", "struct", "enum", "mod", "use", "pub",
    "where", "unsafe", "dyn", "const",
];

fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

// ---------------------------------------------------------------------------
// Item scanning
// ---------------------------------------------------------------------------

fn scan_items(
    path: &str,
    trees: &[Tree],
    self_type: Option<&str>,
    trait_name: Option<&str>,
    out: &mut FileFacts,
) {
    let mut i = 0;
    while i < trees.len() {
        if trees[i].is_ident("fn") {
            i = scan_fn(path, trees, i, self_type, trait_name, out);
        } else if trees[i].is_ident("impl") {
            i = scan_impl(path, trees, i, out);
        } else if trees[i].is_ident("trait") {
            i = scan_trait_or_mod(path, trees, i, true, out);
        } else if trees[i].is_ident("mod") {
            i = scan_trait_or_mod(path, trees, i, false, out);
        } else if trees[i].is_ident("struct") {
            i = scan_struct(trees, i, out);
        } else {
            i += 1;
        }
    }
}

/// Parse a `fn` item starting at the `fn` keyword; returns the index to
/// resume scanning from.
fn scan_fn(
    path: &str,
    trees: &[Tree],
    at: usize,
    self_type: Option<&str>,
    trait_name: Option<&str>,
    out: &mut FileFacts,
) -> usize {
    let Some(name) = trees.get(at + 1).and_then(|t| t.ident()) else {
        return at + 1;
    };
    let (line, col) = trees[at].pos();
    // Parameters: the first `(` group after the name (generics stay flat).
    let mut j = at + 2;
    while j < trees.len() && !trees[j].is_group('(') {
        if trees[j].is_punct(";") || trees[j].is_group('{') {
            break;
        }
        j += 1;
    }
    // Body: the first `{` group before a `;`.
    let mut k = j;
    let body = loop {
        match trees.get(k) {
            None => break None,
            Some(t) if t.is_punct(";") => break None,
            Some(t) if t.is_group('{') => break t.group(),
            Some(_) => k += 1,
        }
    };
    let Some(body) = body else {
        // Declaration only (trait method signature).
        return k.min(trees.len()) + 1;
    };
    let mut fact = FnFact {
        name: name.to_string(),
        self_type: self_type.map(str::to_string),
        trait_name: trait_name.map(str::to_string),
        file: path.to_string(),
        line,
        col,
        steps: Vec::new(),
        events: Vec::new(),
        creates: Vec::new(),
        local_aliases: Vec::new(),
        field_aliases: Vec::new(),
    };
    let mut ctx = FnCtx {
        fact: &mut fact,
        tmp: 0,
    };
    walk_block(&mut ctx, &body.trees);
    out.fns.push(fact);
    k + 1
}

/// Parse an `impl` header and recurse into its body.
fn scan_impl(path: &str, trees: &[Tree], at: usize, out: &mut FileFacts) -> usize {
    // Header leaves up to the body `{` group.
    let mut j = at + 1;
    let mut header: Vec<&Tree> = Vec::new();
    let body = loop {
        match trees.get(j) {
            None => break None,
            Some(t) if t.is_group('{') => break t.group(),
            Some(t) if t.is_punct(";") => break None,
            Some(t) => {
                header.push(t);
                j += 1;
            }
        }
    };
    let Some(body) = body else {
        return j.min(trees.len()) + 1;
    };
    // Skip leading generic params `<...>` (angle leaves).
    let mut h = 0;
    if header.first().is_some_and(|t| t.is_punct("<")) {
        let mut depth = 0i32;
        while h < header.len() {
            if header[h].is_punct("<") {
                depth += 1;
            } else if header[h].is_punct(">") {
                depth -= 1;
                if depth == 0 {
                    h += 1;
                    break;
                }
            }
            h += 1;
        }
    }
    let rest = &header[h..];
    let for_pos = rest.iter().position(|t| t.is_ident("for"));
    let (trait_part, type_part) = match for_pos {
        Some(p) => (&rest[..p], &rest[p + 1..]),
        None => (&rest[..0], rest),
    };
    let type_name = last_path_segment(type_part);
    let trait_nm = last_path_segment(trait_part);
    scan_items(
        path,
        &body.trees,
        type_name.as_deref(),
        trait_nm.as_deref(),
        out,
    );
    j + 1
}

/// The final path segment before any generic arguments: `a::b::C<T>` → `C`.
fn last_path_segment(trees: &[&Tree]) -> Option<String> {
    let mut last = None;
    for t in trees {
        if t.is_punct("<") {
            break;
        }
        if t.is_ident("where") {
            break;
        }
        if let Some(id) = t.ident() {
            last = Some(id.to_string());
        }
    }
    last
}

fn scan_trait_or_mod(
    path: &str,
    trees: &[Tree],
    at: usize,
    is_trait: bool,
    out: &mut FileFacts,
) -> usize {
    let name = trees.get(at + 1).and_then(|t| t.ident());
    let mut j = at + 1;
    while j < trees.len() && !trees[j].is_group('{') {
        if trees[j].is_punct(";") {
            return j + 1;
        }
        j += 1;
    }
    let Some(body) = trees.get(j).and_then(|t| t.group()) else {
        return j + 1;
    };
    if is_trait {
        scan_items(path, &body.trees, name, name, out);
    } else {
        scan_items(path, &body.trees, None, None, out);
    }
    j + 1
}

fn scan_struct(trees: &[Tree], at: usize, out: &mut FileFacts) -> usize {
    let Some(name) = trees.get(at + 1).and_then(|t| t.ident()) else {
        return at + 1;
    };
    let mut j = at + 2;
    while j < trees.len() {
        match &trees[j] {
            t if t.is_punct(";") => return j + 1, // unit or tuple struct
            t if t.is_group('(') => {
                j += 1; // tuple struct fields — no named fields to record
            }
            t if t.is_group('{') => {
                let body = match t.group() {
                    Some(g) => g,
                    None => return j + 1,
                };
                let fields = parse_fields(&body.trees);
                out.structs.push(StructFact {
                    name: name.to_string(),
                    fields,
                });
                return j + 1;
            }
            _ => j += 1,
        }
    }
    j
}

/// Parse `field: Type, ...` inside a struct body.
fn parse_fields(trees: &[Tree]) -> Vec<(String, Vec<String>)> {
    let mut fields = Vec::new();
    for part in split_on_comma(trees) {
        // Skip attributes and visibility.
        let mut i = 0;
        while i < part.len() {
            if part[i].is_punct("#") && part.get(i + 1).is_some_and(|t| t.is_group('[')) {
                i += 2;
            } else if part[i].is_ident("pub") {
                i += 1;
                if part.get(i).is_some_and(|t| t.is_group('(')) {
                    i += 1;
                }
            } else {
                break;
            }
        }
        let Some(name) = part.get(i).and_then(|t| t.ident()) else {
            continue;
        };
        if !part.get(i + 1).is_some_and(|t| t.is_punct(":")) {
            continue;
        }
        let mut idents = Vec::new();
        collect_idents(&part[i + 2..], &mut idents);
        fields.push((name.to_string(), idents));
    }
    fields
}

fn collect_idents(trees: &[Tree], out: &mut Vec<String>) {
    for t in trees {
        match t {
            Tree::Leaf(tok) => {
                if tok.kind == TokKind::Ident && !is_keyword(&tok.text) {
                    out.push(tok.text.clone());
                }
            }
            Tree::Group(g) => collect_idents(&g.trees, out),
        }
    }
}

fn split_on_comma(trees: &[Tree]) -> Vec<&[Tree]> {
    let mut parts = Vec::new();
    let mut start = 0;
    for (i, t) in trees.iter().enumerate() {
        if t.is_punct(",") {
            parts.push(&trees[start..i]);
            start = i + 1;
        }
    }
    if start < trees.len() {
        parts.push(&trees[start..]);
    }
    parts
}

// ---------------------------------------------------------------------------
// Function-body walking
// ---------------------------------------------------------------------------

struct FnCtx<'a> {
    fact: &'a mut FnFact,
    tmp: usize,
}

impl FnCtx<'_> {
    /// Every step goes through here so the flow-event stream mirrors
    /// `steps` one-for-one.
    fn push_step(&mut self, step: Step) {
        self.fact
            .events
            .push(FlowEvent::Step(self.fact.steps.len()));
        self.fact.steps.push(step);
    }

    fn event(&mut self, e: FlowEvent) {
        self.fact.events.push(e);
    }
}

/// Walk a `{}` block: split into statements, give `let` statements guard
/// treatment, and release statement-temporary and scope-bound guards at
/// the right points.
fn walk_block(ctx: &mut FnCtx, trees: &[Tree]) {
    let mut scope_guards: Vec<String> = Vec::new();
    let mut i = 0;
    while i < trees.len() {
        // Statement: up to a top-level `;`, or up to (but not including)
        // a top-level `let` that starts the next statement.
        let mut end = i;
        while end < trees.len() {
            if trees[end].is_punct(";") {
                break;
            }
            if end > i
                && trees[end].is_ident("let")
                && !trees[end - 1].is_ident("if")
                && !trees[end - 1].is_ident("while")
                && !trees[end - 1].is_punct("=")
            {
                break;
            }
            end += 1;
        }
        let stmt = &trees[i..end];
        if !stmt.is_empty() {
            let before = ctx.fact.steps.len();
            handle_stmt(ctx, stmt, &mut scope_guards);
            // A guard released during this statement — explicit `drop`,
            // inner-scope end, temporary death — is no longer live here;
            // without this purge the scope close would release it twice.
            let released: Vec<String> = ctx.fact.steps[before..]
                .iter()
                .filter_map(|s| match s {
                    Step::Release { binding } => Some(binding.clone()),
                    _ => None,
                })
                .collect();
            scope_guards.retain(|g| !released.contains(g));
        }
        i = if end < trees.len() && trees[end].is_punct(";") {
            end + 1
        } else {
            end.max(i + 1)
        };
    }
    for b in scope_guards.into_iter().rev() {
        ctx.push_step(Step::Release { binding: b });
    }
}

/// One statement: detect `let` shapes (guard bindings, channel creation,
/// aliases), then walk the whole statement for events, then release any
/// statement-temporary guards.
fn handle_stmt(ctx: &mut FnCtx, stmt: &[Tree], scope_guards: &mut Vec<String>) {
    let before = ctx.fact.steps.len();
    let mut guard_binding: Option<(usize, String)> = None; // (lock ident index, binding)

    if stmt[0].is_ident("let") {
        let mut p = 1;
        if stmt.get(p).is_some_and(|t| t.is_ident("mut")) {
            p += 1;
        }
        let eq = stmt.iter().position(|t| t.is_punct("="));
        // Tuple pattern: channel creation.
        if let (Some(pat), Some(eq)) = (stmt.get(p).and_then(|t| t.group()), eq) {
            if pat.delim == '(' {
                let names: Vec<&str> = pat.trees.iter().filter_map(|t| t.ident()).collect();
                let init = &stmt[eq + 1..];
                if names.len() == 2 && init_creates_channel(init) {
                    let (line, _) = stmt[0].pos();
                    ctx.fact.creates.push(ChannelCreate {
                        tx: names[0].to_string(),
                        rx: names[1].to_string(),
                        line,
                    });
                }
            }
        } else if let (Some(binding), Some(eq)) = (stmt.get(p).and_then(|t| t.ident()), eq) {
            let init = &stmt[eq + 1..];
            // Plain alias: `let a = b;` / `let a = b.clone();`.
            if let Some(src) = alias_source(init) {
                ctx.fact
                    .local_aliases
                    .push((binding.to_string(), src.to_string()));
            }
            // Guard binding: the last top-level `.lock(` whose trailing
            // trees are all guard-preserving adaptors.
            if binding != "_" {
                if let Some(idx) = top_level_lock(init) {
                    if adaptors_only(&init[idx + 2..]) {
                        guard_binding = Some((eq + 1 + idx, binding.to_string()));
                    }
                }
            }
        }
    }

    walk_exprs(
        ctx,
        stmt,
        guard_binding.as_ref().map(|(i, b)| (*i, b.as_str())),
    );

    // Temporaries: any acquire in this statement that didn't become the
    // let-bound guard dies at the `;`.
    let mut temp_releases = Vec::new();
    for s in &mut ctx.fact.steps[before..] {
        if let Step::Acquire { binding, .. } = s {
            if binding.is_empty() {
                ctx.tmp += 1;
                *binding = format!("#t{}", ctx.tmp);
                temp_releases.push(binding.clone());
            } else if !binding.starts_with("#t") {
                scope_guards.push(binding.clone());
            }
        }
    }
    for b in temp_releases.into_iter().rev() {
        ctx.push_step(Step::Release { binding: b });
    }
}

/// True iff the init expression calls `bounded` / `unbounded` / `channel`.
fn init_creates_channel(init: &[Tree]) -> bool {
    for (i, t) in init.iter().enumerate() {
        if let Some(id) = t.ident() {
            if matches!(id, "bounded" | "unbounded" | "channel") {
                // Followed (possibly via turbofish leaves) by a call group.
                if init[i + 1..].iter().any(|n| n.is_group('(')) {
                    return true;
                }
            }
        }
    }
    false
}

/// `b`, `b.clone()`, `b?` — expressions that alias an existing local.
fn alias_source(init: &[Tree]) -> Option<&str> {
    let first = init.first()?.ident()?;
    if is_keyword(first) || init.first()?.leaf()?.kind != TokKind::Ident {
        return None;
    }
    let ok = match init.len() {
        1 => true,
        2 => init[1].is_punct("?"),
        4 => init[1].is_punct(".") && init[2].is_ident("clone") && init[3].is_group('('),
        _ => false,
    };
    ok.then_some(first)
}

/// Index of the last top-level `lock` method-call ident in `init`.
fn top_level_lock(init: &[Tree]) -> Option<usize> {
    let mut found = None;
    for (i, t) in init.iter().enumerate() {
        if t.is_ident("lock")
            && i > 0
            && init[i - 1].is_punct(".")
            && init.get(i + 1).is_some_and(|n| n.is_group('('))
        {
            found = Some(i);
        }
    }
    found
}

/// True iff every tree is a guard-preserving adaptor (`.unwrap()`,
/// `.expect("..")`, `.await`, `?`) — skipping the lock call's own args.
fn adaptors_only(rest: &[Tree]) -> bool {
    rest.iter().all(|t| match t {
        Tree::Leaf(tok) => match tok.kind {
            TokKind::Punct => matches!(tok.text.as_str(), "." | "?"),
            TokKind::Ident => matches!(tok.text.as_str(), "unwrap" | "expect" | "await"),
            TokKind::Literal => true,
            TokKind::Lifetime => false,
        },
        Tree::Group(g) => g.delim == '(',
    })
}

/// Walk one statement's trees, emitting events. `guard_at` marks the
/// top-level `lock` ident that binds the statement's `let` guard.
/// Control-flow keywords (`if`, `match`, loops, `return`, `break`,
/// `continue`) are intercepted to emit the bracketed [`FlowEvent`]
/// structure alongside the steps.
fn walk_exprs(ctx: &mut FnCtx, trees: &[Tree], guard_at: Option<(usize, &str)>) {
    let mut i = 0;
    while i < trees.len() {
        match &trees[i] {
            Tree::Leaf(tok) if tok.kind == TokKind::Ident => {
                let name = tok.text.clone();
                match name.as_str() {
                    "if" => {
                        i = handle_if(ctx, trees, i);
                        continue;
                    }
                    "match" => {
                        i = handle_match(ctx, trees, i);
                        continue;
                    }
                    "while" => {
                        i = handle_while(ctx, trees, i);
                        continue;
                    }
                    "for" => {
                        i = handle_for(ctx, trees, i);
                        continue;
                    }
                    "loop" => {
                        i = handle_loop(ctx, trees, i);
                        continue;
                    }
                    "return" => {
                        // Value expression first, then the exit edge.
                        walk_exprs(ctx, &trees[i + 1..], None);
                        ctx.event(FlowEvent::Return);
                        return;
                    }
                    "break" => {
                        walk_exprs(ctx, &trees[i + 1..], None); // break value
                        ctx.event(FlowEvent::Break);
                        return;
                    }
                    "continue" => {
                        ctx.event(FlowEvent::Continue);
                        return;
                    }
                    "await" if i > 0 && trees[i - 1].is_punct(".") => {
                        ctx.push_step(Step::Suspend {
                            what: ".await".to_string(),
                            line: tok.line,
                            col: tok.col,
                        });
                        i += 1;
                        continue;
                    }
                    _ => {}
                }
                // Macro invocation: `name!(...)` — walk the args, but the
                // macro itself is not a call.
                if trees.get(i + 1).is_some_and(|t| t.is_punct("!")) {
                    i += 2;
                    continue;
                }
                let called = trees.get(i + 1).is_some_and(|t| t.is_group('('));
                if called && !is_keyword(&name) {
                    let is_method = i > 0 && trees[i - 1].is_punct(".");
                    if is_method {
                        handle_method_call(ctx, trees, i, &name, tok.line, tok.col, guard_at);
                    } else {
                        handle_plain_call(ctx, trees, i, &name, tok.line, tok.col);
                    }
                }
                // Struct literal: `Upper { field: src, .. }`.
                if name.chars().next().is_some_and(char::is_uppercase)
                    && trees.get(i + 1).is_some_and(|t| t.is_group('{'))
                    && !called
                {
                    if let Some(g) = trees[i + 1].group() {
                        harvest_field_aliases(ctx, &name, g);
                    }
                }
                i += 1;
            }
            Tree::Leaf(tok) if tok.is_punct("?") => {
                ctx.event(FlowEvent::Try);
                i += 1;
            }
            Tree::Group(g) => {
                if g.delim == '{' {
                    walk_block(ctx, &g.trees);
                } else {
                    // Args of the enclosing call/index: same statement, so
                    // guard_at does not apply inside.
                    walk_exprs(ctx, &g.trees, None);
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
}

// ---------------------------------------------------------------------------
// Control-flow constructs
// ---------------------------------------------------------------------------

/// Index of the first top-level `{` group at or after `from` (the body of
/// an `if`/`match`/`while`/`for` — struct literals are not legal in those
/// head positions without parentheses, so the first brace is the body).
fn body_brace(trees: &[Tree], from: usize) -> usize {
    let mut j = from;
    while j < trees.len() && !trees[j].is_group('{') {
        j += 1;
    }
    j
}

/// `if cond { A } [else if .. | else { B }]` starting at the `if` ident.
/// Returns the index just past the construct. `else if` chains nest: the
/// second condition's steps land inside the else arm, which is exactly
/// when they evaluate.
fn handle_if(ctx: &mut FnCtx, trees: &[Tree], at: usize) -> usize {
    let j = body_brace(trees, at + 1);
    walk_exprs(ctx, &trees[at + 1..j], None); // condition
    let Some(body) = trees.get(j).and_then(|t| t.group()) else {
        return j; // malformed (`if` in a pattern guard) — condition walked
    };
    ctx.event(FlowEvent::BranchOpen);
    ctx.event(FlowEvent::ArmOpen);
    walk_block(ctx, &body.trees);
    ctx.event(FlowEvent::ArmClose);
    let mut end = j + 1;
    let mut has_fallthrough = true;
    if trees.get(end).is_some_and(|t| t.is_ident("else")) {
        has_fallthrough = false;
        ctx.event(FlowEvent::ArmOpen);
        if trees.get(end + 1).is_some_and(|t| t.is_ident("if")) {
            end = handle_if(ctx, trees, end + 1);
        } else if let Some(g) = trees.get(end + 1).and_then(|t| t.group()) {
            walk_block(ctx, &g.trees);
            end += 2;
        } else {
            end += 1;
        }
        ctx.event(FlowEvent::ArmClose);
    }
    ctx.event(FlowEvent::BranchClose { has_fallthrough });
    end
}

/// `match scrut { pat [if guard] => body, ... }` starting at `match`.
fn handle_match(ctx: &mut FnCtx, trees: &[Tree], at: usize) -> usize {
    let j = body_brace(trees, at + 1);
    walk_exprs(ctx, &trees[at + 1..j], None); // scrutinee
    let Some(body) = trees.get(j).and_then(|t| t.group()) else {
        return j;
    };
    ctx.event(FlowEvent::BranchOpen);
    walk_match_arms(ctx, &body.trees);
    ctx.event(FlowEvent::BranchClose {
        has_fallthrough: false,
    });
    j + 1
}

/// The comma-separated arms inside a match body. Patterns (and guards)
/// are walked inside their arm — struct patterns feed the same
/// field-alias harvest as struct literals, and guard calls evaluate only
/// on that arm's path.
fn walk_match_arms(ctx: &mut FnCtx, trees: &[Tree]) {
    let mut i = 0;
    loop {
        // Find the arm's `=>` (delimiters inside patterns are groups, so
        // a top-level scan cannot see a nested arrow).
        let mut arrow = None;
        let mut k = i;
        while k + 1 < trees.len() {
            if trees[k].is_punct("=") && trees[k + 1].is_punct(">") {
                arrow = Some(k);
                break;
            }
            k += 1;
        }
        let Some(arrow) = arrow else { break };
        ctx.event(FlowEvent::ArmOpen);
        walk_exprs(ctx, &trees[i..arrow], None); // pattern + guard
        let mut b = arrow + 2;
        if let Some(g) = trees
            .get(b)
            .and_then(|t| t.group())
            .filter(|g| g.delim == '{')
        {
            walk_block(ctx, &g.trees);
            b += 1;
            if trees.get(b).is_some_and(|t| t.is_punct(",")) {
                b += 1;
            }
        } else {
            // Expression body up to the top-level comma.
            let mut e = b;
            while e < trees.len() && !trees[e].is_punct(",") {
                e += 1;
            }
            walk_exprs(ctx, &trees[b..e], None);
            b = (e + 1).min(trees.len());
        }
        ctx.event(FlowEvent::ArmClose);
        i = b;
    }
}

/// `while cond { .. }` / `while let pat = expr { .. }`: the condition
/// re-evaluates every iteration, so its steps live in the loop header.
fn handle_while(ctx: &mut FnCtx, trees: &[Tree], at: usize) -> usize {
    let j = body_brace(trees, at + 1);
    ctx.event(FlowEvent::LoopOpen { conditional: true });
    walk_exprs(ctx, &trees[at + 1..j], None); // condition (header)
    ctx.event(FlowEvent::LoopBody);
    if let Some(body) = trees.get(j).and_then(|t| t.group()) {
        walk_block(ctx, &body.trees);
    }
    ctx.event(FlowEvent::LoopClose);
    j + 1
}

/// `for pat in iter { .. }`: the iterator expression evaluates once,
/// before the loop.
fn handle_for(ctx: &mut FnCtx, trees: &[Tree], at: usize) -> usize {
    let j = body_brace(trees, at + 1);
    if let Some(p) = trees[at + 1..j].iter().position(|t| t.is_ident("in")) {
        walk_exprs(ctx, &trees[at + 2 + p..j], None); // iterator, once
    }
    ctx.event(FlowEvent::LoopOpen { conditional: true });
    ctx.event(FlowEvent::LoopBody);
    if let Some(body) = trees.get(j).and_then(|t| t.group()) {
        walk_block(ctx, &body.trees);
    }
    ctx.event(FlowEvent::LoopClose);
    j + 1
}

/// `loop { .. }`: exits only via `break`.
fn handle_loop(ctx: &mut FnCtx, trees: &[Tree], at: usize) -> usize {
    let j = at + 1;
    ctx.event(FlowEvent::LoopOpen { conditional: false });
    ctx.event(FlowEvent::LoopBody);
    if let Some(body) = trees.get(j).and_then(|t| t.group()) {
        walk_block(ctx, &body.trees);
    }
    ctx.event(FlowEvent::LoopClose);
    j + 1
}

const BOUNDED_RECV: [&str; 2] = ["try_recv", "recv_timeout"];

fn handle_method_call(
    ctx: &mut FnCtx,
    trees: &[Tree],
    i: usize,
    name: &str,
    line: u32,
    col: u32,
    guard_at: Option<(usize, &str)>,
) {
    let base = receiver_base(trees, i);
    match name {
        "lock" => {
            let lock_name = lock_name_of(&base, trees, i);
            let binding = match guard_at {
                Some((gi, b)) if gi == i => b.to_string(),
                _ => String::new(), // synthetic #tN assigned at statement end
            };
            ctx.push_step(Step::Acquire {
                lock: lock_name,
                binding,
                line,
                col,
            });
        }
        "send" | "try_send" => ctx.push_step(Step::Send {
            base,
            method: name.to_string(),
            line,
            col,
        }),
        "recv" | "try_recv" | "recv_timeout" => ctx.push_step(Step::Recv {
            base,
            method: name.to_string(),
            bounded: BOUNDED_RECV.contains(&name),
            line,
            col,
        }),
        "join" | "wait" => {
            ctx.push_step(Step::Blocking {
                what: format!(".{name}()"),
                line,
                col,
            });
        }
        "block_timeout" => {
            ctx.push_step(Step::Suspend {
                what: format!(".{name}()"),
                line,
                col,
            });
        }
        "push" => {
            // `container.push(endpoint)` — alias the container to the
            // endpoint so `container[i].send(..)` resolves.
            if let (Base::Local(container) | Base::SelfField(container), Some(arg)) =
                (&base, trees.get(i + 1).and_then(|t| t.group()))
            {
                let idents: Vec<&str> = arg.trees.iter().filter_map(|t| t.ident()).collect();
                if idents.len() == 1 && arg.trees.len() == 1 {
                    ctx.fact
                        .local_aliases
                        .push((container.clone(), idents[0].to_string()));
                }
            }
            ctx.push_step(Step::Call {
                target: CallTarget::Method {
                    name: name.to_string(),
                    base,
                },
                line,
                col,
            });
        }
        _ => {
            if name.chars().next().is_some_and(char::is_uppercase) {
                return; // enum-variant / tuple-struct pattern or literal
            }
            ctx.push_step(Step::Call {
                target: CallTarget::Method {
                    name: name.to_string(),
                    base,
                },
                line,
                col,
            });
        }
    }
}

fn handle_plain_call(ctx: &mut FnCtx, trees: &[Tree], i: usize, name: &str, line: u32, col: u32) {
    // Qualified path? `Type::name(` — two `:` puncts then an ident.
    let qualifier = if i >= 3
        && trees[i - 1].is_punct(":")
        && trees[i - 2].is_punct(":")
        && trees[i - 3]
            .leaf()
            .is_some_and(|t| t.kind == TokKind::Ident)
    {
        trees[i - 3].ident().map(str::to_string)
    } else {
        None
    };
    match name {
        "drop" => {
            if let Some(arg) = trees.get(i + 1).and_then(|t| t.group()) {
                let idents: Vec<&str> = arg.trees.iter().filter_map(|t| t.ident()).collect();
                if idents.len() == 1 && arg.trees.len() == 1 {
                    ctx.push_step(Step::Release {
                        binding: idents[0].to_string(),
                    });
                }
            }
        }
        "sleep" | "park" => ctx.push_step(Step::Blocking {
            what: format!("{name}()"),
            line,
            col,
        }),
        "yield_now" => ctx.push_step(Step::Suspend {
            what: format!("{name}()"),
            line,
            col,
        }),
        _ => {
            if name.chars().next().is_some_and(char::is_uppercase) {
                return; // tuple-struct or enum-variant constructor
            }
            let target = match qualifier {
                Some(ty) => CallTarget::Qualified {
                    ty,
                    name: name.to_string(),
                },
                None => CallTarget::Bare {
                    name: name.to_string(),
                },
            };
            ctx.push_step(Step::Call { target, line, col });
        }
    }
}

/// Classify the receiver chain ending at the `.` before `trees[i]`.
fn receiver_base(trees: &[Tree], i: usize) -> Base {
    if i < 2 || !trees[i - 1].is_punct(".") {
        return Base::Complex;
    }
    // Walk back over the postfix chain.
    let mut j = i - 1; // at the `.`
    let mut has_call = false;
    while j > 0 {
        let t = &trees[j - 1];
        let cont = match t {
            Tree::Leaf(tok) => match tok.kind {
                // A keyword (`match`, `return`, `if`, ...) ends the chain;
                // `self` and `await` are the two that occur inside one.
                TokKind::Ident => {
                    !is_keyword(&tok.text) || tok.text == "self" || tok.text == "await"
                }
                TokKind::Punct => matches!(tok.text.as_str(), "." | "?"),
                _ => false,
            },
            Tree::Group(g) => {
                if g.delim == '(' {
                    has_call = true;
                }
                g.delim == '(' || g.delim == '['
            }
        };
        if !cont {
            break;
        }
        j -= 1;
    }
    // `trees[j..i-1]` is the receiver chain.
    let chain = &trees[j..i - 1];
    let Some(first) = chain.first().and_then(|t| t.ident()) else {
        return Base::Complex;
    };
    if has_call {
        return Base::Complex;
    }
    if first == "self" {
        match chain.len() {
            1 => Base::SelfOnly,
            _ => match chain.get(2).and_then(|t| t.ident()) {
                Some(f) => Base::SelfField(f.to_string()),
                None => Base::Complex,
            },
        }
    } else if is_keyword(first) {
        Base::Complex
    } else {
        // `name`, `name[i]`, `name.field` — keep the head local.
        Base::Local(first.to_string())
    }
}

/// A human-readable lock identity for the receiver of `.lock()`: the last
/// path segment of the receiver (`self.events.lock()` → `events`,
/// `state.lock()` → `state`).
fn lock_name_of(base: &Base, trees: &[Tree], i: usize) -> String {
    // Prefer the ident immediately before the `.lock`.
    if i >= 2 {
        if let Some(id) = trees[i - 2].ident() {
            if id != "self" {
                return id.to_string();
            }
        }
    }
    match base {
        Base::SelfField(f) => f.clone(),
        Base::Local(n) => n.clone(),
        Base::SelfOnly => "self".to_string(),
        Base::Complex => "<expr>".to_string(),
    }
}

/// Record `Struct { field: source }` aliases (shorthand fields alias
/// themselves).
fn harvest_field_aliases(ctx: &mut FnCtx, struct_name: &str, body: &Group) {
    for part in split_on_comma(&body.trees) {
        match part {
            [f] => {
                if let Some(field) = f.ident() {
                    ctx.fact.field_aliases.push(FieldAlias {
                        struct_name: struct_name.to_string(),
                        field: field.to_string(),
                        source: field.to_string(),
                    });
                }
            }
            [f, colon, rest @ ..] if colon.is_punct(":") => {
                let (Some(field), Some(src)) = (f.ident(), rest.first().and_then(|t| t.ident()))
                else {
                    continue;
                };
                if is_keyword(src) {
                    continue;
                }
                ctx.fact.field_aliases.push(FieldAlias {
                    struct_name: struct_name.to_string(),
                    field: field.to_string(),
                    source: src.to_string(),
                });
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn facts(src: &str) -> FileFacts {
        let parsed = parse(&lex(src).tokens);
        extract("crates/test/src/f.rs", &parsed.trees, parsed.errors)
    }

    #[test]
    fn fn_boundaries_and_quals() {
        let f = facts(
            "fn free() {}\n\
             impl Foo { fn method(&self) {} }\n\
             impl Bar for Baz { fn tmethod(&self) {} }\n\
             trait Qux { fn with_default(&self) { self.with_default(); } fn sig(&self); }",
        );
        let quals: Vec<String> = f.fns.iter().map(|f| f.qual()).collect();
        assert_eq!(
            quals,
            ["free", "Foo::method", "Baz::tmethod", "Qux::with_default"]
        );
        assert_eq!(f.fns[2].trait_name.as_deref(), Some("Bar"));
    }

    #[test]
    fn guard_lifecycle_let_drop_scope() {
        let f = facts(
            "fn g(m: &Mutex<u32>, tx: &Sender<u32>) {\n\
               let guard = m.lock().unwrap();\n\
               drop(guard);\n\
               { let g2 = m.lock().unwrap(); }\n\
               m.lock().unwrap().checked_add(1);\n\
             }",
        );
        let steps = &f.fns[0].steps;
        let names: Vec<String> = steps
            .iter()
            .map(|s| match s {
                Step::Acquire { binding, .. } => format!("acq:{binding}"),
                Step::Release { binding } => format!("rel:{binding}"),
                Step::Call { target, .. } => format!("call:{}", target.name()),
                _ => "other".to_string(),
            })
            .collect();
        // guard let-bound, explicitly dropped; g2 scope-released exactly
        // once; third is a temporary released at statement end. `.unwrap()`
        // shows up as an (unresolvable, stoplisted) call.
        assert_eq!(
            names,
            [
                "acq:guard",
                "call:unwrap",
                "rel:guard",
                "acq:g2",
                "call:unwrap",
                "rel:g2",
                "acq:#t1",
                "call:unwrap",
                "call:checked_add",
                "rel:#t1"
            ]
        );
    }

    #[test]
    fn channel_create_and_aliases() {
        let f = facts(
            "fn h() {\n\
               let (to_coord, from_sites) = bounded::<u32>(16);\n\
               let mut v = Vec::new();\n\
               v.push(to_coord);\n\
               let w = from_sites;\n\
               W { tx: to_coord, rx }\n\
             }",
        );
        let fact = &f.fns[0];
        assert_eq!(fact.creates.len(), 1);
        assert_eq!(fact.creates[0].tx, "to_coord");
        assert_eq!(fact.creates[0].rx, "from_sites");
        assert!(fact
            .local_aliases
            .iter()
            .any(|(a, s)| a == "v" && s == "to_coord"));
        assert!(fact
            .local_aliases
            .iter()
            .any(|(a, s)| a == "w" && s == "from_sites"));
        assert!(fact
            .field_aliases
            .iter()
            .any(|a| a.struct_name == "W" && a.field == "tx" && a.source == "to_coord"));
        assert!(fact
            .field_aliases
            .iter()
            .any(|a| a.struct_name == "W" && a.field == "rx" && a.source == "rx"));
    }

    #[test]
    fn send_recv_and_blocking_steps() {
        let f = facts(
            "impl W { fn go(&mut self) {\n\
               self.tx.send(1).ok();\n\
               let _ = self.rx.recv_timeout(d);\n\
               handle.join();\n\
               thread::sleep(d);\n\
             } }",
        );
        let steps = &f.fns[0].steps;
        assert!(steps
            .iter()
            .any(|s| matches!(s, Step::Send { base: Base::SelfField(f), .. } if f == "tx")));
        assert!(steps
            .iter()
            .any(|s| matches!(s, Step::Recv { bounded: true, .. })));
        assert!(steps
            .iter()
            .any(|s| matches!(s, Step::Blocking { what, .. } if what == ".join()")));
        assert!(steps
            .iter()
            .any(|s| matches!(s, Step::Blocking { what, .. } if what == "sleep()")));
    }

    #[test]
    fn struct_fields_collected() {
        let f = facts(
            "struct S { pub a: Box<dyn Scheme + Send>, b: VecDeque<Op>, }\n\
             struct T(u32);",
        );
        assert_eq!(f.structs.len(), 1);
        let s = &f.structs[0];
        assert_eq!(s.name, "S");
        assert!(s.fields[0].1.contains(&"Scheme".to_string()));
        assert!(s.fields[1].1.contains(&"VecDeque".to_string()));
    }

    /// Compact shape string for an event stream: `s` step, `<`/`>` branch
    /// (`≥` when the branch has fallthrough), `[`/`]` arm, `w(`/`l(`
    /// conditional/unconditional loop open, `|` loop body, `)` loop
    /// close, `R` return, `?` try, `^` break, `@` continue.
    fn shape(events: &[FlowEvent]) -> String {
        let mut s = String::new();
        for e in events {
            s.push_str(match e {
                FlowEvent::Step(_) => "s",
                FlowEvent::BranchOpen => "<",
                FlowEvent::ArmOpen => "[",
                FlowEvent::ArmClose => "]",
                FlowEvent::BranchClose {
                    has_fallthrough: true,
                } => "≥",
                FlowEvent::BranchClose {
                    has_fallthrough: false,
                } => ">",
                FlowEvent::LoopOpen { conditional: true } => "w(",
                FlowEvent::LoopOpen { conditional: false } => "l(",
                FlowEvent::LoopBody => "|",
                FlowEvent::LoopClose => ")",
                FlowEvent::Return => "R",
                FlowEvent::Try => "?",
                FlowEvent::Break => "^",
                FlowEvent::Continue => "@",
            });
        }
        s
    }

    #[test]
    fn events_mirror_steps_exactly_once_in_order() {
        let f = facts(
            "fn g(m: &Mutex<u32>, tx: &Sender<u32>) {\n\
               let guard = m.lock().unwrap();\n\
               if c { drop(guard); } else { tx.send(1).ok(); }\n\
               for x in xs { tx.send(x).ok(); }\n\
             }",
        );
        let fact = &f.fns[0];
        let step_ids: Vec<usize> = fact
            .events
            .iter()
            .filter_map(|e| match e {
                FlowEvent::Step(i) => Some(*i),
                _ => None,
            })
            .collect();
        let expect: Vec<usize> = (0..fact.steps.len()).collect();
        assert_eq!(step_ids, expect, "{:?}", fact.events);
    }

    #[test]
    fn if_else_and_match_bracket_arms() {
        let f = facts(
            "fn g(c: bool, tx: &Sender<u32>) {\n\
               if c { tx.send(1).ok(); } else { tx.send(2).ok(); }\n\
               if c { tx.send(3).ok(); }\n\
               match v { A => tx.send(4).ok(), B => {} };\n\
             }",
        );
        // send + .ok() are two steps per non-empty arm.
        assert_eq!(shape(&f.fns[0].events), "<[ss][ss]><[ss]≥<[ss][]>");
    }

    #[test]
    fn loops_break_continue_and_return() {
        let f = facts(
            "fn g(rx: &Receiver<u32>) {\n\
               loop {\n\
                 match rx.try_recv() { Ok(v) => continue, Err(_) => break }\n\
               }\n\
               while rx.try_recv().is_ok() { rx.recv_timeout(d); }\n\
               return;\n\
             }",
        );
        assert_eq!(
            shape(&f.fns[0].events),
            "l(|s<[@][^]>)w(ss|s)R",
            "{:?}",
            f.fns[0].events
        );
    }

    #[test]
    fn else_if_nests_inside_else_arm() {
        let f = facts(
            "fn g(tx: &Sender<u32>) {\n\
               if a { tx.send(1).ok(); } else if b { tx.send(2).ok(); } else { tx.send(3).ok(); }\n\
             }",
        );
        assert_eq!(shape(&f.fns[0].events), "<[ss][<[ss][ss]>]>");
    }

    #[test]
    fn suspension_steps_and_classifier() {
        let f = facts(
            "async fn g(m: &Mutex<u32>, tx: &Sender<u32>, rx: &Receiver<u32>) {\n\
               let g = m.lock().await;\n\
               tx.send(1).await;\n\
               self.pool.block_timeout(d);\n\
               std::thread::yield_now();\n\
               rx.recv_timeout(d);\n\
               std::thread::park();\n\
               rx.recv();\n\
             }",
        );
        let steps = &f.fns[0].steps;
        let suspends: Vec<&str> = steps
            .iter()
            .filter_map(|s| match s {
                Step::Suspend { what, .. } => Some(what.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(
            suspends,
            [".await", ".await", ".block_timeout()", "yield_now()"]
        );
        let n_susp = steps.iter().filter(|s| is_suspension(s)).count();
        // 4 Suspend steps + recv_timeout + park; plain recv() is blocking
        // but not a cooperative suspension point.
        assert_eq!(n_susp, 6, "{steps:?}");
        assert!(steps.iter().any(
            |s| matches!(s, Step::Recv { method, .. } if method == "recv" && !is_suspension(s))
        ));
    }

    #[test]
    fn try_emits_flow_event() {
        let f = facts("fn g(m: &Mutex<u32>) -> Result<(), E> { let g = m.lock()?; Ok(()) }");
        assert!(f.fns[0].events.contains(&FlowEvent::Try));
    }

    #[test]
    fn drop_inside_nested_stmt_is_seen() {
        // The lexical PR 2 rule missed drops nested inside a later `let`
        // statement; the tree walker must not.
        let f = facts(
            "fn g(m: &Mutex<u32>, tx: &Sender<u32>) {\n\
               let guard = m.lock().unwrap();\n\
               let value = { let v = *guard; drop(guard); v };\n\
               tx.send(value).ok();\n\
             }",
        );
        let steps = &f.fns[0].steps;
        let release_at = steps
            .iter()
            .position(|s| matches!(s, Step::Release { binding } if binding == "guard"));
        let send_at = steps.iter().position(|s| matches!(s, Step::Send { .. }));
        assert!(release_at.is_some() && send_at.is_some());
        assert!(release_at < send_at, "{steps:?}");
    }
}
