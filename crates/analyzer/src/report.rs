//! Machine-readable and human-readable lint reports.
//!
//! The JSON schema (stable; CI parses it):
//!
//! ```json
//! {
//!   "tool": "mdbs-lint",
//!   "version": "0.1.0",
//!   "files_scanned": 61,
//!   "total_violations": 2,
//!   "by_rule": { "no-panic-in-scheduler": 2 },
//!   "graphs": {
//!     "lock_order": { "nodes": [...], "edges": [...], "cycles": [...] },
//!     "channel_topology": { "channels": [
//!       { "tx": "...", "rx": "...", "file": "...", "line": 1,
//!         "created_in": "...", "senders": [...], "receivers": [...] } ] }
//!   },
//!   "violations": [
//!     { "rule": "no-panic-in-scheduler", "file": "crates/core/src/gtm1.rs",
//!       "line": 337, "col": 40, "message": "..." }
//!   ]
//! }
//! ```
//!
//! Hand-written emission — the analyzer is dependency-free by design, so
//! it can never be the crate that drags a vendored tree into the build.

use crate::graph::Graphs;
use crate::rules::Violation;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Tool version stamped into every report.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

/// The outcome of one analysis run.
#[derive(Clone, Debug)]
pub struct Report {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// All violations, sorted by file/line/col/rule.
    pub violations: Vec<Violation>,
    /// Lock-order and channel-topology graphs from the interprocedural pass.
    pub graphs: Graphs,
}

impl Report {
    /// True iff the run found nothing.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Violation counts keyed by rule name.
    pub fn by_rule(&self) -> BTreeMap<&'static str, usize> {
        let mut counts = BTreeMap::new();
        for v in &self.violations {
            *counts.entry(v.rule).or_insert(0) += 1;
        }
        counts
    }

    /// Serialize to the stable JSON schema.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"tool\": \"mdbs-lint\",");
        let _ = writeln!(s, "  \"version\": {},", json_str(VERSION));
        let _ = writeln!(s, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(s, "  \"total_violations\": {},", self.violations.len());
        s.push_str("  \"by_rule\": {");
        let by_rule = self.by_rule();
        for (i, (rule, n)) in by_rule.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('\n');
            let _ = write!(s, "    {}: {n}", json_str(rule));
        }
        if !by_rule.is_empty() {
            s.push('\n');
            s.push_str("  ");
        }
        s.push_str("},\n");
        let _ = writeln!(s, "  \"graphs\": {},", self.graphs.to_json());
        s.push_str("  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('\n');
            let _ = write!(
                s,
                "    {{ \"rule\": {}, \"file\": {}, \"line\": {}, \"col\": {}, \"message\": {} }}",
                json_str(v.rule),
                json_str(&v.file),
                v.line,
                v.col,
                json_str(&v.message)
            );
        }
        if !self.violations.is_empty() {
            s.push('\n');
            s.push_str("  ");
        }
        s.push_str("]\n}\n");
        s
    }

    /// Render compiler-style human diagnostics.
    pub fn render_human(&self) -> String {
        let mut s = String::new();
        for v in &self.violations {
            let _ = writeln!(
                s,
                "error[{}]: {}\n  --> {}:{}:{}",
                v.rule, v.message, v.file, v.line, v.col
            );
        }
        if self.violations.is_empty() {
            let _ = writeln!(
                s,
                "mdbs-lint: {} files scanned, no violations",
                self.files_scanned
            );
        } else {
            let _ = writeln!(
                s,
                "mdbs-lint: {} violation(s) across {} file(s) scanned",
                self.violations.len(),
                self.files_scanned
            );
        }
        s
    }
}

/// Escape a string per RFC 8259.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(json_str("em—dash"), "\"em—dash\"");
    }

    #[test]
    fn empty_report_shape() {
        let r = Report {
            files_scanned: 3,
            violations: vec![],
            graphs: Graphs::default(),
        };
        let j = r.to_json();
        assert!(j.contains("\"total_violations\": 0"));
        assert!(j.contains("\"by_rule\": {}"));
        assert!(j.contains("\"graphs\": {"));
        assert!(j.contains("\"lock_order\""));
        assert!(j.contains("\"channels\""));
        assert!(j.contains("\"violations\": []"));
        assert!(r.is_clean());
    }
}
