//! Machine-readable and human-readable lint reports.
//!
//! The JSON schema (stable; CI parses it):
//!
//! ```json
//! {
//!   "tool": "mdbs-lint",
//!   "version": "0.1.0",
//!   "files_scanned": 61,
//!   "wall_clock_ms": 412,
//!   "cache": { "file_hits": 60, "file_misses": 1, "fn_hits": 240, "fn_misses": 9 },
//!   "total_violations": 2,
//!   "by_rule": { "no-panic-in-scheduler": 2 },
//!   "baseline": {
//!     "path": "baseline.json", "new": 1, "pre_existing": 1, "fixed": 0,
//!     "fixed_findings": []
//!   },
//!   "graphs": {
//!     "lock_order": { "nodes": [...], "edges": [...], "cycles": [...] },
//!     "channel_topology": { "channels": [
//!       { "tx": "...", "rx": "...", "file": "...", "line": 1,
//!         "created_in": "...", "senders": [...], "receivers": [...] } ] },
//!     "cfgs": [ { "fn": "Gtm2::pump", "file": "...", "line": 1,
//!                 "blocks": 9, "edges": 11 } ]
//!   },
//!   "violations": [
//!     { "rule": "no-panic-in-scheduler", "file": "crates/core/src/gtm1.rs",
//!       "line": 337, "col": 40, "level": "error", "status": "new",
//!       "message": "..." }
//!   ]
//! }
//! ```
//!
//! `wall_clock_ms` appears only on timed workspace runs — CI enforces the
//! lint self-performance budget against it. `cache` appears only when a
//! fact database was consulted (`--cache-dir`), `baseline` and per-finding
//! `status` only under `--baseline`. [`Report::to_sarif`] emits the same
//! findings as SARIF 2.1.0 for GitHub code scanning, mapping the baseline
//! classification onto SARIF `baselineState`.
//!
//! Hand-written emission — the analyzer is dependency-free by design, so
//! it can never be the crate that drags a vendored tree into the build.

use crate::graph::Graphs;
use crate::jsonv::Json;
use crate::rules::{level_name, rule_description, rule_level, Level, Violation};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Tool version stamped into every report.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

/// Fact-database reuse counters for one run (present only when
/// `--cache-dir` was given).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Files whose front-end artifacts were loaded by fingerprint.
    pub file_hits: usize,
    /// Files re-analyzed from source.
    pub file_misses: usize,
    /// Per-function interprocedural results replayed from the cache.
    pub fn_hits: usize,
    /// Per-function interprocedural results recomputed.
    pub fn_misses: usize,
}

/// One finding loaded from a `--baseline` report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BaselineFinding {
    /// Rule id as recorded in the baseline.
    pub rule: String,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line in the baseline run.
    pub line: u32,
    /// Full diagnostic message.
    pub message: String,
}

/// Classification of a current finding against the baseline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FindingStatus {
    /// Not present in the baseline — the only kind that gates.
    New,
    /// Matched a baseline finding.
    PreExisting,
}

/// Result of diffing this run against a `--baseline` report.
#[derive(Clone, Debug)]
pub struct BaselineDiff {
    /// Path the baseline was loaded from (echoed in output).
    pub path: String,
    /// Per-violation status, parallel to `Report::violations`.
    pub statuses: Vec<FindingStatus>,
    /// Baseline findings absent from this run.
    pub fixed: Vec<BaselineFinding>,
}

/// The outcome of one analysis run.
#[derive(Clone, Debug)]
pub struct Report {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// All violations, sorted by file/line/col/rule.
    pub violations: Vec<Violation>,
    /// Lock-order and channel-topology graphs from the interprocedural pass.
    pub graphs: Graphs,
    /// Wall clock of the full sweep in milliseconds; `Some` only for
    /// timed workspace runs (the CI perf budget reads it).
    pub wall_ms: Option<u64>,
    /// Fact-database reuse counters; `Some` only when `--cache-dir` ran.
    pub cache: Option<CacheStats>,
    /// Baseline diff; `Some` only after [`Report::apply_baseline`].
    pub baseline: Option<BaselineDiff>,
}

impl Report {
    /// True iff the run found nothing.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Violation counts keyed by rule name.
    pub fn by_rule(&self) -> BTreeMap<&'static str, usize> {
        let mut counts = BTreeMap::new();
        for v in &self.violations {
            *counts.entry(v.rule).or_insert(0) += 1;
        }
        counts
    }

    /// Classify every current violation against `baseline` findings.
    ///
    /// Matching is a two-pass multiset intersection: first on exact
    /// `(rule, file, message)`, then — because messages embed line
    /// numbers that drift when unrelated lines are inserted — on
    /// `(rule, file)` for whatever is left. Each baseline finding
    /// matches at most one current violation; unmatched baseline
    /// entries are reported as fixed.
    pub fn apply_baseline(&mut self, path: &str, baseline: Vec<BaselineFinding>) {
        let mut taken = vec![false; baseline.len()];
        let mut statuses = vec![FindingStatus::New; self.violations.len()];
        for (vi, v) in self.violations.iter().enumerate() {
            if let Some(bi) = baseline.iter().enumerate().position(|(i, b)| {
                !taken[i] && b.rule == v.rule && b.file == v.file && b.message == v.message
            }) {
                taken[bi] = true;
                statuses[vi] = FindingStatus::PreExisting;
            }
        }
        for (vi, v) in self.violations.iter().enumerate() {
            if statuses[vi] == FindingStatus::New {
                if let Some(bi) = baseline
                    .iter()
                    .enumerate()
                    .position(|(i, b)| !taken[i] && b.rule == v.rule && b.file == v.file)
                {
                    taken[bi] = true;
                    statuses[vi] = FindingStatus::PreExisting;
                }
            }
        }
        let fixed = baseline
            .into_iter()
            .zip(taken)
            .filter(|(_, t)| !*t)
            .map(|(b, _)| b)
            .collect();
        self.baseline = Some(BaselineDiff {
            path: path.to_string(),
            statuses,
            fixed,
        });
    }

    /// Whether this run should fail the build at `threshold` severity.
    ///
    /// Without a baseline, any finding at or above the threshold fails.
    /// With one, only *new* findings at or above the threshold fail —
    /// pre-existing debt never gates, fixed findings never rescue.
    pub fn fails(&self, threshold: Level) -> bool {
        match &self.baseline {
            Some(b) => self
                .violations
                .iter()
                .zip(&b.statuses)
                .any(|(v, s)| *s == FindingStatus::New && rule_level(v.rule) >= threshold),
            None => self
                .violations
                .iter()
                .any(|v| rule_level(v.rule) >= threshold),
        }
    }

    /// Counts of (new, pre-existing) findings under the baseline diff.
    fn baseline_counts(diff: &BaselineDiff) -> (usize, usize) {
        let new = diff
            .statuses
            .iter()
            .filter(|s| **s == FindingStatus::New)
            .count();
        (new, diff.statuses.len() - new)
    }

    /// Serialize to the stable JSON schema.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"tool\": \"mdbs-lint\",");
        let _ = writeln!(s, "  \"version\": {},", json_str(VERSION));
        let _ = writeln!(s, "  \"files_scanned\": {},", self.files_scanned);
        if let Some(ms) = self.wall_ms {
            let _ = writeln!(s, "  \"wall_clock_ms\": {ms},");
        }
        if let Some(c) = &self.cache {
            let _ = writeln!(
                s,
                "  \"cache\": {{ \"file_hits\": {}, \"file_misses\": {}, \"fn_hits\": {}, \"fn_misses\": {} }},",
                c.file_hits, c.file_misses, c.fn_hits, c.fn_misses
            );
        }
        let _ = writeln!(s, "  \"total_violations\": {},", self.violations.len());
        s.push_str("  \"by_rule\": {");
        let by_rule = self.by_rule();
        for (i, (rule, n)) in by_rule.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('\n');
            let _ = write!(s, "    {}: {n}", json_str(rule));
        }
        if !by_rule.is_empty() {
            s.push('\n');
            s.push_str("  ");
        }
        s.push_str("},\n");
        if let Some(b) = &self.baseline {
            let (new, pre) = Self::baseline_counts(b);
            let _ = writeln!(s, "  \"baseline\": {{");
            let _ = writeln!(s, "    \"path\": {},", json_str(&b.path));
            let _ = writeln!(s, "    \"new\": {new},");
            let _ = writeln!(s, "    \"pre_existing\": {pre},");
            let _ = writeln!(s, "    \"fixed\": {},", b.fixed.len());
            s.push_str("    \"fixed_findings\": [");
            for (i, f) in b.fixed.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push('\n');
                let _ = write!(
                    s,
                    "      {{ \"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {} }}",
                    json_str(&f.rule),
                    json_str(&f.file),
                    f.line,
                    json_str(&f.message)
                );
            }
            if !b.fixed.is_empty() {
                s.push_str("\n    ");
            }
            s.push_str("]\n  },\n");
        }
        let _ = writeln!(s, "  \"graphs\": {},", self.graphs.to_json());
        s.push_str("  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('\n');
            let status = self
                .baseline
                .as_ref()
                .and_then(|b| b.statuses.get(i))
                .map(|st| match st {
                    FindingStatus::New => ", \"status\": \"new\"".to_string(),
                    FindingStatus::PreExisting => ", \"status\": \"pre-existing\"".to_string(),
                })
                .unwrap_or_default();
            let _ = write!(
                s,
                "    {{ \"rule\": {}, \"file\": {}, \"line\": {}, \"col\": {}, \"level\": {}{status}, \"message\": {} }}",
                json_str(v.rule),
                json_str(&v.file),
                v.line,
                v.col,
                json_str(level_name(rule_level(v.rule))),
                json_str(&v.message)
            );
        }
        if !self.violations.is_empty() {
            s.push('\n');
            s.push_str("  ");
        }
        s.push_str("]\n}\n");
        s
    }

    /// Serialize as a SARIF 2.1.0 log for GitHub code scanning. The
    /// `rules` array always carries the full rule set (suppressible plus
    /// meta-rules) so `ruleIndex` stays stable across runs. Under
    /// `--baseline`, each result carries a SARIF `baselineState`.
    pub fn to_sarif(&self) -> String {
        let all_rules = crate::rules::all_rules();
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(
            s,
            "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\","
        );
        let _ = writeln!(s, "  \"version\": \"2.1.0\",");
        s.push_str("  \"runs\": [\n    {\n      \"tool\": {\n        \"driver\": {\n");
        let _ = writeln!(s, "          \"name\": \"mdbs-lint\",");
        let _ = writeln!(s, "          \"version\": {},", json_str(VERSION));
        s.push_str("          \"rules\": [");
        for (i, rule) in all_rules.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('\n');
            let _ = write!(
                s,
                "            {{ \"id\": {}, \"shortDescription\": {{ \"text\": {} }}, \
                 \"defaultConfiguration\": {{ \"level\": {} }} }}",
                json_str(rule),
                json_str(rule_description(rule)),
                json_str(level_name(rule_level(rule)))
            );
        }
        s.push_str("\n          ]\n        }\n      },\n");
        s.push_str("      \"results\": [");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('\n');
            let rule_index = all_rules
                .iter()
                .position(|r| *r == v.rule)
                .unwrap_or(all_rules.len() - 1);
            let baseline_state = self
                .baseline
                .as_ref()
                .and_then(|b| b.statuses.get(i))
                .map(|st| match st {
                    FindingStatus::New => "\n          \"baselineState\": \"new\",".to_string(),
                    FindingStatus::PreExisting => {
                        "\n          \"baselineState\": \"unchanged\",".to_string()
                    }
                })
                .unwrap_or_default();
            let _ = write!(
                s,
                "        {{\n          \"ruleId\": {},\n          \"ruleIndex\": {},{baseline_state}\n          \
                 \"level\": {},\n          \"message\": {{ \"text\": {} }},\n          \
                 \"locations\": [\n            {{ \"physicalLocation\": {{\n              \
                 \"artifactLocation\": {{ \"uri\": {}, \"uriBaseId\": \"%SRCROOT%\" }},\n              \
                 \"region\": {{ \"startLine\": {}, \"startColumn\": {} }}\n            }} }}\n          \
                 ]\n        }}",
                json_str(v.rule),
                rule_index,
                json_str(level_name(rule_level(v.rule))),
                json_str(&v.message),
                json_str(&v.file),
                v.line.max(1),
                v.col.max(1)
            );
        }
        if !self.violations.is_empty() {
            s.push_str("\n      ");
        }
        s.push_str("]\n    }\n  ]\n}\n");
        s
    }

    /// Render compiler-style human diagnostics.
    pub fn render_human(&self) -> String {
        let mut s = String::new();
        for (i, v) in self.violations.iter().enumerate() {
            let status = self
                .baseline
                .as_ref()
                .and_then(|b| b.statuses.get(i))
                .map(|st| match st {
                    FindingStatus::New => " (new)",
                    FindingStatus::PreExisting => " (pre-existing)",
                })
                .unwrap_or("");
            let _ = writeln!(
                s,
                "{}[{}]: {}{status}\n  --> {}:{}:{}",
                level_name(rule_level(v.rule)),
                v.rule,
                v.message,
                v.file,
                v.line,
                v.col
            );
        }
        if self.violations.is_empty() {
            let _ = writeln!(
                s,
                "mdbs-lint: {} files scanned, no violations",
                self.files_scanned
            );
        } else {
            let _ = writeln!(
                s,
                "mdbs-lint: {} violation(s) across {} file(s) scanned",
                self.violations.len(),
                self.files_scanned
            );
        }
        if let Some(b) = &self.baseline {
            let (new, pre) = Self::baseline_counts(b);
            let _ = writeln!(
                s,
                "mdbs-lint: baseline {}: {} new, {} pre-existing, {} fixed",
                b.path,
                new,
                pre,
                b.fixed.len()
            );
        }
        if let Some(c) = &self.cache {
            let _ = writeln!(
                s,
                "mdbs-lint: cache: {}/{} files reused, {}/{} fns replayed",
                c.file_hits,
                c.file_hits + c.file_misses,
                c.fn_hits,
                c.fn_hits + c.fn_misses
            );
        }
        s
    }
}

/// Load baseline findings from a prior `--json` report.
pub fn baseline_from_json(text: &str) -> Result<Vec<BaselineFinding>, String> {
    let doc = crate::jsonv::parse(text).map_err(|e| format!("invalid baseline JSON: {e}"))?;
    let arr = doc
        .get("violations")
        .and_then(Json::as_arr)
        .ok_or_else(|| "baseline report has no \"violations\" array".to_string())?;
    arr.iter()
        .map(|o| {
            Ok(BaselineFinding {
                rule: o
                    .get("rule")
                    .and_then(Json::as_str)
                    .ok_or("baseline violation missing \"rule\"")?
                    .to_string(),
                file: o
                    .get("file")
                    .and_then(Json::as_str)
                    .ok_or("baseline violation missing \"file\"")?
                    .to_string(),
                line: o.get("line").and_then(Json::as_u32).unwrap_or(0),
                message: o
                    .get("message")
                    .and_then(Json::as_str)
                    .ok_or("baseline violation missing \"message\"")?
                    .to_string(),
            })
        })
        .collect::<Result<Vec<_>, &str>>()
        .map_err(|e| e.to_string())
}

/// Escape a string per RFC 8259.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bare(files_scanned: usize, violations: Vec<Violation>) -> Report {
        Report {
            files_scanned,
            violations,
            graphs: Graphs::default(),
            wall_ms: None,
            cache: None,
            baseline: None,
        }
    }

    fn vio(rule: &'static str, file: &str, line: u32, message: &str) -> Violation {
        Violation {
            rule,
            file: file.to_string(),
            line,
            col: 1,
            message: message.to_string(),
        }
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(json_str("em—dash"), "\"em—dash\"");
    }

    #[test]
    fn empty_report_shape() {
        let r = bare(3, vec![]);
        let j = r.to_json();
        assert!(j.contains("\"total_violations\": 0"));
        assert!(j.contains("\"by_rule\": {}"));
        assert!(j.contains("\"graphs\": {"));
        assert!(j.contains("\"lock_order\""));
        assert!(j.contains("\"channels\""));
        assert!(j.contains("\"cfgs\""));
        assert!(j.contains("\"violations\": []"));
        assert!(!j.contains("wall_clock_ms"));
        assert!(!j.contains("\"cache\""));
        assert!(!j.contains("\"baseline\""));
        assert!(r.is_clean());
    }

    #[test]
    fn wall_clock_emitted_when_timed() {
        let mut r = bare(3, vec![]);
        r.wall_ms = Some(412);
        assert!(r.to_json().contains("\"wall_clock_ms\": 412,"));
    }

    #[test]
    fn cache_stats_emitted_when_present() {
        let mut r = bare(3, vec![]);
        r.cache = Some(CacheStats {
            file_hits: 2,
            file_misses: 1,
            fn_hits: 9,
            fn_misses: 4,
        });
        let j = r.to_json();
        assert!(j.contains(
            "\"cache\": { \"file_hits\": 2, \"file_misses\": 1, \"fn_hits\": 9, \"fn_misses\": 4 }"
        ));
    }

    #[test]
    fn levels_in_json_and_sarif() {
        let r = bare(
            1,
            vec![
                vio(crate::rules::NO_PANIC, "crates/core/src/gtm1.rs", 7, "m"),
                vio(crate::rules::STALE_ALLOW, "crates/core/src/gtm1.rs", 9, "s"),
            ],
        );
        let j = r.to_json();
        assert!(j.contains("\"level\": \"error\""));
        assert!(j.contains("\"level\": \"warning\""));
        let s = r.to_sarif();
        assert!(s.contains("\"level\": \"error\""));
        assert!(s.contains("\"level\": \"warning\""));
    }

    #[test]
    fn sarif_shape() {
        let r = bare(
            1,
            vec![Violation {
                rule: crate::rules::NO_PANIC,
                file: "crates/core/src/gtm1.rs".to_string(),
                line: 7,
                col: 3,
                message: "a \"quoted\" message".to_string(),
            }],
        );
        let s = r.to_sarif();
        assert!(s.contains("\"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\""));
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"name\": \"mdbs-lint\""));
        assert!(s.contains("\"ruleId\": \"no-panic-in-scheduler\""));
        assert!(s.contains("\"ruleIndex\": 0"));
        assert!(s.contains("\"startLine\": 7"));
        assert!(s.contains("a \\\"quoted\\\" message"));
        // Every suppressible rule plus the meta-rules is declared.
        for rule in crate::rules::RULES {
            assert!(s.contains(&format!("\"id\": \"{rule}\"")), "{rule}");
        }
        assert!(s.contains("\"id\": \"stale-allow\""));
        // No baseline applied, no baselineState.
        assert!(!s.contains("baselineState"));
    }

    #[test]
    fn baseline_classification() {
        let mut r = bare(
            2,
            vec![
                vio(crate::rules::NO_PANIC, "a.rs", 3, "panic at 3"),
                vio(crate::rules::NO_PANIC, "a.rs", 9, "panic at 9"),
                vio(crate::rules::NO_SILENT_SEND_DROP, "b.rs", 1, "dropped send"),
            ],
        );
        let baseline = vec![
            // Exact match for the first finding.
            BaselineFinding {
                rule: "no-panic-in-scheduler".to_string(),
                file: "a.rs".to_string(),
                line: 3,
                message: "panic at 3".to_string(),
            },
            // Fixed: nothing in the current run matches.
            BaselineFinding {
                rule: "lock-order".to_string(),
                file: "c.rs".to_string(),
                line: 5,
                message: "gone".to_string(),
            },
        ];
        r.apply_baseline("base.json", baseline);
        let b = r.baseline.as_ref().expect("baseline set");
        assert_eq!(
            b.statuses,
            vec![
                FindingStatus::PreExisting,
                FindingStatus::New,
                FindingStatus::New,
            ]
        );
        assert_eq!(b.fixed.len(), 1);
        assert_eq!(b.fixed[0].rule, "lock-order");
        // Gate logic: new errors fail, pre-existing alone would not.
        assert!(r.fails(Level::Error));
        let j = r.to_json();
        assert!(j.contains("\"status\": \"pre-existing\""));
        assert!(j.contains("\"status\": \"new\""));
        assert!(j.contains("\"fixed\": 1"));
        let s = r.to_sarif();
        assert!(s.contains("\"baselineState\": \"unchanged\""));
        assert!(s.contains("\"baselineState\": \"new\""));
    }

    #[test]
    fn baseline_line_drift_still_matches() {
        // Message embeds a line number that moved; (rule, file) fallback
        // should still classify it as pre-existing.
        let mut r = bare(
            1,
            vec![vio(crate::rules::NO_PANIC, "a.rs", 14, "panic at 14")],
        );
        r.apply_baseline(
            "base.json",
            vec![BaselineFinding {
                rule: "no-panic-in-scheduler".to_string(),
                file: "a.rs".to_string(),
                line: 3,
                message: "panic at 3".to_string(),
            }],
        );
        let b = r.baseline.as_ref().expect("baseline set");
        assert_eq!(b.statuses, vec![FindingStatus::PreExisting]);
        assert!(b.fixed.is_empty());
        assert!(!r.fails(Level::Note));
    }

    #[test]
    fn fails_respects_threshold() {
        let warn_only = bare(1, vec![vio(crate::rules::STALE_ALLOW, "a.rs", 1, "stale")]);
        assert!(warn_only.fails(Level::Note));
        assert!(warn_only.fails(Level::Warning));
        assert!(!warn_only.fails(Level::Error));
        let err = bare(1, vec![vio(crate::rules::NO_PANIC, "a.rs", 1, "p")]);
        assert!(err.fails(Level::Error));
        assert!(bare(0, vec![]).fails(Level::Note) == false);
    }

    #[test]
    fn baseline_from_json_reads_own_output() {
        let r = bare(
            1,
            vec![vio(
                crate::rules::NO_PANIC,
                "a.rs",
                3,
                "a \"quoted\" message",
            )],
        );
        let loaded = baseline_from_json(&r.to_json()).expect("parse own output");
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].rule, "no-panic-in-scheduler");
        assert_eq!(loaded[0].message, "a \"quoted\" message");
        assert!(baseline_from_json("{}").is_err());
        assert!(baseline_from_json("not json").is_err());
    }
}
