//! Machine-readable and human-readable lint reports.
//!
//! The JSON schema (stable; CI parses it):
//!
//! ```json
//! {
//!   "tool": "mdbs-lint",
//!   "version": "0.1.0",
//!   "files_scanned": 61,
//!   "wall_clock_ms": 412,
//!   "total_violations": 2,
//!   "by_rule": { "no-panic-in-scheduler": 2 },
//!   "graphs": {
//!     "lock_order": { "nodes": [...], "edges": [...], "cycles": [...] },
//!     "channel_topology": { "channels": [
//!       { "tx": "...", "rx": "...", "file": "...", "line": 1,
//!         "created_in": "...", "senders": [...], "receivers": [...] } ] },
//!     "cfgs": [ { "fn": "Gtm2::pump", "file": "...", "line": 1,
//!                 "blocks": 9, "edges": 11 } ]
//!   },
//!   "violations": [
//!     { "rule": "no-panic-in-scheduler", "file": "crates/core/src/gtm1.rs",
//!       "line": 337, "col": 40, "message": "..." }
//!   ]
//! }
//! ```
//!
//! `wall_clock_ms` appears only on timed workspace runs — CI enforces the
//! lint self-performance budget against it. [`Report::to_sarif`] emits
//! the same findings as SARIF 2.1.0 for GitHub code scanning.
//!
//! Hand-written emission — the analyzer is dependency-free by design, so
//! it can never be the crate that drags a vendored tree into the build.

use crate::graph::Graphs;
use crate::rules::{rule_description, Violation};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Tool version stamped into every report.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

/// The outcome of one analysis run.
#[derive(Clone, Debug)]
pub struct Report {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// All violations, sorted by file/line/col/rule.
    pub violations: Vec<Violation>,
    /// Lock-order and channel-topology graphs from the interprocedural pass.
    pub graphs: Graphs,
    /// Wall clock of the full sweep in milliseconds; `Some` only for
    /// timed workspace runs (the CI perf budget reads it).
    pub wall_ms: Option<u64>,
}

impl Report {
    /// True iff the run found nothing.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Violation counts keyed by rule name.
    pub fn by_rule(&self) -> BTreeMap<&'static str, usize> {
        let mut counts = BTreeMap::new();
        for v in &self.violations {
            *counts.entry(v.rule).or_insert(0) += 1;
        }
        counts
    }

    /// Serialize to the stable JSON schema.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"tool\": \"mdbs-lint\",");
        let _ = writeln!(s, "  \"version\": {},", json_str(VERSION));
        let _ = writeln!(s, "  \"files_scanned\": {},", self.files_scanned);
        if let Some(ms) = self.wall_ms {
            let _ = writeln!(s, "  \"wall_clock_ms\": {ms},");
        }
        let _ = writeln!(s, "  \"total_violations\": {},", self.violations.len());
        s.push_str("  \"by_rule\": {");
        let by_rule = self.by_rule();
        for (i, (rule, n)) in by_rule.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('\n');
            let _ = write!(s, "    {}: {n}", json_str(rule));
        }
        if !by_rule.is_empty() {
            s.push('\n');
            s.push_str("  ");
        }
        s.push_str("},\n");
        let _ = writeln!(s, "  \"graphs\": {},", self.graphs.to_json());
        s.push_str("  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('\n');
            let _ = write!(
                s,
                "    {{ \"rule\": {}, \"file\": {}, \"line\": {}, \"col\": {}, \"message\": {} }}",
                json_str(v.rule),
                json_str(&v.file),
                v.line,
                v.col,
                json_str(&v.message)
            );
        }
        if !self.violations.is_empty() {
            s.push('\n');
            s.push_str("  ");
        }
        s.push_str("]\n}\n");
        s
    }

    /// Serialize as a SARIF 2.1.0 log for GitHub code scanning. The
    /// `rules` array always carries the full rule set (suppressible plus
    /// meta-rules) so `ruleIndex` stays stable across runs.
    pub fn to_sarif(&self) -> String {
        let all_rules: Vec<&str> = crate::rules::RULES
            .iter()
            .copied()
            .chain([
                crate::rules::BAD_ALLOW,
                crate::rules::STALE_ALLOW,
                crate::rules::PARSE_ERROR,
            ])
            .collect();
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(
            s,
            "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\","
        );
        let _ = writeln!(s, "  \"version\": \"2.1.0\",");
        s.push_str("  \"runs\": [\n    {\n      \"tool\": {\n        \"driver\": {\n");
        let _ = writeln!(s, "          \"name\": \"mdbs-lint\",");
        let _ = writeln!(s, "          \"version\": {},", json_str(VERSION));
        s.push_str("          \"rules\": [");
        for (i, rule) in all_rules.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('\n');
            let _ = write!(
                s,
                "            {{ \"id\": {}, \"shortDescription\": {{ \"text\": {} }} }}",
                json_str(rule),
                json_str(rule_description(rule))
            );
        }
        s.push_str("\n          ]\n        }\n      },\n");
        s.push_str("      \"results\": [");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('\n');
            let rule_index = all_rules
                .iter()
                .position(|r| *r == v.rule)
                .unwrap_or(all_rules.len() - 1);
            let _ = write!(
                s,
                "        {{\n          \"ruleId\": {},\n          \"ruleIndex\": {},\n          \
                 \"level\": \"error\",\n          \"message\": {{ \"text\": {} }},\n          \
                 \"locations\": [\n            {{ \"physicalLocation\": {{\n              \
                 \"artifactLocation\": {{ \"uri\": {}, \"uriBaseId\": \"%SRCROOT%\" }},\n              \
                 \"region\": {{ \"startLine\": {}, \"startColumn\": {} }}\n            }} }}\n          \
                 ]\n        }}",
                json_str(v.rule),
                rule_index,
                json_str(&v.message),
                json_str(&v.file),
                v.line.max(1),
                v.col.max(1)
            );
        }
        if !self.violations.is_empty() {
            s.push_str("\n      ");
        }
        s.push_str("]\n    }\n  ]\n}\n");
        s
    }

    /// Render compiler-style human diagnostics.
    pub fn render_human(&self) -> String {
        let mut s = String::new();
        for v in &self.violations {
            let _ = writeln!(
                s,
                "error[{}]: {}\n  --> {}:{}:{}",
                v.rule, v.message, v.file, v.line, v.col
            );
        }
        if self.violations.is_empty() {
            let _ = writeln!(
                s,
                "mdbs-lint: {} files scanned, no violations",
                self.files_scanned
            );
        } else {
            let _ = writeln!(
                s,
                "mdbs-lint: {} violation(s) across {} file(s) scanned",
                self.violations.len(),
                self.files_scanned
            );
        }
        s
    }
}

/// Escape a string per RFC 8259.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(json_str("em—dash"), "\"em—dash\"");
    }

    #[test]
    fn empty_report_shape() {
        let r = Report {
            files_scanned: 3,
            violations: vec![],
            graphs: Graphs::default(),
            wall_ms: None,
        };
        let j = r.to_json();
        assert!(j.contains("\"total_violations\": 0"));
        assert!(j.contains("\"by_rule\": {}"));
        assert!(j.contains("\"graphs\": {"));
        assert!(j.contains("\"lock_order\""));
        assert!(j.contains("\"channels\""));
        assert!(j.contains("\"cfgs\""));
        assert!(j.contains("\"violations\": []"));
        assert!(!j.contains("wall_clock_ms"));
        assert!(r.is_clean());
    }

    #[test]
    fn wall_clock_emitted_when_timed() {
        let r = Report {
            files_scanned: 3,
            violations: vec![],
            graphs: Graphs::default(),
            wall_ms: Some(412),
        };
        assert!(r.to_json().contains("\"wall_clock_ms\": 412,"));
    }

    #[test]
    fn sarif_shape() {
        let r = Report {
            files_scanned: 1,
            violations: vec![Violation {
                rule: crate::rules::NO_PANIC,
                file: "crates/core/src/gtm1.rs".to_string(),
                line: 7,
                col: 3,
                message: "a \"quoted\" message".to_string(),
            }],
            graphs: Graphs::default(),
            wall_ms: None,
        };
        let s = r.to_sarif();
        assert!(s.contains("\"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\""));
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"name\": \"mdbs-lint\""));
        assert!(s.contains("\"ruleId\": \"no-panic-in-scheduler\""));
        assert!(s.contains("\"ruleIndex\": 0"));
        assert!(s.contains("\"startLine\": 7"));
        assert!(s.contains("a \\\"quoted\\\" message"));
        // Every suppressible rule plus the meta-rules is declared.
        for rule in crate::rules::RULES {
            assert!(s.contains(&format!("\"id\": \"{rule}\"")), "{rule}");
        }
        assert!(s.contains("\"id\": \"stale-allow\""));
    }
}
