//! The `mdbs-lint` rule engine.
//!
//! Eleven workspace invariants, each motivated by the paper's conservatism
//! argument (Section 3: aborting a global transaction is prohibitively
//! expensive, so the scheduler must not fail where it can refuse):
//!
//! | rule | scope | invariant |
//! |------|-------|-----------|
//! | `no-panic-in-scheduler` | `crates/core/src`, `crates/localdb/src` | no `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/`unimplemented!`/indexing in protocol paths |
//! | `no-lock-across-send` | workspace | no channel operation — direct or inside a callee — while a lock guard may be live on any CFG path (`drop(guard)`/scope exit release it; a drop on one branch only does not) |
//! | `no-silent-send-drop` | workspace | `let _ = ...send(...)` is forbidden — count the drop instead |
//! | `metric-docs-sync` | workspace + README.md | every literal metric name registered on the instrument `Registry` is unique per kind and documented |
//! | `exhaustive-scheme-match` | `crates/core/src` | no `_ =>` arm in a `match` whose patterns name `SchemeEffect`/`QueueOp` |
//! | `lock-order-cycle` | workspace | the global lock-acquisition-order graph is acyclic |
//! | `channel-topology` | workspace | every channel someone sends into has a draining receiver |
//! | `blocking-in-pump` | workspace | no blocking call (`recv`, `join`, `wait`, `sleep`, `lock`) reachable from `Gtm2::pump` or the site-server loop |
//! | `guard-across-suspend` | workspace | no lock guard live across a suspension point (`.await`, `block_timeout`, park/yield) on any path, directly or through a may-suspend callee |
//! | `double-lock-path` | workspace | no re-acquisition of a held lock on any CFG path (including via a directly-called method on the same type) |
//! | `lost-wakeup` | pump-reachable fns | inside loops, state must not be checked before the waker is registered on any path into a suspension point |
//!
//! The first five are per-file (token-level); the rest run on per-function
//! CFGs ([`crate::cfg`]) with a worklist dataflow solver
//! ([`crate::dataflow`]) plus the interprocedural call graph built by
//! [`crate::parser`] → [`crate::facts`] → [`crate::graph`]. The pre-CFG
//! linear guard scan survives behind [`AnalyzeOptions::legacy_flow`]
//! (`--legacy-flow`) to diff engines; it skips the last three rules.
//!
//! Escape hatch: `// mdbs-lint: allow(<rule>) — <justification>` on the
//! same line or the line above suppresses one rule there; a directive
//! without a justification is itself reported (rule `bad-allow`).
//! `// mdbs-lint: allow(<rule>, scope=item) — <justification>` widens
//! the suppression to the whole item (fn/impl/struct) that starts after
//! the directive — for code whose *shape* trips a rule pervasively under
//! one shared invariant (e.g. the slot-indexed dense kernels), where a
//! per-line directive on every site would bury the real signal. The
//! justification must state the invariant; an item-scoped allow with no
//! following item is reported as `bad-allow`. A well-formed allow that
//! suppresses *zero* findings in the default-engine run is reported as
//! `stale-allow` (the `#[expect]` semantics): dead directives hide real
//! regressions behind the suppression they no longer need. Delimiter-
//! unbalanced files get a non-suppressible `parse-error` diagnostic
//! instead of a panic.
//!
//! Test code (`#[test]` / `#[cfg(test)]` items, files under `tests/`)
//! is exempt from every rule.

use crate::graph::Graphs;
use crate::lexer::{lex, Comment, TokKind, Token};
use std::cell::Cell;
use std::collections::BTreeMap;

/// Rule: panics forbidden in scheduler/protocol paths.
pub const NO_PANIC: &str = "no-panic-in-scheduler";
/// Rule: no lock guard live across a channel send/recv.
pub const NO_LOCK_ACROSS_SEND: &str = "no-lock-across-send";
/// Rule: no `let _ = ...send(...)`.
pub const NO_SILENT_SEND_DROP: &str = "no-silent-send-drop";
/// Rule: Registry metric names unique and documented in README.md.
pub const METRIC_DOCS_SYNC: &str = "metric-docs-sync";
/// Rule: no wildcard arms over `SchemeEffect`/`QueueOp` in crates/core.
pub const EXHAUSTIVE_SCHEME_MATCH: &str = "exhaustive-scheme-match";
/// Rule: the global lock-acquisition-order graph must be acyclic.
pub const LOCK_ORDER_CYCLE: &str = "lock-order-cycle";
/// Rule: every channel someone sends into must have a draining receiver.
pub const CHANNEL_TOPOLOGY: &str = "channel-topology";
/// Rule: no blocking call reachable from the scheduler pump loops.
pub const BLOCKING_IN_PUMP: &str = "blocking-in-pump";
/// Rule: no lock guard live across a suspension point on any path.
pub const GUARD_ACROSS_SUSPEND: &str = "guard-across-suspend";
/// Rule: no re-acquisition of a held lock along any CFG path.
pub const DOUBLE_LOCK_PATH: &str = "double-lock-path";
/// Rule: no state check before waker registration in pump loops.
pub const LOST_WAKEUP: &str = "lost-wakeup";
/// Meta-rule: malformed or unjustified allow directives.
pub const BAD_ALLOW: &str = "bad-allow";
/// Meta-rule: a well-formed allow directive that suppressed nothing in
/// the final run (not suppressible — delete the directive).
pub const STALE_ALLOW: &str = "stale-allow";
/// Meta-rule: delimiter imbalance kept the token-tree parser from
/// recovering full structure (not suppressible — fix the file).
pub const PARSE_ERROR: &str = "parse-error";

/// All suppressible rules (BAD_ALLOW, STALE_ALLOW and PARSE_ERROR cannot
/// be allowed away).
pub const RULES: [&str; 11] = [
    NO_PANIC,
    NO_LOCK_ACROSS_SEND,
    NO_SILENT_SEND_DROP,
    METRIC_DOCS_SYNC,
    EXHAUSTIVE_SCHEME_MATCH,
    LOCK_ORDER_CYCLE,
    CHANNEL_TOPOLOGY,
    BLOCKING_IN_PUMP,
    GUARD_ACROSS_SUSPEND,
    DOUBLE_LOCK_PATH,
    LOST_WAKEUP,
];

/// Every rule id the analyzer can emit: the suppressible set plus the
/// three meta-rules. Order matches the SARIF driver catalog.
pub fn all_rules() -> Vec<&'static str> {
    RULES
        .iter()
        .copied()
        .chain([BAD_ALLOW, STALE_ALLOW, PARSE_ERROR])
        .collect()
}

/// Map a rule name back to its canonical `&'static str` — the inverse
/// the fact-database decoder needs to rebuild [`Violation`]s (whose
/// `rule` field is a static string compared by pointer-free equality).
pub fn rule_by_name(name: &str) -> Option<&'static str> {
    all_rules().into_iter().find(|r| *r == name)
}

/// Diagnostic severity. `stale-allow` is hygiene (the code is clean, a
/// directive outlived its reason); everything else is a hard invariant.
/// Ordering is by severity, so `--fail-on` thresholds compare directly.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Informational.
    Note,
    /// Hygiene problem; the invariant itself still holds.
    Warning,
    /// Invariant violation.
    Error,
}

/// The severity of one rule's findings.
pub fn rule_level(rule: &str) -> Level {
    if rule == STALE_ALLOW {
        Level::Warning
    } else {
        Level::Error
    }
}

/// Lowercase level name, as emitted in JSON/SARIF and parsed by
/// `--fail-on`.
pub fn level_name(level: Level) -> &'static str {
    match level {
        Level::Note => "note",
        Level::Warning => "warning",
        Level::Error => "error",
    }
}

/// Parse a `--fail-on` threshold.
pub fn parse_level(s: &str) -> Option<Level> {
    match s {
        "note" => Some(Level::Note),
        "warning" => Some(Level::Warning),
        "error" => Some(Level::Error),
        _ => None,
    }
}

/// One-line rule description, emitted into the SARIF `rules` array.
pub fn rule_description(rule: &str) -> &'static str {
    match rule {
        NO_PANIC => "No panicking construct in scheduler/protocol paths.",
        NO_LOCK_ACROSS_SEND => "No channel operation while a lock guard may be live on any path.",
        NO_SILENT_SEND_DROP => "No silently discarded send result.",
        METRIC_DOCS_SYNC => "Registered metric names are unique per kind and README-documented.",
        EXHAUSTIVE_SCHEME_MATCH => "No wildcard arm in matches over protocol enums.",
        LOCK_ORDER_CYCLE => "The global lock-acquisition-order graph is acyclic.",
        CHANNEL_TOPOLOGY => "Every channel someone sends into has a draining receiver.",
        BLOCKING_IN_PUMP => "No blocking call reachable from the scheduler pump loops.",
        GUARD_ACROSS_SUSPEND => "No lock guard live across a suspension point on any path.",
        DOUBLE_LOCK_PATH => "No re-acquisition of a held lock along any CFG path.",
        LOST_WAKEUP => "No state check before waker registration on a path into a suspension.",
        BAD_ALLOW => "Allow directives must be well-formed and justified.",
        STALE_ALLOW => "Allow directives must suppress at least one finding.",
        PARSE_ERROR => "Files must parse to a balanced token tree.",
        _ => "mdbs-lint diagnostic.",
    }
}

/// One diagnostic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Rule identifier (one of the `pub const` names above).
    pub rule: &'static str,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable explanation.
    pub message: String,
}

/// A source file handed to the analyzer: workspace-relative path
/// (`/`-separated) plus contents.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// Full file contents.
    pub source: String,
}

/// Everything one analysis run produces: the surviving violations plus
/// the exportable graph artifacts.
#[derive(Clone, Debug)]
pub struct Analysis {
    /// All surviving (non-suppressed) violations, sorted by file, line,
    /// column, rule.
    pub violations: Vec<Violation>,
    /// Lock-order and channel-topology graphs.
    pub graphs: Graphs,
}

/// Engine options threaded from the CLI.
#[derive(Clone, Copy, Debug, Default)]
pub struct AnalyzeOptions {
    /// Use the pre-CFG linear guard scan for `no-lock-across-send` /
    /// lock-order edges and skip the three path-sensitive rules — the
    /// `--legacy-flow` engine-diffing mode. Stale-allow detection is
    /// also skipped (hit counts are only meaningful for the engine the
    /// directives target).
    pub legacy_flow: bool,
}

/// Analyze a set of sources plus the README (for `metric-docs-sync`)
/// with the default (CFG dataflow) engine.
pub fn analyze(files: &[SourceFile], readme: Option<&str>) -> Analysis {
    analyze_with(files, readme, AnalyzeOptions::default())
}

/// Analyze a set of sources plus the README: run the pure per-file
/// front end on every source, then [`aggregate`]. The serial,
/// cache-free entry point fixture tests use.
pub fn analyze_with(files: &[SourceFile], readme: Option<&str>, opts: AnalyzeOptions) -> Analysis {
    let artifacts: Vec<FileArtifacts> = files.iter().map(frontend).collect();
    aggregate(&artifacts, readme, opts, None)
}

/// An allow directive's effect, stripped of its hit counter: the rule it
/// suppresses and the (inclusive) line span it covers. Pure front-end
/// output — hit counting happens at aggregation, where the final set of
/// violations exists.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllowSpan {
    /// Suppressed rule id.
    pub rule: String,
    /// Directive line (first covered line).
    pub first: u32,
    /// Last covered line.
    pub last: u32,
}

/// One literal metric registration site. Cross-file uniqueness and the
/// README check replay these at aggregation in file order, so per-file
/// results stay position-independent (and cacheable).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricReg {
    /// Metric name literal.
    pub name: String,
    /// Implied kind (`counter`/`gauge`/`histogram`).
    pub kind: String,
    /// 1-based registration line.
    pub line: u32,
    /// 1-based registration column.
    pub col: u32,
}

/// Everything the per-file front end produces for one source file — a
/// pure function of `(path, contents)`, which is what makes it
/// content-addressable in the on-disk fact database
/// ([`crate::cache`]).
#[derive(Clone, Debug)]
pub struct FileArtifacts {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// FNV-1a fingerprint of the file contents.
    pub fingerprint: u64,
    /// Per-file violations *before* allow filtering (includes
    /// `bad-allow` and `parse-error`, which filtering never removes).
    pub raw: Vec<Violation>,
    /// Allow-directive spans, in directive order.
    pub allows: Vec<AllowSpan>,
    /// Literal metric registration sites, in token order.
    pub metrics: Vec<MetricReg>,
    /// Extracted function/struct facts for the interprocedural pass.
    pub facts: crate::facts::FileFacts,
}

/// The pure per-file front end: lex → strip test items → allow
/// directives → token rules → token-tree parse → fact extraction.
/// Depends on nothing but the one file, so its output is cached under
/// the file's content fingerprint and computed on a worker pool.
pub fn frontend(file: &SourceFile) -> FileArtifacts {
    let fingerprint = crate::cache::fingerprint(&file.source);
    let lexed = lex(&file.source);
    let tokens = strip_test_items(&lexed.tokens);
    let mut raw = Vec::new();
    let allows = parse_allow_spans(&file.path, &lexed.comments, &tokens, &mut raw);

    if in_scheduler_scope(&file.path) {
        rule_no_panic(&file.path, &tokens, &mut raw);
    }
    rule_silent_send_drop(&file.path, &tokens, &mut raw);
    let metrics = collect_metric_regs(&tokens);
    if file.path.starts_with("crates/core/src/") {
        rule_exhaustive_match(&file.path, &tokens, &mut raw);
    }

    // Token-tree parse + fact extraction for the graph pass. Delimiter
    // imbalance degrades to a diagnostic, never a panic.
    let parsed = crate::parser::parse(&tokens);
    let facts = crate::facts::extract(&file.path, &parsed.trees, parsed.errors);
    for e in &facts.parse_errors {
        raw.push(Violation {
            rule: PARSE_ERROR,
            file: file.path.clone(),
            line: e.line.max(1),
            col: e.col.max(1),
            message: format!(
                "delimiter imbalance: {} — graph analyses may be incomplete for this file",
                e.message
            ),
        });
    }

    FileArtifacts {
        path: file.path.clone(),
        fingerprint,
        raw,
        allows,
        metrics,
        facts,
    }
}

/// The aggregation stage: allow filtering (with fresh hit counters),
/// cross-file metric replay + README check, the interprocedural graph
/// pass (optionally through a per-function result cache), graph-rule
/// suppression and stale-allow detection. Deterministic in the
/// artifacts' order and content only — never in where they came from
/// (fresh front-end run, worker thread, or the on-disk fact database).
pub fn aggregate(
    files: &[FileArtifacts],
    readme: Option<&str>,
    opts: AnalyzeOptions,
    graph_cache: Option<&mut crate::graph::GraphCacheCtx>,
) -> Analysis {
    let mut violations = Vec::new();
    let allows: Vec<AllowDirectives> = files
        .iter()
        .map(|a| AllowDirectives::from_spans(&a.allows))
        .collect();
    for (art, allow) in files.iter().zip(&allows) {
        for v in &art.raw {
            // The meta-rules bypass suppression: a bad directive or a
            // parse failure cannot be allowed away.
            if v.rule == BAD_ALLOW || v.rule == PARSE_ERROR || !allow.suppresses(v.rule, v.line) {
                violations.push(v.clone());
            }
        }
    }
    let mut metrics = MetricTable::default();
    for art in files {
        metrics.replay(&art.path, &art.metrics);
    }
    if let Some(text) = readme {
        metrics.check_against_readme(text, &mut violations);
    }
    let fact_refs: Vec<&crate::facts::FileFacts> = files.iter().map(|a| &a.facts).collect();
    let graph = crate::graph::analyze_graph_incremental(&fact_refs, opts.legacy_flow, graph_cache);
    for v in graph.violations {
        let suppressed = files
            .iter()
            .zip(&allows)
            .any(|(art, a)| art.path == v.file && a.suppresses(v.rule, v.line));
        if !suppressed {
            violations.push(v);
        }
    }
    if !opts.legacy_flow {
        for (art, a) in files.iter().zip(&allows) {
            for e in &a.entries {
                if e.hits.get() == 0 {
                    violations.push(Violation {
                        rule: STALE_ALLOW,
                        file: art.path.clone(),
                        line: e.first,
                        col: 1,
                        message: format!(
                            "mdbs-lint allow({}) suppresses nothing — the code it covered no \
                             longer trips the rule; delete the directive so future violations \
                             surface",
                            e.rule
                        ),
                    });
                }
            }
        }
    }
    violations
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    Analysis {
        violations,
        graphs: graph.graphs,
    }
}

/// `no-panic-in-scheduler` applies to the protocol paths only.
fn in_scheduler_scope(path: &str) -> bool {
    path.starts_with("crates/core/src/") || path.starts_with("crates/localdb/src/")
}

// ---------------------------------------------------------------------------
// Allow directives
// ---------------------------------------------------------------------------

/// One well-formed, justified allow directive with a suppression-hit
/// counter (interior mutability: `suppresses` is called through shared
/// references during filtering, but stale-allow needs the tally).
struct AllowEntry {
    rule: String,
    /// Directive line. A line-scoped directive covers `first..=first+1`;
    /// an item-scoped one covers the whole item that starts after it.
    first: u32,
    last: u32,
    hits: Cell<u32>,
}

struct AllowDirectives {
    entries: Vec<AllowEntry>,
}

impl AllowDirectives {
    /// Rehydrate a directive table (hit counters at zero) from the
    /// front end's pure spans.
    fn from_spans(spans: &[AllowSpan]) -> Self {
        AllowDirectives {
            entries: spans
                .iter()
                .map(|s| AllowEntry {
                    rule: s.rule.clone(),
                    first: s.first,
                    last: s.last,
                    hits: Cell::new(0),
                })
                .collect(),
        }
    }

    /// A line-scoped directive on line N covers violations on lines N
    /// and N+1; an item-scoped one covers its whole recorded span. Every
    /// match bumps the entry's hit counter for stale-allow detection.
    fn suppresses(&self, rule: &str, line: u32) -> bool {
        let mut hit = false;
        for e in &self.entries {
            if e.rule == rule && e.first <= line && line <= e.last {
                e.hits.set(e.hits.get() + 1);
                hit = true;
            }
        }
        hit
    }
}

/// Parse allow directives out of a file's comments: well-formed,
/// justified ones become [`AllowSpan`]s; malformed ones push `bad-allow`
/// into `out`.
fn parse_allow_spans(
    path: &str,
    comments: &[Comment],
    tokens: &[Token],
    out: &mut Vec<Violation>,
) -> Vec<AllowSpan> {
    let mut entries = Vec::new();
    {
        for c in comments {
            let Some(pos) = c.text.find("mdbs-lint:") else {
                continue;
            };
            let rest = c.text[pos + "mdbs-lint:".len()..].trim_start();
            let Some(inner) = rest.strip_prefix("allow(") else {
                out.push(Violation {
                    rule: BAD_ALLOW,
                    file: path.to_string(),
                    line: c.line,
                    col: 1,
                    message: format!(
                        "malformed mdbs-lint directive (expected `mdbs-lint: allow(<rule>) — \
                         <justification>`): `{}`",
                        c.text.trim()
                    ),
                });
                continue;
            };
            let Some(close) = inner.find(')') else {
                out.push(Violation {
                    rule: BAD_ALLOW,
                    file: path.to_string(),
                    line: c.line,
                    col: 1,
                    message: "unterminated mdbs-lint allow directive".to_string(),
                });
                continue;
            };
            let spec = inner[..close].trim();
            let (rule, scope_arg) = match spec.split_once(',') {
                Some((r, arg)) => (r.trim(), Some(arg.trim())),
                None => (spec, None),
            };
            // Prose that *describes* the syntax (`allow(<rule>)`,
            // `allow(...)`) is not a directive: only rule-shaped names
            // are interpreted, so typos still get flagged below.
            if !rule
                .chars()
                .all(|c| c.is_ascii_lowercase() || c == '-' || c == '_')
                || rule.is_empty()
            {
                continue;
            }
            let item_scoped = match scope_arg {
                None => false,
                Some("scope=item") => true,
                Some(other) => {
                    out.push(Violation {
                        rule: BAD_ALLOW,
                        file: path.to_string(),
                        line: c.line,
                        col: 1,
                        message: format!(
                            "unknown mdbs-lint allow argument `{other}` (supported: scope=item)"
                        ),
                    });
                    continue;
                }
            };
            let justification = inner[close + 1..]
                .trim_start_matches(|ch: char| {
                    ch.is_whitespace() || ch == '—' || ch == '–' || ch == '-' || ch == ':'
                })
                .trim();
            if !RULES.contains(&rule) {
                out.push(Violation {
                    rule: BAD_ALLOW,
                    file: path.to_string(),
                    line: c.line,
                    col: 1,
                    message: format!("mdbs-lint allow names unknown rule `{rule}`"),
                });
            } else if justification.is_empty() {
                out.push(Violation {
                    rule: BAD_ALLOW,
                    file: path.to_string(),
                    line: c.line,
                    col: 1,
                    message: format!(
                        "mdbs-lint allow({rule}) has no justification — write \
                         `mdbs-lint: allow({rule}) — <why this cannot fire>`"
                    ),
                });
            } else if item_scoped {
                // The directive covers the next item: from the first
                // token strictly below the comment through the item's
                // closing `}` or `;`.
                let Some(start) = tokens.iter().position(|t| t.line > c.line) else {
                    out.push(Violation {
                        rule: BAD_ALLOW,
                        file: path.to_string(),
                        line: c.line,
                        col: 1,
                        message: format!(
                            "mdbs-lint allow({rule}, scope=item) has no following item to cover"
                        ),
                    });
                    continue;
                };
                let end = skip_item(tokens, start);
                let last_line = tokens[start..end]
                    .last()
                    .map_or(c.line + 1, |t| t.line)
                    .max(c.line + 1);
                entries.push(AllowSpan {
                    rule: rule.to_string(),
                    first: c.line,
                    last: last_line,
                });
            } else {
                entries.push(AllowSpan {
                    rule: rule.to_string(),
                    first: c.line,
                    last: c.line + 1,
                });
            }
        }
    }
    entries
}

// ---------------------------------------------------------------------------
// Test-item stripping
// ---------------------------------------------------------------------------

/// Remove items annotated with an attribute containing the ident `test`
/// (`#[test]`, `#[cfg(test)]`, `#[cfg(all(test, ...))]`) — the following
/// item (through its `;` or matching `}`) is dropped. Items are balanced,
/// so the surviving stream keeps consistent brace depth.
fn strip_test_items(tokens: &[Token]) -> Vec<Token> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct("#") && tokens.get(i + 1).is_some_and(|t| t.is_punct("[")) {
            let close = match matching(tokens, i + 1, "[", "]") {
                Some(j) => j,
                None => {
                    out.push(tokens[i].clone());
                    i += 1;
                    continue;
                }
            };
            let has_test = tokens[i + 2..close].iter().any(|t| t.is_ident("test"));
            if !has_test {
                out.extend(tokens[i..=close].iter().cloned());
                i = close + 1;
                continue;
            }
            i = close + 1;
            // Further attributes on the same item are part of it.
            while i < tokens.len()
                && tokens[i].is_punct("#")
                && tokens.get(i + 1).is_some_and(|t| t.is_punct("["))
            {
                match matching(tokens, i + 1, "[", "]") {
                    Some(j) => i = j + 1,
                    None => break,
                }
            }
            i = skip_item(tokens, i);
        } else {
            out.push(tokens[i].clone());
            i += 1;
        }
    }
    out
}

/// Find the index of the token matching the opener at `open_idx`.
fn matching(tokens: &[Token], open_idx: usize, open: &str, close: &str) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().skip(open_idx) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Skip one item starting at `i`: through the first `;` at bracket depth
/// zero, or through the matching `}` of the first body brace.
fn skip_item(tokens: &[Token], mut i: usize) -> usize {
    let mut paren = 0i32;
    let mut bracket = 0i32;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" => paren += 1,
                ")" => paren -= 1,
                "[" => bracket += 1,
                "]" => bracket -= 1,
                "{" if paren == 0 && bracket == 0 => {
                    return match matching(tokens, i, "{", "}") {
                        Some(j) => j + 1,
                        None => tokens.len(),
                    };
                }
                ";" if paren == 0 && bracket == 0 => return i + 1,
                _ => {}
            }
        }
        i += 1;
    }
    i
}

// ---------------------------------------------------------------------------
// Rule 1: no-panic-in-scheduler
// ---------------------------------------------------------------------------

/// Identifiers that may legitimately precede `[` without forming an index
/// expression (`return [a, b]`, `match [x] {...}`).
const NON_INDEX_KEYWORDS: [&str; 22] = [
    "in", "return", "break", "if", "else", "match", "loop", "while", "move", "mut", "ref", "as",
    "where", "unsafe", "dyn", "impl", "for", "let", "const", "static", "use", "type",
];

fn rule_no_panic(path: &str, tokens: &[Token], out: &mut Vec<Violation>) {
    for (i, t) in tokens.iter().enumerate() {
        match t.kind {
            TokKind::Ident if t.text == "unwrap" || t.text == "expect" => {
                let method_call = i > 0
                    && tokens[i - 1].is_punct(".")
                    && tokens.get(i + 1).is_some_and(|n| n.is_punct("("));
                if method_call {
                    out.push(Violation {
                        rule: NO_PANIC,
                        file: path.to_string(),
                        line: t.line,
                        col: t.col,
                        message: format!(
                            "`.{}()` can panic the scheduler — route the failure through \
                             `SchemeEffect::ProtocolViolation` or a `Result`",
                            t.text
                        ),
                    });
                }
            }
            TokKind::Ident
                if matches!(
                    t.text.as_str(),
                    "panic" | "unreachable" | "todo" | "unimplemented"
                ) && tokens.get(i + 1).is_some_and(|n| n.is_punct("!")) =>
            {
                out.push(Violation {
                    rule: NO_PANIC,
                    file: path.to_string(),
                    line: t.line,
                    col: t.col,
                    message: format!(
                        "`{}!` aborts the scheduler — protocol paths must degrade to \
                         `ProtocolViolation` effects instead",
                        t.text
                    ),
                });
            }
            TokKind::Punct if t.text == "[" => {
                let prev_is_place = i > 0
                    && match tokens[i - 1].kind {
                        TokKind::Ident => {
                            !NON_INDEX_KEYWORDS.contains(&tokens[i - 1].text.as_str())
                        }
                        TokKind::Punct => tokens[i - 1].text == ")" || tokens[i - 1].text == "]",
                        _ => false,
                    };
                if prev_is_place {
                    // `x[0]` with a literal constant index is a deliberate
                    // fixed-layout access (e.g. `waited_kind[1]`), not a
                    // data-dependent panic path.
                    if let Some(close) = matching(tokens, i, "[", "]") {
                        let inner = &tokens[i + 1..close];
                        let literal_only = inner.len() == 1
                            && inner[0].kind == TokKind::Literal
                            && inner[0].text.starts_with(|c: char| c.is_ascii_digit());
                        // `x[..]` (full-range slice) cannot go out of
                        // bounds; any bounded range still can.
                        let full_range =
                            inner.len() == 2 && inner[0].is_punct(".") && inner[1].is_punct(".");
                        if !literal_only && !full_range && !inner.is_empty() {
                            out.push(Violation {
                                rule: NO_PANIC,
                                file: path.to_string(),
                                line: t.line,
                                col: t.col,
                                message: "index expression can panic on out-of-bounds — use \
                                          `.get()` and handle the miss"
                                    .to_string(),
                            });
                        }
                    }
                }
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 2: no-lock-across-send — now flow-sensitive and interprocedural,
// implemented on the fact representation in `crate::graph::analyze_graph`.
// ---------------------------------------------------------------------------

/// Scan a `let` statement from the `let` at `start`. Returns
/// `(index after ';', binding name, binding is a live lock guard)` or
/// None when this isn't a plain statement (no terminating `;`).
fn scan_let_statement(tokens: &[Token], start: usize) -> Option<(usize, Option<String>, bool)> {
    // Binding: `let [mut] <ident>` — anything fancier (tuple/struct
    // patterns) is never a lock guard in this codebase.
    let mut j = start + 1;
    if tokens.get(j).is_some_and(|t| t.is_ident("mut")) {
        j += 1;
    }
    let binding = tokens
        .get(j)
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.clone());
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut brace = 0i32;
    let mut lock_close: Option<usize> = None;
    let mut k = start + 1;
    let end = loop {
        let t = tokens.get(k)?;
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" => paren += 1,
                ")" => paren -= 1,
                "[" => bracket += 1,
                "]" => bracket -= 1,
                "{" => brace += 1,
                "}" => {
                    brace -= 1;
                    if brace < 0 {
                        // Ran off the enclosing block without a `;` —
                        // not a statement after all.
                        return None;
                    }
                }
                ";" if paren == 0 && bracket == 0 && brace == 0 => break k,
                _ => {}
            }
        } else if t.is_ident("lock")
            && k > 0
            && tokens[k - 1].is_punct(".")
            && tokens.get(k + 1).is_some_and(|n| n.is_punct("("))
        {
            lock_close = matching(tokens, k + 1, "(", ")");
        }
        k += 1;
    };
    // The binding is a guard only when nothing but guard-preserving
    // adaptors follow the last `.lock(...)` call: `.unwrap()`,
    // `.expect("...")`, `.await`, `?`. A trailing projection like
    // `.len()` means the temporary guard died at the `;`.
    let is_guard = match lock_close {
        None => false,
        Some(close) => tokens[close + 1..end].iter().all(|t| match t.kind {
            TokKind::Punct => matches!(t.text.as_str(), "." | "(" | ")" | "?"),
            TokKind::Ident => matches!(t.text.as_str(), "unwrap" | "expect" | "await"),
            TokKind::Literal => true,
            TokKind::Lifetime => false,
        }),
    };
    Some((end + 1, binding, is_guard))
}

// ---------------------------------------------------------------------------
// Rule 3: no-silent-send-drop
// ---------------------------------------------------------------------------

fn rule_silent_send_drop(path: &str, tokens: &[Token], out: &mut Vec<Violation>) {
    let mut i = 0;
    while i + 2 < tokens.len() {
        if tokens[i].is_ident("let") && tokens[i + 1].is_ident("_") && tokens[i + 2].is_punct("=") {
            if let Some((end, _, _)) = scan_let_statement(tokens, i) {
                let stmt = &tokens[i..end];
                let has_send = (0..stmt.len()).any(|k| {
                    stmt[k].kind == TokKind::Ident
                        && (stmt[k].text == "send" || stmt[k].text == "try_send")
                        && k > 0
                        && stmt[k - 1].is_punct(".")
                        && stmt.get(k + 1).is_some_and(|n| n.is_punct("("))
                });
                if has_send {
                    out.push(Violation {
                        rule: NO_SILENT_SEND_DROP,
                        file: path.to_string(),
                        line: tokens[i].line,
                        col: tokens[i].col,
                        message: "`let _ = ...send(...)` silently drops a protocol message — \
                                  route it through a counting helper (e.g. one that increments \
                                  `threaded.send_dropped`)"
                            .to_string(),
                    });
                }
                i = end;
                continue;
            }
        }
        i += 1;
    }
}

// ---------------------------------------------------------------------------
// Rule 4: metric-docs-sync
// ---------------------------------------------------------------------------

/// Registry registration methods and the metric kind they imply.
const METRIC_METHODS: [(&str, &str); 5] = [
    ("inc", "counter"),
    ("set_gauge", "gauge"),
    ("max_gauge", "gauge"),
    ("observe", "histogram"),
    ("merge_histogram", "histogram"),
];

#[derive(Default)]
struct MetricTable {
    /// name -> (kind, first registration site).
    registered: BTreeMap<String, (String, String, u32)>,
    conflicts: Vec<Violation>,
}

/// Scan one file's tokens for literal metric registrations. The
/// instrument crate's internal plumbing (`self.inc(name, v)`) and unit
/// tests use placeholder names; only *literal* names registered by
/// product code are required to be documented — so this collects
/// literal sites only, and is a pure function of the token stream.
fn collect_metric_regs(tokens: &[Token]) -> Vec<MetricReg> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let Some((_, kind)) = METRIC_METHODS.iter().find(|(m, _)| *m == t.text) else {
            continue;
        };
        if i == 0 || !tokens[i - 1].is_punct(".") {
            continue;
        }
        if !tokens.get(i + 1).is_some_and(|n| n.is_punct("(")) {
            continue;
        }
        let Some(arg) = tokens.get(i + 2) else {
            continue;
        };
        if arg.kind != TokKind::Literal || !arg.text.starts_with('"') {
            continue; // dynamic name (format!/variable) — pattern-documented
        }
        out.push(MetricReg {
            name: arg.text.trim_matches('"').to_string(),
            kind: kind.to_string(),
            line: t.line,
            col: t.col,
        });
    }
    out
}

impl MetricTable {
    /// Replay one file's registration sites into the cross-file table.
    /// Files replay in workspace order, so "first registration wins"
    /// and kind-conflict attribution are identical to a single-pass
    /// scan — regardless of which artifacts came from the cache.
    fn replay(&mut self, path: &str, regs: &[MetricReg]) {
        for r in regs {
            match self.registered.get(&r.name) {
                Some((prev_kind, prev_file, prev_line)) if *prev_kind != r.kind => {
                    self.conflicts.push(Violation {
                        rule: METRIC_DOCS_SYNC,
                        file: path.to_string(),
                        line: r.line,
                        col: r.col,
                        message: format!(
                            "metric `{}` registered as {} here but as {prev_kind} at \
                             {prev_file}:{prev_line} — one name, one kind",
                            r.name, r.kind
                        ),
                    });
                }
                Some(_) => {}
                None => {
                    self.registered
                        .insert(r.name.clone(), (r.kind.clone(), path.to_string(), r.line));
                }
            }
        }
    }

    fn check_against_readme(self, readme: &str, out: &mut Vec<Violation>) {
        out.extend(self.conflicts);
        let mut documented: BTreeMap<String, (String, u32)> = BTreeMap::new();
        let mut in_section = false;
        let mut found_section = false;
        for (idx, line) in readme.lines().enumerate() {
            let lineno = idx as u32 + 1;
            if line.starts_with("## ") {
                in_section = line.trim() == "## Observability";
                found_section |= in_section;
                continue;
            }
            if !in_section || !line.trim_start().starts_with('|') {
                continue;
            }
            let cells: Vec<&str> = line.trim().trim_matches('|').split('|').collect();
            if cells.len() < 2 {
                continue;
            }
            let first = cells[0].trim();
            // Rows look like: | `gtm2.waited` | counter | ... |
            let Some(name) = first.strip_prefix('`').and_then(|s| s.strip_suffix('`')) else {
                continue; // header or separator row
            };
            let kind = cells[1].trim().to_string();
            documented.insert(name.to_string(), (kind, lineno));
        }
        if !found_section {
            if !self.registered.is_empty() {
                out.push(Violation {
                    rule: METRIC_DOCS_SYNC,
                    file: "README.md".to_string(),
                    line: 1,
                    col: 1,
                    message: "README.md has no `## Observability` section documenting the \
                              registered metrics"
                        .to_string(),
                });
            }
            return;
        }
        for (name, (kind, file, line)) in &self.registered {
            match documented.get(name) {
                None => out.push(Violation {
                    rule: METRIC_DOCS_SYNC,
                    file: file.clone(),
                    line: *line,
                    col: 1,
                    message: format!(
                        "metric `{name}` ({kind}) is not documented in README.md's \
                         Observability metric table"
                    ),
                }),
                Some((doc_kind, doc_line)) if doc_kind != kind => out.push(Violation {
                    rule: METRIC_DOCS_SYNC,
                    file: "README.md".to_string(),
                    line: *doc_line,
                    col: 1,
                    message: format!(
                        "metric `{name}` documented as {doc_kind} but registered as {kind} at \
                         {file}:{line}"
                    ),
                }),
                Some(_) => {}
            }
        }
        for (name, (_, doc_line)) in &documented {
            // Rows with `<...>` placeholders document dynamically-named
            // families (`site.<id>.commits`) that registration-site
            // scanning cannot see.
            if name.contains('<') {
                continue;
            }
            if !self.registered.contains_key(name) {
                out.push(Violation {
                    rule: METRIC_DOCS_SYNC,
                    file: "README.md".to_string(),
                    line: *doc_line,
                    col: 1,
                    message: format!(
                        "README.md documents metric `{name}` but no code registers it — \
                         remove the row or restore the metric"
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 5: exhaustive-scheme-match
// ---------------------------------------------------------------------------

const PROTOCOL_ENUMS: [&str; 2] = ["SchemeEffect", "QueueOp"];

fn rule_exhaustive_match(path: &str, tokens: &[Token], out: &mut Vec<Violation>) {
    for (i, t) in tokens.iter().enumerate() {
        if !t.is_ident("match") {
            continue;
        }
        // The match body is the first `{` after the scrutinee at paren/
        // bracket depth zero (struct literals are not legal in scrutinee
        // position without parentheses).
        let mut paren = 0i32;
        let mut bracket = 0i32;
        let mut body_open = None;
        for (j, u) in tokens.iter().enumerate().skip(i + 1) {
            if u.kind != TokKind::Punct {
                continue;
            }
            match u.text.as_str() {
                "(" => paren += 1,
                ")" => paren -= 1,
                "[" => bracket += 1,
                "]" => bracket -= 1,
                "{" if paren == 0 && bracket == 0 => {
                    body_open = Some(j);
                    break;
                }
                ";" if paren == 0 && bracket == 0 => break, // not a match expr
                _ => {}
            }
        }
        let Some(open) = body_open else { continue };
        let Some(close) = matching(tokens, open, "{", "}") else {
            continue;
        };
        check_match_arms(path, &tokens[open + 1..close], out);
    }
}

/// Inspect the arms of one match body (tokens strictly inside the braces).
fn check_match_arms(path: &str, body: &[Token], out: &mut Vec<Violation>) {
    let mut i = 0;
    let mut names_protocol_enum = false;
    let mut wildcard_arm: Option<&Token> = None;
    while i < body.len() {
        // Pattern: up to `=>` at depth zero.
        let start = i;
        let mut paren = 0i32;
        let mut bracket = 0i32;
        let mut brace = 0i32;
        let mut arrow = None;
        while i < body.len() {
            let t = &body[i];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" => paren += 1,
                    ")" => paren -= 1,
                    "[" => bracket += 1,
                    "]" => bracket -= 1,
                    "{" => brace += 1,
                    "}" => brace -= 1,
                    "=" if paren == 0
                        && bracket == 0
                        && brace == 0
                        && body.get(i + 1).is_some_and(|n| {
                            n.is_punct(">") && n.line == t.line && n.col == t.col + 1
                        }) =>
                    {
                        arrow = Some(i);
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        let Some(arrow) = arrow else { break };
        let pattern = &body[start..arrow];
        for (k, p) in pattern.iter().enumerate() {
            if p.kind == TokKind::Ident
                && PROTOCOL_ENUMS.contains(&p.text.as_str())
                && pattern.get(k + 1).is_some_and(|n| n.is_punct(":"))
            {
                names_protocol_enum = true;
            }
        }
        if let Some(first) = pattern.first() {
            let bare = first.is_ident("_")
                && (pattern.len() == 1 || pattern.get(1).is_some_and(|t| t.is_ident("if")));
            if bare {
                wildcard_arm = wildcard_arm.or(Some(first));
            }
        }
        // Arm body: a block, or an expression up to `,` at depth zero.
        i = arrow + 2;
        if body.get(i).is_some_and(|t| t.is_punct("{")) {
            match matching(body, i, "{", "}") {
                Some(j) => i = j + 1,
                None => break,
            }
            if body.get(i).is_some_and(|t| t.is_punct(",")) {
                i += 1;
            }
        } else {
            let mut paren = 0i32;
            let mut bracket = 0i32;
            let mut brace = 0i32;
            while i < body.len() {
                let t = &body[i];
                if t.kind == TokKind::Punct {
                    match t.text.as_str() {
                        "(" => paren += 1,
                        ")" => paren -= 1,
                        "[" => bracket += 1,
                        "]" => bracket -= 1,
                        "{" => brace += 1,
                        "}" => brace -= 1,
                        "," if paren == 0 && bracket == 0 && brace == 0 => {
                            i += 1;
                            break;
                        }
                        _ => {}
                    }
                }
                i += 1;
            }
        }
    }
    if names_protocol_enum {
        if let Some(w) = wildcard_arm {
            out.push(Violation {
                rule: EXHAUSTIVE_SCHEME_MATCH,
                file: path.to_string(),
                line: w.line,
                col: w.col,
                message: "wildcard `_` arm in a match over SchemeEffect/QueueOp — name every \
                          variant so new protocol operations fail the build, not the protocol"
                    .to_string(),
            });
        }
    }
}

// Note: `pattern.get(k + 1).is_some_and(|n| n.is_punct(\":\"))` checks only
// the first `:` of `::`; the lexer emits `::` as two adjacent `:` puncts,
// and a struct-field `name: pat` inside a pattern never has an uppercase
// protocol-enum ident directly before the colon, so the single-colon check
// is sufficient and cheap.
