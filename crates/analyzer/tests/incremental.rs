//! Integration tests for the fact database: warm runs must be
//! byte-identical to cold ones across edit sequences, corrupt caches
//! must degrade to cold starts, fully-warm runs must not rewrite the
//! database, and the baseline diff gate must classify findings
//! end-to-end. Each test builds a throwaway workspace under the OS
//! temp dir and drives [`run_workspace_with`] against a `--no-cache`
//! oracle.

use mdbs_analyzer::report::{baseline_from_json, Report};
use mdbs_analyzer::rules::{self, Level};
use mdbs_analyzer::{cache, jsonv, run_workspace_with, RunOptions};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A send under a live guard: fires `no-lock-across-send`.
const VIOLATION: &str = "\
pub fn publish(state: &std::sync::Mutex<u64>, tx: &std::sync::mpsc::Sender<u64>) {
    let guard = state.lock().unwrap();
    tx.send(*guard).ok();
}
";

/// The same send with the guard already dropped: clean.
const CLEAN: &str = "\
pub fn publish(state: &std::sync::Mutex<u64>, tx: &std::sync::mpsc::Sender<u64>) {
    let guard = state.lock().unwrap();
    drop(guard);
    tx.send(1).ok();
}
";

/// A directive suppressing a real finding: clean, allow is used.
const ALLOW_USED: &str = "\
pub fn publish(state: &std::sync::Mutex<u64>, tx: &std::sync::mpsc::Sender<u64>) {
    let guard = state.lock().unwrap();
    // mdbs-lint: allow(no-lock-across-send) — fixture: the send is non-blocking here.
    tx.send(*guard).ok();
}
";

/// The same directive with the guard dropped first: fires `stale-allow`.
const ALLOW_STALE: &str = "\
pub fn publish(state: &std::sync::Mutex<u64>, tx: &std::sync::mpsc::Sender<u64>) {
    let guard = state.lock().unwrap();
    drop(guard);
    // mdbs-lint: allow(no-lock-across-send) — stale: the guard is already dropped.
    tx.send(1).ok();
}
";

const HELPER: &str = "\
pub fn helper(state: &std::sync::Mutex<u64>) -> u64 {
    let g = state.lock().unwrap();
    *g
}

pub fn call_helper(state: &std::sync::Mutex<u64>) -> u64 {
    helper(state)
}
";

static NEXT: AtomicUsize = AtomicUsize::new(0);

/// A unique throwaway directory per call (pid + counter, so parallel
/// test binaries and repeated runs never collide).
fn temp_root(tag: &str) -> PathBuf {
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("mdbs-lint-{tag}-{}-{n}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_file(root: &Path, rel: &str, source: &str) {
    let path = root.join(rel);
    fs::create_dir_all(path.parent().unwrap()).unwrap();
    fs::write(path, source).unwrap();
}

fn cold(root: &Path) -> Report {
    run_workspace_with(root, RunOptions::default()).unwrap()
}

fn warm(root: &Path, cache_dir: &Path) -> Report {
    run_workspace_with(
        root,
        RunOptions {
            cache_dir: Some(cache_dir.to_path_buf()),
            jobs: 1,
            ..RunOptions::default()
        },
    )
    .unwrap()
}

/// Canonical findings JSON: everything except run-local fields
/// (`wall_clock_ms`, `cache`), which legitimately differ cold vs warm.
fn stripped(mut report: Report) -> String {
    report.wall_ms = None;
    report.cache = None;
    report.to_json()
}

fn assert_warm_matches_cold(root: &Path, cache_dir: &Path, label: &str) -> Report {
    let w = warm(root, cache_dir);
    let c = cold(root);
    assert_eq!(
        stripped(w),
        stripped(c.clone()),
        "warm and cold reports diverged: {label}"
    );
    c
}

#[test]
fn warm_equals_cold_across_edit_sequence() {
    let root = temp_root("editseq");
    let cache_dir = root.join(".lint-cache");
    write_file(&root, "crates/sim/src/a.rs", CLEAN);
    write_file(&root, "crates/sim/src/b.rs", HELPER);
    write_file(&root, "crates/sim/src/c.rs", ALLOW_USED);

    // Cold populate, then a fully-warm replay.
    let r = assert_warm_matches_cold(&root, &cache_dir, "populate");
    assert!(r.is_clean(), "{}", r.render_human());
    assert_warm_matches_cold(&root, &cache_dir, "fully warm");

    // Introduce a violation, revert it, then dirty a different file.
    write_file(&root, "crates/sim/src/a.rs", VIOLATION);
    let r = assert_warm_matches_cold(&root, &cache_dir, "edit a.rs");
    assert_eq!(r.violations.len(), 1);
    assert_eq!(r.violations[0].rule, rules::NO_LOCK_ACROSS_SEND);

    write_file(&root, "crates/sim/src/a.rs", CLEAN);
    let r = assert_warm_matches_cold(&root, &cache_dir, "revert a.rs");
    assert!(r.is_clean(), "{}", r.render_human());

    write_file(&root, "crates/sim/src/b.rs", VIOLATION);
    let r = assert_warm_matches_cold(&root, &cache_dir, "edit b.rs");
    assert_eq!(r.violations.len(), 1);
    assert_eq!(r.violations[0].file, "crates/sim/src/b.rs");

    let _ = fs::remove_dir_all(&root);
}

#[test]
fn warm_edit_reuses_unchanged_files() {
    let root = temp_root("reuse");
    let cache_dir = root.join(".lint-cache");
    write_file(&root, "crates/sim/src/a.rs", CLEAN);
    write_file(&root, "crates/sim/src/b.rs", HELPER);
    write_file(&root, "crates/sim/src/c.rs", ALLOW_USED);
    warm(&root, &cache_dir);

    write_file(&root, "crates/sim/src/a.rs", VIOLATION);
    let r = warm(&root, &cache_dir);
    let stats = r.cache.expect("cache stats on a cached run");
    assert_eq!(
        (stats.file_hits, stats.file_misses),
        (2, 1),
        "only the edited file re-runs the front end"
    );

    let _ = fs::remove_dir_all(&root);
}

#[test]
fn stale_allow_on_cached_then_dirtied_file() {
    // A used allow goes into the cache; an edit that makes it stale must
    // surface `stale-allow` on the warm path exactly as a cold run would.
    let root = temp_root("staleallow");
    let cache_dir = root.join(".lint-cache");
    write_file(&root, "crates/sim/src/a.rs", ALLOW_USED);
    write_file(&root, "crates/sim/src/b.rs", HELPER);
    let r = assert_warm_matches_cold(&root, &cache_dir, "allow used");
    assert!(r.is_clean(), "{}", r.render_human());

    write_file(&root, "crates/sim/src/a.rs", ALLOW_STALE);
    let r = assert_warm_matches_cold(&root, &cache_dir, "allow dirtied stale");
    let fired: Vec<&str> = r.violations.iter().map(|v| v.rule).collect();
    assert_eq!(fired, [rules::STALE_ALLOW]);
    assert_eq!(r.violations[0].line, 4, "points at the directive");

    let _ = fs::remove_dir_all(&root);
}

#[test]
fn fully_warm_run_does_not_rewrite_the_database() {
    let root = temp_root("skipsave");
    let cache_dir = root.join(".lint-cache");
    write_file(&root, "crates/sim/src/a.rs", CLEAN);
    write_file(&root, "crates/sim/src/b.rs", HELPER);
    warm(&root, &cache_dir);

    let db_dir = cache_dir.join(format!("{:016x}", cache::schema_hash()));
    let mtime = |name: &str| fs::metadata(db_dir.join(name)).unwrap().modified().unwrap();
    let before = (
        mtime("facts.bin"),
        mtime("graph.bin"),
        mtime("manifest.bin"),
    );

    let r = warm(&root, &cache_dir);
    let stats = r.cache.expect("cache stats");
    assert_eq!((stats.file_hits, stats.file_misses), (2, 0));
    assert_eq!(stats.fn_misses, 0);
    let after = (
        mtime("facts.bin"),
        mtime("graph.bin"),
        mtime("manifest.bin"),
    );
    assert_eq!(before, after, "fully-warm run must skip the rewrite");

    let _ = fs::remove_dir_all(&root);
}

#[test]
fn corrupt_cache_degrades_to_cold() {
    let root = temp_root("corrupt");
    let cache_dir = root.join(".lint-cache");
    write_file(&root, "crates/sim/src/a.rs", VIOLATION);
    write_file(&root, "crates/sim/src/b.rs", HELPER);
    warm(&root, &cache_dir);

    let db_dir = cache_dir.join(format!("{:016x}", cache::schema_hash()));
    for name in ["facts.bin", "graph.bin", "manifest.bin"] {
        fs::write(db_dir.join(name), b"definitely not a fact database").unwrap();
    }
    let r = assert_warm_matches_cold(&root, &cache_dir, "corrupt db");
    assert_eq!(r.violations.len(), 1);
    let stats = warm(&root, &cache_dir).cache.expect("cache stats");
    assert_eq!(
        (stats.file_hits, stats.file_misses),
        (2, 0),
        "the run after the corrupt one rebuilt a usable database"
    );

    let _ = fs::remove_dir_all(&root);
}

/// `status` values of the violations array, via the public JSON.
fn statuses(report: &Report) -> Vec<String> {
    let json = jsonv::parse(&report.to_json()).unwrap();
    json.get("violations")
        .and_then(|v| v.as_arr())
        .unwrap()
        .iter()
        .map(|v| {
            v.get("status")
                .and_then(|s| s.as_str())
                .unwrap_or("(none)")
                .to_string()
        })
        .collect()
}

#[test]
fn baseline_diff_classifies_new_fixed_and_preexisting() {
    let root = temp_root("baseline");
    write_file(&root, "crates/sim/src/a.rs", VIOLATION);
    write_file(&root, "crates/sim/src/b.rs", CLEAN);
    let baseline_text = cold(&root).to_json();

    // Same old finding in a.rs plus a brand-new one in b.rs.
    write_file(&root, "crates/sim/src/b.rs", VIOLATION);
    let mut r = cold(&root);
    r.apply_baseline("old.json", baseline_from_json(&baseline_text).unwrap());
    assert_eq!(statuses(&r), ["pre-existing", "new"]);
    assert!(r.fails(Level::Error), "a new error finding gates");
    assert!(
        r.baseline.as_ref().unwrap().fixed.is_empty(),
        "nothing was fixed"
    );

    // The old finding fixed, only the new one left: still gates.
    write_file(&root, "crates/sim/src/a.rs", CLEAN);
    let mut r = cold(&root);
    r.apply_baseline("old.json", baseline_from_json(&baseline_text).unwrap());
    assert_eq!(statuses(&r), ["new"]);
    assert!(r.fails(Level::Error));
    let fixed = &r.baseline.as_ref().unwrap().fixed;
    assert_eq!(fixed.len(), 1);
    assert_eq!(fixed[0].file, "crates/sim/src/a.rs");

    // Only pre-existing findings left: the gate passes.
    write_file(&root, "crates/sim/src/a.rs", VIOLATION);
    write_file(&root, "crates/sim/src/b.rs", CLEAN);
    let mut r = cold(&root);
    r.apply_baseline("old.json", baseline_from_json(&baseline_text).unwrap());
    assert_eq!(statuses(&r), ["pre-existing"]);
    assert!(!r.fails(Level::Note), "pre-existing findings do not gate");

    let _ = fs::remove_dir_all(&root);
}
