//! Pinned regression for the branch-merge unsoundness of the legacy
//! linear guard scan: the guard is dropped in only one `match` arm, so on
//! the other arm it is still held when the send happens. The linear scan
//! sees the `drop` and clears the guard unconditionally; the CFG engine
//! merges the arms with a may-analysis and keeps the guard live.

use std::sync::mpsc::Sender;
use std::sync::Mutex;

pub fn publish(state: &Mutex<u64>, tx: &Sender<u64>, fast_path: bool) {
    let guard = state.lock().unwrap();
    match fast_path {
        true => drop(guard),
        false => {}
    }
    tx.send(1).ok();
}
