//! Non-triggering fixture for `no-lock-across-send`: the guard is
//! dropped (by scope or explicitly) before the channel call.

use std::sync::mpsc::Sender;
use std::sync::Mutex;

pub fn publish(state: &Mutex<u64>, tx: &Sender<u64>) {
    let value = {
        let guard = state.lock().unwrap();
        *guard
    };
    tx.send(value).ok();
}

pub fn publish_explicit_drop(state: &Mutex<u64>, tx: &Sender<u64>) {
    let guard = state.lock().unwrap();
    let value = *guard;
    drop(guard);
    tx.send(value).ok();
}
