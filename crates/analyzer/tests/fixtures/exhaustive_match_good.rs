//! Non-triggering fixture for `exhaustive-scheme-match`: every variant
//! is named, so adding one forces this match to be revisited.

pub fn count_submits(effects: &[SchemeEffect]) -> usize {
    let mut n = 0;
    for fx in effects {
        match fx {
            SchemeEffect::SubmitSer { .. } => n += 1,
            SchemeEffect::ForwardAck { .. }
            | SchemeEffect::AbortGlobal { .. }
            | SchemeEffect::ProtocolViolation { .. } => {}
        }
    }
    n
}

pub fn classify(flag: bool) -> u32 {
    // Wildcards over types that are not scheme enums stay legal.
    match flag {
        true => 1,
        _ => 0,
    }
}
