//! Fixture: a channel whose messages are sent but never received — once
//! the buffer fills, every sender blocks forever.

use crossbeam_channel::bounded;

pub fn orphan() {
    let (tx, rx) = bounded::<u64>(4);
    if tx.send(1).is_err() {
        return;
    }
    drop(rx);
}
