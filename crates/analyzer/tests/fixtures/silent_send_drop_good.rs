//! Non-triggering fixture for `no-silent-send-drop`: the failed send is
//! counted instead of discarded.

use std::sync::mpsc::Sender;

pub fn reply(tx: &Sender<u64>, value: u64, dropped: &mut u64) {
    if tx.send(value).is_err() {
        *dropped += 1;
    }
}
