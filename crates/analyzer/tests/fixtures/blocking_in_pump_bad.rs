//! Fixture: blocking calls reachable from the scheduler pump — one
//! directly (an unbounded `recv`), one through a helper (`sleep`).

use crossbeam_channel::Receiver;

pub struct Gtm2 {
    pub rx: Receiver<u64>,
}

impl Gtm2 {
    pub fn pump(&mut self) -> Option<u64> {
        self.idle();
        self.rx.recv().ok()
    }

    fn idle(&self) {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
}
