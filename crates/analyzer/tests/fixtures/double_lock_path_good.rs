//! Non-triggering counterpart of `double_lock_path_bad.rs`: every
//! re-acquisition happens after the first guard is released, and the
//! helper is only called lock-free.

use std::sync::Mutex;

pub struct Store {
    meta: Mutex<u64>,
}

impl Store {
    pub fn bump(&self, hard: bool) {
        let first = self.meta.lock().unwrap();
        drop(first);
        if hard {
            let second = self.meta.lock().unwrap();
            drop(second);
        }
    }

    pub fn update(&self) {
        {
            let guard = self.meta.lock().unwrap();
            drop(guard);
        }
        self.touch();
    }

    fn touch(&self) {
        let guard = self.meta.lock().unwrap();
        drop(guard);
    }
}
