//! Triggering fixture for `bad-allow`: unknown rule name in one
//! directive, missing justification in the other.

pub fn noop() {
    // mdbs-lint: allow(no-panics-in-scheduler) — typo in the rule name.
    let _x = 1;
    // mdbs-lint: allow(no-lock-across-send)
    let _y = 2;
}

pub fn scoped_noop() {
    // mdbs-lint: allow(no-panic-in-scheduler, scope=file) — unknown scope argument.
    let _z = 3;
}

// mdbs-lint: allow(no-panic-in-scheduler, scope=item) — nothing follows this directive.
