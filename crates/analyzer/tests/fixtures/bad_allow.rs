//! Triggering fixture for `bad-allow`: unknown rule name in one
//! directive, missing justification in the other.

pub fn noop() {
    // mdbs-lint: allow(no-panics-in-scheduler) — typo in the rule name.
    let _x = 1;
    // mdbs-lint: allow(no-lock-across-send)
    let _y = 2;
}
