//! Fixture: the send hides inside a callee while the caller's lock guard
//! is live — the lexical rule could not see through the call; the
//! interprocedural rule must.

use crossbeam_channel::Sender;
use std::sync::Mutex;

pub struct Relay {
    pub state: Mutex<u64>,
    pub tx: Sender<u64>,
}

impl Relay {
    pub fn publish(&self) {
        let guard = self.state.lock().unwrap();
        self.notify(*guard);
    }

    fn notify(&self, value: u64) {
        self.tx.send(value).ok();
    }
}
