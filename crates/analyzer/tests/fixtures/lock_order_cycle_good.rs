//! Fixture: every path agrees on one global lock order — `alpha` before
//! `beta` directly, `alpha` before `gamma` through a callee, so the
//! second edge only exists interprocedurally.

use std::sync::Mutex;

pub struct Pair {
    pub alpha: Mutex<u32>,
    pub beta: Mutex<u32>,
    pub gamma: Mutex<u32>,
}

impl Pair {
    pub fn sum(&self) -> u32 {
        let a = self.alpha.lock().unwrap();
        let b = self.beta.lock().unwrap();
        *a + *b
    }

    pub fn sum_via_tail(&self) -> u32 {
        let a = self.alpha.lock().unwrap();
        *a + self.tail()
    }

    fn tail(&self) -> u32 {
        *self.gamma.lock().unwrap()
    }
}
