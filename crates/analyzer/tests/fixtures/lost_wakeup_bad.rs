//! Triggering fixture for `lost-wakeup`: a worker loop that checks the
//! queue, *then* registers its waker, then suspends. A notification that
//! arrives between the check and the registration is lost — the worker
//! parks on stale information.

use crossbeam_channel::Receiver;

pub struct Waker;

impl Waker {
    pub fn register(&self) {}
}

pub struct SiteWorker {
    pub rx: Receiver<u64>,
    pub waker: Waker,
}

impl SiteWorker {
    pub fn run(&mut self) {
        loop {
            if let Ok(job) = self.rx.try_recv() {
                self.execute(job);
                continue;
            }
            self.waker.register();
            std::thread::yield_now();
        }
    }

    fn execute(&mut self, _job: u64) {}
}
