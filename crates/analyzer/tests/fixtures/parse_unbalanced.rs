//! Fixture: delimiter imbalance must degrade to a `parse-error`
//! diagnostic, never a panic.

pub fn broken(a: u32) -> u32 {
    let b = (a + 1;
    b
}
