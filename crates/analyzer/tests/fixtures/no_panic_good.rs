//! Non-triggering fixture for `no-panic-in-scheduler`: failures are
//! routed through `Option`/`Result`, indexes are literal or full-range,
//! and one residual `expect` carries a justified allow directive.

pub fn pump(ops: &std::collections::BTreeMap<u32, u32>, order: &[u32]) -> Option<u32> {
    let first = *order.first()?;
    let v = ops.get(&first)?;
    let all = &order[..];
    let fixed = [10u32, 20];
    let second = fixed[1]; // literal indexes into literal arrays are exempt
    Some(*v + all.len() as u32 + second)
}

pub fn lookup(ops: &std::collections::BTreeMap<u32, u32>, key: u32) -> u32 {
    // mdbs-lint: allow(no-panic-in-scheduler) — fixture: the caller inserts `key` immediately before calling.
    *ops.get(&key).expect("key present")
}

#[test]
fn test_code_is_exempt() {
    let v: Option<u32> = Some(1);
    assert_eq!(v.unwrap(), 1);
}

// mdbs-lint: allow(no-panic-in-scheduler, scope=item) — fixture: every slot below is interned before use, so rows cover it by construction.
pub fn dense_rows(rows: &mut Vec<u32>, slot: usize) -> u32 {
    if rows.len() <= slot {
        rows.resize(slot + 1, 0);
    }
    rows[slot] += 1;
    rows[slot]
}

pub fn after_the_item(ops: &std::collections::BTreeMap<u32, u32>, key: u32) -> Option<u32> {
    // The item-scoped allow above must NOT leak past `dense_rows`.
    ops.get(&key).copied()
}
