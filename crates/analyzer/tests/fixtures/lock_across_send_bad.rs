//! Triggering fixture for `no-lock-across-send`: the mutex guard is
//! still live when the channel send happens.

use std::sync::mpsc::Sender;
use std::sync::Mutex;

pub fn publish(state: &Mutex<u64>, tx: &Sender<u64>) {
    let guard = state.lock().unwrap();
    tx.send(*guard).ok();
}
