//! Triggering fixture for `no-panic-in-scheduler` (virtual path puts it
//! inside `crates/core/src/`).

pub fn pump(ops: &std::collections::BTreeMap<u32, u32>, order: &[u32]) -> u32 {
    let first = order[0];
    let v = ops.get(&first).expect("known op");
    if *v == 0 {
        panic!("zero effect");
    }
    match v {
        1 => 1,
        _ => unreachable!(),
    }
}

pub fn helper(x: Option<u32>) -> u32 {
    x.unwrap()
}
