//! Non-triggering counterpart of `guard_across_suspend_bad.rs`: the
//! guard is released before every suspension point, directly and around
//! the suspending helper.

use std::sync::Mutex;

pub struct Pool {
    inner: Mutex<Vec<u64>>,
}

impl Pool {
    pub fn spin_drain(&self) {
        loop {
            {
                let guard = self.inner.lock().unwrap();
                if !guard.is_empty() {
                    return;
                }
            }
            std::thread::yield_now();
        }
    }

    pub fn drain(&self) -> usize {
        let n = {
            let guard = self.inner.lock().unwrap();
            guard.len()
        };
        self.backoff();
        n
    }

    fn backoff(&self) {
        std::thread::yield_now();
    }
}
