//! Triggering fixture for `exhaustive-scheme-match` (virtual path puts
//! it inside `crates/core/src/`): a match naming `SchemeEffect` variants
//! hides future variants behind a wildcard arm.

pub fn count_submits(effects: &[SchemeEffect]) -> usize {
    let mut n = 0;
    for fx in effects {
        match fx {
            SchemeEffect::SubmitSer { .. } => n += 1,
            _ => {}
        }
    }
    n
}
