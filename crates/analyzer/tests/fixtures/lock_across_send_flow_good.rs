//! Fixture: the guard dies inside a nested block before the send. The
//! PR 2 lexical rule skipped `let` statements wholesale and so never saw
//! the inner `drop(guard)` — this exact shape was its false positive.
//! The flow-sensitive rule must stay quiet.

use crossbeam_channel::Sender;
use std::sync::Mutex;

pub fn relay(state: &Mutex<u64>, tx: &Sender<u64>) {
    let guard = state.lock().unwrap();
    let value = {
        let v = *guard;
        drop(guard);
        v
    };
    tx.send(value).ok();
}
