//! Fixture: both channels are drained — endpoints resolve through struct
//! fields wired in a constructor-style function.

use crossbeam_channel::{bounded, Receiver, Sender};

pub struct Worker {
    pub rx: Receiver<u64>,
    pub tx: Sender<u64>,
}

impl Worker {
    pub fn forward(&self) {
        while let Ok(v) = self.rx.try_recv() {
            if self.tx.send(v).is_err() {
                return;
            }
        }
    }
}

pub fn wire() -> Worker {
    let (job_tx, job_rx) = bounded::<u64>(8);
    let (res_tx, res_rx) = bounded::<u64>(8);
    let w = Worker { rx: job_rx, tx: res_tx };
    if job_tx.send(7).is_err() {
        return w;
    }
    while let Ok(v) = res_rx.try_recv() {
        let mut sum = 0;
        sum += v;
    }
    w
}
