//! Non-triggering counterpart of `branch_merge_bad.rs`: the guard is
//! released on *every* arm before the send, so the may-analysis merge
//! clears it and no rule fires.

use std::sync::mpsc::Sender;
use std::sync::Mutex;

pub fn publish(state: &Mutex<u64>, tx: &Sender<u64>, fast_path: bool) {
    let guard = state.lock().unwrap();
    match fast_path {
        true => drop(guard),
        false => drop(guard),
    }
    tx.send(1).ok();
}
