//! Triggering fixture for `no-silent-send-drop`.

use std::sync::mpsc::Sender;

pub fn reply(tx: &Sender<u64>, value: u64) {
    let _ = tx.send(value);
}
