//! Fixture: two functions take the same two locks in opposite orders — a
//! genuine two-lock deadlock cycle the analyzer must detect.

use std::sync::Mutex;

pub struct Pair {
    pub alpha: Mutex<u32>,
    pub beta: Mutex<u32>,
}

impl Pair {
    pub fn ab(&self) -> u32 {
        let a = self.alpha.lock().unwrap();
        let b = self.beta.lock().unwrap();
        *a + *b
    }

    pub fn ba(&self) -> u32 {
        let b = self.beta.lock().unwrap();
        let a = self.alpha.lock().unwrap();
        *a + *b
    }
}
