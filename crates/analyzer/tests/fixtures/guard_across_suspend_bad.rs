//! Triggering fixture for `guard-across-suspend`: a mutex guard held
//! across a suspension point, once directly (`yield_now` in a spin loop)
//! and once through a typed helper that transitively suspends.

use std::sync::Mutex;

pub struct Pool {
    inner: Mutex<Vec<u64>>,
}

impl Pool {
    /// Direct: the guard is live at the `yield_now` suspension.
    pub fn spin_drain(&self) {
        let guard = self.inner.lock().unwrap();
        while guard.is_empty() {
            std::thread::yield_now();
        }
    }

    /// Interprocedural: `backoff` suspends and the guard spans the call.
    pub fn drain(&self) -> usize {
        let guard = self.inner.lock().unwrap();
        self.backoff();
        guard.len()
    }

    fn backoff(&self) {
        std::thread::yield_now();
    }
}
