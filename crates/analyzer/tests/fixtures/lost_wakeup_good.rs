//! Non-triggering counterpart of `lost_wakeup_bad.rs`: register first,
//! re-check, then suspend. Any notification that lands after the
//! registration wakes the worker, so nothing is lost.

use crossbeam_channel::Receiver;

pub struct Waker;

impl Waker {
    pub fn register(&self) {}
}

pub struct SiteWorker {
    pub rx: Receiver<u64>,
    pub waker: Waker,
}

impl SiteWorker {
    pub fn run(&mut self) {
        loop {
            self.waker.register();
            if let Ok(job) = self.rx.try_recv() {
                self.execute(job);
                continue;
            }
            std::thread::yield_now();
        }
    }

    fn execute(&mut self, _job: u64) {}
}
