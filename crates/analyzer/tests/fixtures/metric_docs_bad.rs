//! Triggering fixture for `metric-docs-sync`: `quux.undocumented` is not
//! in the README table, and `quux.kind_clash` is registered with two
//! different kinds.

pub fn export(registry: &mut Registry) {
    registry.inc("quux.undocumented", 1);
    registry.inc("quux.kind_clash", 1);
    registry.max_gauge("quux.kind_clash", 2);
}
