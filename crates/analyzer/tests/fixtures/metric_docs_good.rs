//! Non-triggering fixture for `metric-docs-sync`: the one registered
//! metric matches the fixture README row by name and kind, and
//! dynamically-formatted names are out of the rule's scope.

pub fn export(registry: &mut Registry, site: u32) {
    registry.inc("quux.documented", 1);
    registry.inc(&format!("quux.{site}.events"), 1);
}
