//! Fixture: the pump only uses non-blocking variants; blocking calls in
//! functions *not* reachable from an entry point are legal.

use crossbeam_channel::Receiver;

pub struct Gtm2 {
    pub rx: Receiver<u64>,
}

impl Gtm2 {
    pub fn pump(&mut self) -> Option<u64> {
        self.rx.try_recv().ok()
    }
}

pub struct Harvest {
    pub rx: Receiver<u64>,
}

impl Harvest {
    pub fn collect_all(&self) -> Vec<u64> {
        let mut out = Vec::new();
        while let Ok(v) = self.rx.recv() {
            out.push(v);
        }
        out
    }
}
