//! Triggering fixture for `double-lock-path`: the same lock re-acquired
//! while already held, once on a conditional path in the same function
//! and once through a same-type helper method.

use std::sync::Mutex;

pub struct Store {
    meta: Mutex<u64>,
}

impl Store {
    /// Intraprocedural: the `if` path re-locks `meta` while `first` is live.
    pub fn bump(&self, hard: bool) {
        let first = self.meta.lock().unwrap();
        if hard {
            let second = self.meta.lock().unwrap();
            drop(second);
        }
        drop(first);
    }

    /// Interprocedural: `touch` re-locks `meta` while the caller holds it.
    pub fn update(&self) {
        let guard = self.meta.lock().unwrap();
        self.touch();
        drop(guard);
    }

    fn touch(&self) {
        let guard = self.meta.lock().unwrap();
        drop(guard);
    }
}
