//! Property test: the worklist solver in `mdbs_analyzer::dataflow`
//! against a brute-force meet-over-all-paths oracle.
//!
//! Gen/kill transfer functions are distributive over both union and
//! intersection, so the maximal-fixed-point solution the solver computes
//! equals the meet-over-all-paths solution exactly — even on cyclic
//! graphs. The oracle enumerates every reachable `(block, state)` pair
//! (finite: ≤ 12 blocks × 2^6 states) and joins the states arriving at
//! each block, which is MOP without enumerating infinitely many paths.

use mdbs_analyzer::dataflow::{solve_gen_kill, BitSet, Merge};
use proptest::prelude::*;
use std::collections::HashSet;

/// A random forward gen/kill dataflow problem over an arbitrary digraph
/// with entry block 0. Fact sets are stored as `u64` masks.
#[derive(Clone, Debug)]
struct Problem {
    succs: Vec<Vec<usize>>,
    nfacts: usize,
    boundary: u64,
    gen: Vec<u64>,
    kill: Vec<u64>,
    may: bool,
}

/// Words of raw randomness consumed per block: successor count, up to
/// three successor targets, a gen mask and a kill mask.
const WORDS_PER_BLOCK: usize = 6;
const MAX_BLOCKS: usize = 12;

/// Derive a problem from flat randomness (the vendored proptest subset
/// has no `prop_flat_map`, so sizes can't parameterize inner strategies).
fn derive_problem(
    nblocks: usize,
    nfacts: usize,
    may: bool,
    boundary_raw: u64,
    raw: &[u64],
) -> Problem {
    let mask = (1u64 << nfacts) - 1;
    let mut succs = Vec::with_capacity(nblocks);
    let mut gen = Vec::with_capacity(nblocks);
    let mut kill = Vec::with_capacity(nblocks);
    for b in 0..nblocks {
        let r = &raw[b * WORDS_PER_BLOCK..(b + 1) * WORDS_PER_BLOCK];
        let count = (r[0] % 4) as usize;
        let mut targets: Vec<usize> = (0..count).map(|i| r[1 + i] as usize % nblocks).collect();
        targets.dedup();
        succs.push(targets);
        gen.push(r[4] & mask);
        kill.push(r[5] & mask);
    }
    Problem {
        succs,
        nfacts,
        boundary: boundary_raw & mask,
        gen,
        kill,
        may,
    }
}

/// Exact MOP: BFS over reachable `(block, in-state)` pairs, joining all
/// in-states observed per block. `None` means the block is unreachable.
fn path_enumeration_oracle(p: &Problem) -> Vec<Option<u64>> {
    let mut joined: Vec<Option<u64>> = vec![None; p.succs.len()];
    let mut seen: HashSet<(usize, u64)> = HashSet::new();
    let mut stack = vec![(0usize, p.boundary)];
    seen.insert((0, p.boundary));
    while let Some((b, state)) = stack.pop() {
        joined[b] = Some(match joined[b] {
            None => state,
            Some(j) if p.may => j | state,
            Some(j) => j & state,
        });
        let out = (state & !p.kill[b]) | p.gen[b];
        for &t in &p.succs[b] {
            if seen.insert((t, out)) {
                stack.push((t, out));
            }
        }
    }
    joined
}

fn to_bitset(mask: u64, nfacts: usize) -> BitSet {
    let mut b = BitSet::empty(nfacts);
    for i in 0..nfacts {
        if mask >> i & 1 == 1 {
            b.set(i);
        }
    }
    b
}

fn to_mask(b: &BitSet) -> u64 {
    b.iter_ones().fold(0, |acc, i| acc | 1 << i)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn solver_matches_path_enumeration(
        nblocks in 2usize..=MAX_BLOCKS,
        nfacts in 1usize..=6,
        may in any::<bool>(),
        boundary_raw in any::<u64>(),
        raw in prop::collection::vec(any::<u64>(), MAX_BLOCKS * WORDS_PER_BLOCK),
    ) {
        let p = derive_problem(nblocks, nfacts, may, boundary_raw, &raw);
        let merge = if p.may { Merge::May } else { Merge::Must };
        let gen: Vec<BitSet> = p.gen.iter().map(|&m| to_bitset(m, p.nfacts)).collect();
        let kill: Vec<BitSet> = p.kill.iter().map(|&m| to_bitset(m, p.nfacts)).collect();
        let ins = solve_gen_kill(
            &p.succs,
            0,
            p.nfacts,
            merge,
            &to_bitset(p.boundary, p.nfacts),
            &gen,
            &kill,
        );
        let want = path_enumeration_oracle(&p);
        let init = if p.may { 0 } else { (1u64 << p.nfacts) - 1 };
        for b in 0..p.succs.len() {
            prop_assert_eq!(
                to_mask(&ins[b]),
                want[b].unwrap_or(init),
                "block {} of {:?}",
                b,
                p
            );
        }
    }
}
