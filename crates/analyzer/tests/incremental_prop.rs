//! Property test for the incremental engine: under arbitrary edit
//! sequences over a small workspace, a warm run against a persistent
//! fact database must stay byte-identical to a cold `--no-cache` run —
//! the oracle the whole cache design is judged against. Catches stale
//! invalidation, digest collisions in practice, and dirty-region
//! under-propagation.

use mdbs_analyzer::report::Report;
use mdbs_analyzer::{run_workspace_with, RunOptions};
use proptest::prelude::*;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Source templates an edit can swap in. Deliberately distinct lengths:
/// the stat manifest treats same-size-same-mtime as unchanged (the
/// classic make racy-clean caveat), and two writes can land in one
/// filesystem timestamp tick during a fast test.
const TEMPLATES: [&str; 6] = [
    // clean leaf
    "pub fn add(a: u64, b: u64) -> u64 {\n    a + b\n}\n",
    // no-lock-across-send violation
    "pub fn publish(state: &std::sync::Mutex<u64>, tx: &std::sync::mpsc::Sender<u64>) {\n    \
     let guard = state.lock().unwrap();\n    tx.send(*guard).ok();\n}\n",
    // clean: guard dropped before the send
    "pub fn publish(state: &std::sync::Mutex<u64>, tx: &std::sync::mpsc::Sender<u64>) {\n    \
     let guard = state.lock().unwrap();\n    drop(guard);\n    tx.send(1).ok();\n}\n",
    // used allow directive
    "pub fn publish(state: &std::sync::Mutex<u64>, tx: &std::sync::mpsc::Sender<u64>) {\n    \
     let guard = state.lock().unwrap();\n    // mdbs-lint: allow(no-lock-across-send) — fixture: non-blocking send.\n    \
     tx.send(*guard).ok();\n}\n",
    // stale allow directive
    "pub fn publish(state: &std::sync::Mutex<u64>, tx: &std::sync::mpsc::Sender<u64>) {\n    \
     let guard = state.lock().unwrap();\n    drop(guard);\n    \
     // mdbs-lint: allow(no-lock-across-send) — stale: guard already dropped.\n    tx.send(1).ok();\n}\n",
    // cross-function call, exercises the interprocedural dirty region
    "pub fn helper(state: &std::sync::Mutex<u64>) -> u64 {\n    let g = state.lock().unwrap();\n    \
     *g\n}\n\npub fn call_helper(state: &std::sync::Mutex<u64>) -> u64 {\n    helper(state)\n}\n",
];

const FILES: [&str; 3] = [
    "crates/sim/src/a.rs",
    "crates/sim/src/b.rs",
    "crates/sim/src/c.rs",
];

static NEXT: AtomicUsize = AtomicUsize::new(0);

fn temp_root() -> PathBuf {
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("mdbs-lint-prop-{}-{n}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn stripped(mut report: Report) -> String {
    report.wall_ms = None;
    report.cache = None;
    report.to_json()
}

fn warm_vs_cold(root: &Path, cache_dir: &Path) -> (String, String) {
    let warm = run_workspace_with(
        root,
        RunOptions {
            cache_dir: Some(cache_dir.to_path_buf()),
            jobs: 1,
            ..RunOptions::default()
        },
    )
    .unwrap();
    let cold = run_workspace_with(root, RunOptions::default()).unwrap();
    (stripped(warm), stripped(cold))
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        .. ProptestConfig::default()
    })]

    #[test]
    fn warm_report_is_byte_identical_to_cold_oracle(
        init in prop::collection::vec(0usize..TEMPLATES.len(), FILES.len()),
        edits in prop::collection::vec((0usize..FILES.len(), 0usize..TEMPLATES.len()), 1..6),
    ) {
        let root = temp_root();
        let cache_dir = root.join(".lint-cache");
        for (rel, &t) in FILES.iter().zip(&init) {
            let path = root.join(rel);
            fs::create_dir_all(path.parent().unwrap()).unwrap();
            fs::write(path, TEMPLATES[t]).unwrap();
        }
        let (warm, cold) = warm_vs_cold(&root, &cache_dir);
        prop_assert_eq!(warm, cold, "initial populate diverged");

        for (step, &(f, t)) in edits.iter().enumerate() {
            fs::write(root.join(FILES[f]), TEMPLATES[t]).unwrap();
            let (warm, cold) = warm_vs_cold(&root, &cache_dir);
            prop_assert_eq!(warm, cold, "diverged at edit {} ({} -> template {})", step, FILES[f], t);
        }
        let _ = fs::remove_dir_all(&root);
    }
}
