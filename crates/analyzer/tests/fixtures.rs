//! Fixture-driven tests: every rule is demonstrated by at least one
//! triggering and one non-triggering snippet, the combined JSON report is
//! pinned to a golden file, and the workspace itself must lint clean.

use mdbs_analyzer::rules::{self, SourceFile};
use mdbs_analyzer::{find_workspace_root, run_sources, run_workspace};
use std::path::Path;

/// A fixture README providing the Observability table the
/// `metric-docs-sync` fixtures are checked against.
const FIXTURE_README: &str = "\
# fixture

## Observability

| metric | kind | meaning |
|--------|------|---------|
| `quux.documented` | counter | a documented counter |
| `quux.<id>.events` | counter | pattern rows are exempt |

## Next section
";

fn fixture(virtual_path: &str, source: &str) -> SourceFile {
    SourceFile {
        path: virtual_path.to_string(),
        source: source.to_string(),
    }
}

/// Run one fixture through the engine and return the rule names that
/// fired. The README is omitted so only the metric-specific tests (which
/// pass [`FIXTURE_README`] themselves) exercise the bidirectional
/// docs-sync diff.
fn rules_fired(virtual_path: &str, source: &str) -> Vec<String> {
    rules_fired_with(virtual_path, source, None)
}

fn rules_fired_with(virtual_path: &str, source: &str, readme: Option<&str>) -> Vec<String> {
    let report = run_sources(&[fixture(virtual_path, source)], readme);
    let mut names: Vec<String> = report
        .violations
        .iter()
        .map(|v| v.rule.to_string())
        .collect();
    names.dedup();
    names
}

#[test]
fn no_panic_bad_fires() {
    let fired = rules_fired(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/no_panic_bad.rs"),
    );
    assert_eq!(fired, [rules::NO_PANIC]);
}

#[test]
fn no_panic_good_is_quiet() {
    let fired = rules_fired(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/no_panic_good.rs"),
    );
    assert!(fired.is_empty(), "unexpected: {fired:?}");
}

#[test]
fn no_panic_is_scoped_to_scheduler_crates() {
    // The same panicking source outside crates/core|localdb is legal.
    let fired = rules_fired(
        "crates/bench/src/fixture.rs",
        include_str!("fixtures/no_panic_bad.rs"),
    );
    assert!(fired.is_empty(), "unexpected: {fired:?}");
}

#[test]
fn lock_across_send_bad_fires() {
    let fired = rules_fired(
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/lock_across_send_bad.rs"),
    );
    assert_eq!(fired, [rules::NO_LOCK_ACROSS_SEND]);
}

#[test]
fn lock_across_send_good_is_quiet() {
    let fired = rules_fired(
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/lock_across_send_good.rs"),
    );
    assert!(fired.is_empty(), "unexpected: {fired:?}");
}

#[test]
fn silent_send_drop_bad_fires() {
    let fired = rules_fired(
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/silent_send_drop_bad.rs"),
    );
    assert_eq!(fired, [rules::NO_SILENT_SEND_DROP]);
}

#[test]
fn silent_send_drop_good_is_quiet() {
    let fired = rules_fired(
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/silent_send_drop_good.rs"),
    );
    assert!(fired.is_empty(), "unexpected: {fired:?}");
}

#[test]
fn metric_docs_bad_fires() {
    let report = run_sources(
        &[
            fixture(
                "crates/sim/src/fixture.rs",
                include_str!("fixtures/metric_docs_bad.rs"),
            ),
            // Registers `quux.documented` so the README row is not stale.
            fixture(
                "crates/sim/src/fixture_good.rs",
                include_str!("fixtures/metric_docs_good.rs"),
            ),
        ],
        Some(FIXTURE_README),
    );
    let fired: Vec<&str> = report.violations.iter().map(|v| v.rule).collect();
    assert!(!fired.is_empty());
    assert!(
        fired.iter().all(|r| *r == rules::METRIC_DOCS_SYNC),
        "{fired:?}"
    );
}

#[test]
fn metric_docs_good_is_quiet() {
    let fired = rules_fired_with(
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/metric_docs_good.rs"),
        Some(FIXTURE_README),
    );
    assert!(fired.is_empty(), "unexpected: {fired:?}");
}

#[test]
fn metric_docs_flags_stale_readme_rows() {
    // A documented metric that no code registers is also a violation.
    let report = run_sources(
        &[fixture("crates/sim/src/fixture.rs", "pub fn noop() {}\n")],
        Some(FIXTURE_README),
    );
    assert_eq!(report.violations.len(), 1);
    assert_eq!(report.violations[0].rule, rules::METRIC_DOCS_SYNC);
    assert!(report.violations[0].message.contains("quux.documented"));
}

#[test]
fn exhaustive_match_bad_fires() {
    let fired = rules_fired(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/exhaustive_match_bad.rs"),
    );
    assert_eq!(fired, [rules::EXHAUSTIVE_SCHEME_MATCH]);
}

#[test]
fn exhaustive_match_good_is_quiet() {
    let fired = rules_fired(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/exhaustive_match_good.rs"),
    );
    assert!(fired.is_empty(), "unexpected: {fired:?}");
}

#[test]
fn bad_allow_fires() {
    let fired = rules_fired(
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/bad_allow.rs"),
    );
    assert_eq!(fired, [rules::BAD_ALLOW]);
}

/// The combined report over every triggering fixture, pinned as a golden
/// JSON file. Regenerate by running this test with
/// `UPDATE_GOLDEN=1 cargo test -p mdbs-analyzer`.
#[test]
fn golden_report() {
    let sources = [
        fixture(
            "crates/core/src/exhaustive_match_bad.rs",
            include_str!("fixtures/exhaustive_match_bad.rs"),
        ),
        fixture(
            "crates/core/src/no_panic_bad.rs",
            include_str!("fixtures/no_panic_bad.rs"),
        ),
        fixture(
            "crates/sim/src/bad_allow.rs",
            include_str!("fixtures/bad_allow.rs"),
        ),
        fixture(
            "crates/sim/src/lock_across_send_bad.rs",
            include_str!("fixtures/lock_across_send_bad.rs"),
        ),
        fixture(
            "crates/sim/src/metric_docs_bad.rs",
            include_str!("fixtures/metric_docs_bad.rs"),
        ),
        // Keeps the README's `quux.documented` row non-stale so the golden
        // report only contains deliberate violations.
        fixture(
            "crates/sim/src/metric_docs_good.rs",
            include_str!("fixtures/metric_docs_good.rs"),
        ),
        fixture(
            "crates/sim/src/silent_send_drop_bad.rs",
            include_str!("fixtures/silent_send_drop_bad.rs"),
        ),
    ];
    let report = run_sources(&sources, Some(FIXTURE_README));
    let got = report.to_json();
    let golden_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden.json");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden_path, format!("{got}\n")).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&golden_path).unwrap();
    assert_eq!(got.trim_end(), want.trim_end(), "golden report drifted");
}

/// The repository itself must lint clean — this is the same check CI runs
/// via `cargo run -p mdbs-analyzer -- --workspace`.
#[test]
fn workspace_self_check() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above the analyzer crate");
    let report = run_workspace(&root).expect("workspace scan");
    assert!(
        report.is_clean(),
        "mdbs-lint found violations:\n{}",
        report.render_human()
    );
    assert!(report.files_scanned > 20);
}
