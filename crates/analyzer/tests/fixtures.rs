//! Fixture-driven tests: every rule is demonstrated by at least one
//! triggering and one non-triggering snippet, the combined JSON report is
//! pinned to a golden file, and the workspace itself must lint clean.

use mdbs_analyzer::rules::{self, AnalyzeOptions, SourceFile};
use mdbs_analyzer::{find_workspace_root, run_sources, run_sources_with, run_workspace};
use std::path::Path;

/// A fixture README providing the Observability table the
/// `metric-docs-sync` fixtures are checked against.
const FIXTURE_README: &str = "\
# fixture

## Observability

| metric | kind | meaning |
|--------|------|---------|
| `quux.documented` | counter | a documented counter |
| `quux.<id>.events` | counter | pattern rows are exempt |

## Next section
";

fn fixture(virtual_path: &str, source: &str) -> SourceFile {
    SourceFile {
        path: virtual_path.to_string(),
        source: source.to_string(),
    }
}

/// Run one fixture through the engine and return the rule names that
/// fired. The README is omitted so only the metric-specific tests (which
/// pass [`FIXTURE_README`] themselves) exercise the bidirectional
/// docs-sync diff.
fn rules_fired(virtual_path: &str, source: &str) -> Vec<String> {
    rules_fired_with(virtual_path, source, None)
}

fn rules_fired_with(virtual_path: &str, source: &str, readme: Option<&str>) -> Vec<String> {
    let report = run_sources(&[fixture(virtual_path, source)], readme);
    let mut names: Vec<String> = report
        .violations
        .iter()
        .map(|v| v.rule.to_string())
        .collect();
    names.dedup();
    names
}

#[test]
fn no_panic_bad_fires() {
    let fired = rules_fired(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/no_panic_bad.rs"),
    );
    assert_eq!(fired, [rules::NO_PANIC]);
}

#[test]
fn no_panic_good_is_quiet() {
    let fired = rules_fired(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/no_panic_good.rs"),
    );
    assert!(fired.is_empty(), "unexpected: {fired:?}");
}

#[test]
fn item_scoped_allow_covers_item_but_does_not_leak() {
    // Inside the item the indexing is suppressed; the identical access in
    // the next item still fires.
    let src = "\
// mdbs-lint: allow(no-panic-in-scheduler, scope=item) — test: slots are pre-grown.
pub fn covered(rows: &mut [u32], slot: usize) -> u32 {
    rows[slot]
}

pub fn uncovered(rows: &mut [u32], slot: usize) -> u32 {
    rows[slot]
}
";
    let report = run_sources(&[fixture("crates/core/src/fixture.rs", src)], None);
    let lines: Vec<u32> = report.violations.iter().map(|v| v.line).collect();
    assert_eq!(lines, [7], "only the access outside the item fires");
}

#[test]
fn no_panic_is_scoped_to_scheduler_crates() {
    // The same panicking source outside crates/core|localdb is legal.
    let fired = rules_fired(
        "crates/bench/src/fixture.rs",
        include_str!("fixtures/no_panic_bad.rs"),
    );
    assert!(fired.is_empty(), "unexpected: {fired:?}");
}

#[test]
fn lock_across_send_bad_fires() {
    let fired = rules_fired(
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/lock_across_send_bad.rs"),
    );
    assert_eq!(fired, [rules::NO_LOCK_ACROSS_SEND]);
}

#[test]
fn lock_across_send_good_is_quiet() {
    let fired = rules_fired(
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/lock_across_send_good.rs"),
    );
    assert!(fired.is_empty(), "unexpected: {fired:?}");
}

#[test]
fn silent_send_drop_bad_fires() {
    let fired = rules_fired(
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/silent_send_drop_bad.rs"),
    );
    assert_eq!(fired, [rules::NO_SILENT_SEND_DROP]);
}

#[test]
fn silent_send_drop_good_is_quiet() {
    let fired = rules_fired(
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/silent_send_drop_good.rs"),
    );
    assert!(fired.is_empty(), "unexpected: {fired:?}");
}

#[test]
fn metric_docs_bad_fires() {
    let report = run_sources(
        &[
            fixture(
                "crates/sim/src/fixture.rs",
                include_str!("fixtures/metric_docs_bad.rs"),
            ),
            // Registers `quux.documented` so the README row is not stale.
            fixture(
                "crates/sim/src/fixture_good.rs",
                include_str!("fixtures/metric_docs_good.rs"),
            ),
        ],
        Some(FIXTURE_README),
    );
    let fired: Vec<&str> = report.violations.iter().map(|v| v.rule).collect();
    assert!(!fired.is_empty());
    assert!(
        fired.iter().all(|r| *r == rules::METRIC_DOCS_SYNC),
        "{fired:?}"
    );
}

#[test]
fn metric_docs_good_is_quiet() {
    let fired = rules_fired_with(
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/metric_docs_good.rs"),
        Some(FIXTURE_README),
    );
    assert!(fired.is_empty(), "unexpected: {fired:?}");
}

#[test]
fn metric_docs_flags_stale_readme_rows() {
    // A documented metric that no code registers is also a violation.
    let report = run_sources(
        &[fixture("crates/sim/src/fixture.rs", "pub fn noop() {}\n")],
        Some(FIXTURE_README),
    );
    assert_eq!(report.violations.len(), 1);
    assert_eq!(report.violations[0].rule, rules::METRIC_DOCS_SYNC);
    assert!(report.violations[0].message.contains("quux.documented"));
}

#[test]
fn exhaustive_match_bad_fires() {
    let fired = rules_fired(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/exhaustive_match_bad.rs"),
    );
    assert_eq!(fired, [rules::EXHAUSTIVE_SCHEME_MATCH]);
}

#[test]
fn exhaustive_match_good_is_quiet() {
    let fired = rules_fired(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/exhaustive_match_good.rs"),
    );
    assert!(fired.is_empty(), "unexpected: {fired:?}");
}

#[test]
fn bad_allow_fires() {
    let fired = rules_fired(
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/bad_allow.rs"),
    );
    assert_eq!(fired, [rules::BAD_ALLOW]);
}

#[test]
fn lock_across_send_flow_sensitive_is_quiet() {
    // PR 2's lexical rule flagged this (the `drop(guard)` hides inside a
    // nested `let` block); the flow-sensitive rewrite must not.
    let fired = rules_fired(
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/lock_across_send_flow_good.rs"),
    );
    assert!(fired.is_empty(), "unexpected: {fired:?}");
}

#[test]
fn lock_across_send_through_callee_fires() {
    let report = run_sources(
        &[fixture(
            "crates/sim/src/fixture.rs",
            include_str!("fixtures/lock_across_send_callee_bad.rs"),
        )],
        None,
    );
    let fired: Vec<&str> = report.violations.iter().map(|v| v.rule).collect();
    assert_eq!(fired, [rules::NO_LOCK_ACROSS_SEND]);
    // The diagnostic names the callee hiding the send.
    assert!(
        report.violations[0].message.contains("notify"),
        "{}",
        report.violations[0].message
    );
}

#[test]
fn lock_order_cycle_bad_fires() {
    let report = run_sources(
        &[fixture(
            "crates/sim/src/fixture.rs",
            include_str!("fixtures/lock_order_cycle_bad.rs"),
        )],
        None,
    );
    let fired: Vec<&str> = report.violations.iter().map(|v| v.rule).collect();
    assert_eq!(fired, [rules::LOCK_ORDER_CYCLE]);
    assert_eq!(report.graphs.lock_cycles.len(), 1);
    let cycle = &report.graphs.lock_cycles[0];
    assert!(cycle.contains(&"alpha".to_string()) && cycle.contains(&"beta".to_string()));
}

#[test]
fn lock_order_cycle_good_is_quiet() {
    let report = run_sources(
        &[fixture(
            "crates/sim/src/fixture.rs",
            include_str!("fixtures/lock_order_cycle_good.rs"),
        )],
        None,
    );
    assert!(report.is_clean(), "{}", report.render_human());
    // The consistent order is still recorded — including the edge that
    // only exists interprocedurally (alpha held across the `tail` call).
    assert!(report
        .graphs
        .lock_edges
        .iter()
        .any(|e| e.from == "alpha" && e.to == "beta" && e.via.is_none()));
    assert!(report
        .graphs
        .lock_edges
        .iter()
        .any(|e| e.from == "alpha" && e.to == "gamma" && e.via.as_deref() == Some("Pair::tail")));
    assert!(report.graphs.lock_cycles.is_empty());
}

#[test]
fn channel_topology_bad_fires() {
    let report = run_sources(
        &[fixture(
            "crates/sim/src/fixture.rs",
            include_str!("fixtures/channel_topology_bad.rs"),
        )],
        None,
    );
    let fired: Vec<&str> = report.violations.iter().map(|v| v.rule).collect();
    assert_eq!(fired, [rules::CHANNEL_TOPOLOGY]);
    assert_eq!(report.graphs.channels.len(), 1);
    assert!(report.graphs.channels[0].receivers.is_empty());
}

#[test]
fn channel_topology_good_is_quiet() {
    let report = run_sources(
        &[fixture(
            "crates/sim/src/fixture.rs",
            include_str!("fixtures/channel_topology_good.rs"),
        )],
        None,
    );
    assert!(report.is_clean(), "{}", report.render_human());
    // Both channels resolved with a sender and a receiver, through the
    // struct-field wiring.
    assert_eq!(report.graphs.channels.len(), 2);
    for ch in &report.graphs.channels {
        assert!(!ch.senders.is_empty(), "channel {} has no sender", ch.tx);
        assert!(
            !ch.receivers.is_empty(),
            "channel {} has no receiver",
            ch.tx
        );
    }
}

#[test]
fn blocking_in_pump_bad_fires() {
    let report = run_sources(
        &[fixture(
            "crates/sim/src/fixture.rs",
            include_str!("fixtures/blocking_in_pump_bad.rs"),
        )],
        None,
    );
    let fired: Vec<&str> = report.violations.iter().map(|v| v.rule).collect();
    // Two findings: the unbounded `recv` directly in pump, and the
    // `sleep` one call level down.
    assert_eq!(fired, [rules::BLOCKING_IN_PUMP, rules::BLOCKING_IN_PUMP]);
    assert!(report
        .violations
        .iter()
        .any(|v| v.message.contains("sleep") && v.message.contains("idle")));
}

#[test]
fn blocking_in_pump_good_is_quiet() {
    // try_recv in the pump is fine; the unbounded recv in `Harvest` is
    // unreachable from any entry point.
    let fired = rules_fired(
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/blocking_in_pump_good.rs"),
    );
    assert!(fired.is_empty(), "unexpected: {fired:?}");
}

/// The pinned branch-merge regression: the guard is dropped in only one
/// `match` arm, so the other arm still holds it at the send. The legacy
/// linear scan clears the guard on the first `drop` it sees and misses
/// the bug; the CFG engine's may-merge keeps it live.
#[test]
fn branch_merge_bad_fires_under_cfg_engine_only() {
    let src = include_str!("fixtures/branch_merge_bad.rs");
    let fired = rules_fired("crates/sim/src/fixture.rs", src);
    assert_eq!(fired, [rules::NO_LOCK_ACROSS_SEND]);
    let legacy = run_sources_with(
        &[fixture("crates/sim/src/fixture.rs", src)],
        None,
        AnalyzeOptions { legacy_flow: true },
    );
    assert!(
        legacy.is_clean(),
        "legacy scan unexpectedly caught the branch-merge case:\n{}",
        legacy.render_human()
    );
}

#[test]
fn branch_merge_good_is_quiet() {
    let fired = rules_fired(
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/branch_merge_good.rs"),
    );
    assert!(fired.is_empty(), "unexpected: {fired:?}");
}

#[test]
fn guard_across_suspend_bad_fires() {
    let report = run_sources(
        &[fixture(
            "crates/sim/src/fixture.rs",
            include_str!("fixtures/guard_across_suspend_bad.rs"),
        )],
        None,
    );
    let fired: Vec<&str> = report.violations.iter().map(|v| v.rule).collect();
    // Two findings: the direct `yield_now` under the guard, and the
    // suspension one call level down in `Pool::backoff`.
    assert_eq!(
        fired,
        [rules::GUARD_ACROSS_SUSPEND, rules::GUARD_ACROSS_SUSPEND]
    );
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.message.contains("Pool::backoff")),
        "{}",
        report.render_human()
    );
}

#[test]
fn guard_across_suspend_good_is_quiet() {
    let fired = rules_fired(
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/guard_across_suspend_good.rs"),
    );
    assert!(fired.is_empty(), "unexpected: {fired:?}");
}

#[test]
fn lost_wakeup_bad_fires() {
    let report = run_sources(
        &[fixture(
            "crates/sim/src/fixture.rs",
            include_str!("fixtures/lost_wakeup_bad.rs"),
        )],
        None,
    );
    let fired: Vec<&str> = report.violations.iter().map(|v| v.rule).collect();
    assert_eq!(fired, [rules::LOST_WAKEUP]);
    assert!(
        report.violations[0].message.contains("register first"),
        "{}",
        report.violations[0].message
    );
}

#[test]
fn lost_wakeup_good_is_quiet() {
    // Register-then-check-then-suspend is the correct order.
    let fired = rules_fired(
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/lost_wakeup_good.rs"),
    );
    assert!(fired.is_empty(), "unexpected: {fired:?}");
}

#[test]
fn double_lock_path_bad_fires() {
    let report = run_sources(
        &[fixture(
            "crates/sim/src/fixture.rs",
            include_str!("fixtures/double_lock_path_bad.rs"),
        )],
        None,
    );
    let fired: Vec<&str> = report.violations.iter().map(|v| v.rule).collect();
    // Two findings (intra- and interprocedural) and *only* those — the
    // same-lock self-edge must not also surface as a lock-order cycle.
    assert_eq!(fired, [rules::DOUBLE_LOCK_PATH, rules::DOUBLE_LOCK_PATH]);
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.message.contains("Store::touch")),
        "{}",
        report.render_human()
    );
    assert!(report.graphs.lock_cycles.is_empty());
}

#[test]
fn double_lock_path_good_is_quiet() {
    let fired = rules_fired(
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/double_lock_path_good.rs"),
    );
    assert!(fired.is_empty(), "unexpected: {fired:?}");
}

#[test]
fn stale_allow_fires_and_names_the_rule() {
    // The allow suppresses nothing: the send happens after the guard is
    // dropped, so `no-lock-across-send` never trips inside its scope.
    let src = "\
pub fn publish(state: &std::sync::Mutex<u64>, tx: &std::sync::mpsc::Sender<u64>) {
    let guard = state.lock().unwrap();
    drop(guard);
    // mdbs-lint: allow(no-lock-across-send) — stale: the guard is already dropped.
    tx.send(1).ok();
}
";
    let report = run_sources(&[fixture("crates/sim/src/fixture.rs", src)], None);
    let fired: Vec<&str> = report.violations.iter().map(|v| v.rule).collect();
    assert_eq!(fired, [rules::STALE_ALLOW]);
    assert_eq!(report.violations[0].line, 4, "points at the directive");
    assert!(
        report.violations[0]
            .message
            .contains("allow(no-lock-across-send)"),
        "{}",
        report.violations[0].message
    );
}

#[test]
fn useful_allow_is_not_stale() {
    // The same directive actually suppressing a violation stays silent.
    let src = "\
pub fn publish(state: &std::sync::Mutex<u64>, tx: &std::sync::mpsc::Sender<u64>) {
    let guard = state.lock().unwrap();
    // mdbs-lint: allow(no-lock-across-send) — fixture: the send is non-blocking here.
    tx.send(*guard).ok();
}
";
    let fired = rules_fired("crates/sim/src/fixture.rs", src);
    assert!(fired.is_empty(), "unexpected: {fired:?}");
}

#[test]
fn stale_allow_is_skipped_under_legacy_flow() {
    // Hit counts only describe the default engine, so the legacy scan
    // must not judge directives by them.
    let src = "\
pub fn publish(state: &std::sync::Mutex<u64>, tx: &std::sync::mpsc::Sender<u64>) {
    let guard = state.lock().unwrap();
    drop(guard);
    // mdbs-lint: allow(no-lock-across-send) — stale: the guard is already dropped.
    tx.send(1).ok();
}
";
    let report = run_sources_with(
        &[fixture("crates/sim/src/fixture.rs", src)],
        None,
        AnalyzeOptions { legacy_flow: true },
    );
    assert!(report.is_clean(), "{}", report.render_human());
}

#[test]
fn used_item_scoped_allow_is_not_stale() {
    // The item-scoped directive suppresses real findings inside its
    // span, so it must not be flagged as stale.
    let src = "\
// mdbs-lint: allow(no-panic-in-scheduler, scope=item) — fixture: slots are pre-grown.
pub fn covered(rows: &mut [u32], slot: usize) -> u32 {
    rows[slot] + rows[slot + 1]
}
";
    let report = run_sources(&[fixture("crates/core/src/fixture.rs", src)], None);
    assert!(report.is_clean(), "{}", report.render_human());
}

#[test]
fn stale_item_scoped_allow_fires_at_the_directive() {
    // An item-scoped directive whose item never trips the rule is stale,
    // and the diagnostic points at the directive line, not into the item.
    let src = "\
// mdbs-lint: allow(no-panic-in-scheduler, scope=item) — stale: nothing here panics.
pub fn covered(rows: &[u32]) -> usize {
    rows.len()
}
";
    let report = run_sources(&[fixture("crates/core/src/fixture.rs", src)], None);
    let fired: Vec<&str> = report.violations.iter().map(|v| v.rule).collect();
    assert_eq!(fired, [rules::STALE_ALLOW]);
    assert_eq!(report.violations[0].line, 1, "points at the directive");
    assert!(
        report.violations[0]
            .message
            .contains("allow(no-panic-in-scheduler)"),
        "{}",
        report.violations[0].message
    );
}

#[test]
fn line_allow_shadowed_by_item_allow_marks_both_used() {
    // Overlapping directives: an item-scoped allow covers the whole fn
    // and a line-scoped allow covers the one violation inside it. Every
    // directive whose span contains a suppressed finding counts as used,
    // so neither is reported stale — shadowing is not staleness.
    let src = "\
// mdbs-lint: allow(no-panic-in-scheduler, scope=item) — fixture: slots are pre-grown.
pub fn covered(rows: &mut [u32], slot: usize) -> u32 {
    // mdbs-lint: allow(no-panic-in-scheduler) — fixture: same argument, line scope.
    rows[slot]
}
";
    let report = run_sources(&[fixture("crates/core/src/fixture.rs", src)], None);
    assert!(report.is_clean(), "{}", report.render_human());
}

#[test]
fn unbalanced_delimiters_degrade_to_parse_error() {
    let report = run_sources(
        &[fixture(
            "crates/sim/src/fixture.rs",
            include_str!("fixtures/parse_unbalanced.rs"),
        )],
        None,
    );
    let fired: Vec<&str> = report.violations.iter().map(|v| v.rule).collect();
    assert!(!fired.is_empty());
    assert!(fired.iter().all(|r| *r == rules::PARSE_ERROR), "{fired:?}");
}

/// Every triggering fixture, combined — the input pinned by both the
/// JSON and the SARIF golden.
fn golden_sources() -> Vec<SourceFile> {
    vec![
        fixture(
            "crates/core/src/exhaustive_match_bad.rs",
            include_str!("fixtures/exhaustive_match_bad.rs"),
        ),
        fixture(
            "crates/core/src/no_panic_bad.rs",
            include_str!("fixtures/no_panic_bad.rs"),
        ),
        fixture(
            "crates/sim/src/bad_allow.rs",
            include_str!("fixtures/bad_allow.rs"),
        ),
        fixture(
            "crates/sim/src/lock_across_send_bad.rs",
            include_str!("fixtures/lock_across_send_bad.rs"),
        ),
        fixture(
            "crates/sim/src/metric_docs_bad.rs",
            include_str!("fixtures/metric_docs_bad.rs"),
        ),
        // Keeps the README's `quux.documented` row non-stale so the golden
        // report only contains deliberate violations.
        fixture(
            "crates/sim/src/metric_docs_good.rs",
            include_str!("fixtures/metric_docs_good.rs"),
        ),
        fixture(
            "crates/sim/src/silent_send_drop_bad.rs",
            include_str!("fixtures/silent_send_drop_bad.rs"),
        ),
        fixture(
            "crates/sim/src/lock_order_cycle_bad.rs",
            include_str!("fixtures/lock_order_cycle_bad.rs"),
        ),
        fixture(
            "crates/sim/src/channel_topology_bad.rs",
            include_str!("fixtures/channel_topology_bad.rs"),
        ),
        fixture(
            "crates/sim/src/blocking_in_pump_bad.rs",
            include_str!("fixtures/blocking_in_pump_bad.rs"),
        ),
        fixture(
            "crates/sim/src/lock_across_send_callee_bad.rs",
            include_str!("fixtures/lock_across_send_callee_bad.rs"),
        ),
        fixture(
            "crates/sim/src/parse_unbalanced.rs",
            include_str!("fixtures/parse_unbalanced.rs"),
        ),
        fixture(
            "crates/sim/src/branch_merge_bad.rs",
            include_str!("fixtures/branch_merge_bad.rs"),
        ),
        fixture(
            "crates/sim/src/guard_across_suspend_bad.rs",
            include_str!("fixtures/guard_across_suspend_bad.rs"),
        ),
        fixture(
            "crates/sim/src/lost_wakeup_bad.rs",
            include_str!("fixtures/lost_wakeup_bad.rs"),
        ),
        fixture(
            "crates/sim/src/double_lock_path_bad.rs",
            include_str!("fixtures/double_lock_path_bad.rs"),
        ),
    ]
}

/// Compare `got` against a pinned golden file; regenerate with
/// `UPDATE_GOLDEN=1 cargo test -p mdbs-analyzer`.
fn assert_golden(got: &str, rel_path: &str) {
    let golden_path = Path::new(env!("CARGO_MANIFEST_DIR")).join(rel_path);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        let text = if got.ends_with('\n') {
            got.to_string()
        } else {
            format!("{got}\n")
        };
        std::fs::write(&golden_path, text).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&golden_path).unwrap();
    assert_eq!(got.trim_end(), want.trim_end(), "golden {rel_path} drifted");
}

/// The combined report over every triggering fixture, pinned as a golden
/// JSON file.
#[test]
fn golden_report() {
    let report = run_sources(&golden_sources(), Some(FIXTURE_README));
    assert_golden(&report.to_json(), "tests/fixtures/golden.json");
}

/// The same combined report as SARIF 2.1.0 — what CI uploads to code
/// scanning.
#[test]
fn golden_sarif_report() {
    let report = run_sources(&golden_sources(), Some(FIXTURE_README));
    let sarif = report.to_sarif();
    // Minimal schema sanity independent of the pinned text.
    assert!(sarif.contains("\"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\""));
    assert!(sarif.contains("\"version\": \"2.1.0\""));
    assert_golden(&sarif, "tests/fixtures/golden.sarif");
}

/// The repository itself must lint clean — this is the same check CI runs
/// via `cargo run -p mdbs-analyzer -- --workspace`.
#[test]
fn workspace_self_check() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above the analyzer crate");
    let report = run_workspace(&root).expect("workspace scan");
    assert!(
        report.is_clean(),
        "mdbs-lint found violations:\n{}",
        report.render_human()
    );
    assert!(report.files_scanned > 20);
}

/// The channel topology the analyzer recovers from the real threaded
/// harness, pinned as a golden DOT graph — CI uploads the same artifact.
/// Regenerate with `UPDATE_GOLDEN=1 cargo test -p mdbs-analyzer`.
#[test]
fn threaded_channel_topology_matches_golden_dot() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above the analyzer crate");
    let report = run_workspace(&root).expect("workspace scan");
    let got = report
        .graphs
        .channel_dot(Some("crates/sim/src/threaded.rs"));
    // Both harness channels must resolve with live endpoints on each side.
    let threaded: Vec<_> = report
        .graphs
        .channels
        .iter()
        .filter(|c| c.file == "crates/sim/src/threaded.rs")
        .collect();
    assert_eq!(threaded.len(), 2, "expected both harness channels");
    for ch in &threaded {
        assert!(!ch.senders.is_empty(), "channel {} has no sender", ch.tx);
        assert!(
            !ch.receivers.is_empty(),
            "channel {} has no receiver",
            ch.tx
        );
    }
    let golden_path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/threaded_channels.dot");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden_path, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&golden_path).unwrap();
    assert_eq!(got.trim_end(), want.trim_end(), "channel topology drifted");
}

/// The control-flow graph the analyzer builds for the real `Gtm2::pump`
/// scheduler loop, pinned as a golden DOT graph — the same artifact
/// `--emit-graphs` writes as `cfg_Gtm2_pump.dot`.
/// Regenerate with `UPDATE_GOLDEN=1 cargo test -p mdbs-analyzer`.
#[test]
fn gtm2_pump_cfg_matches_golden_dot() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above the analyzer crate");
    let report = run_workspace(&root).expect("workspace scan");
    let pump = report
        .graphs
        .cfgs
        .iter()
        .find(|c| c.func == "Gtm2::pump")
        .expect("Gtm2::pump CFG exported");
    assert!(pump.blocks >= 4, "pump CFG suspiciously small: {pump:?}");
    assert!(pump.edges >= pump.blocks - 1, "pump CFG disconnected");
    assert_golden(&pump.dot, "tests/fixtures/gtm2_pump_cfg.dot");
}

/// The three rule catalogs that users see — the README's rule table,
/// the SARIF driver's `rules` array, and the registered rule ids —
/// must agree exactly, in the same order. Adding a rule without
/// documenting it (or documenting one that no longer exists) fails here.
#[test]
fn rule_docs_sync() {
    let registered = rules::all_rules();

    // README: every `| `rule` | ... |` row of the Rules table, in order.
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above the analyzer crate");
    let readme = std::fs::read_to_string(root.join("README.md")).expect("README.md");
    let mut lines = readme.lines();
    lines
        .find(|l| l.starts_with("| rule | scope |"))
        .expect("README rule table header");
    let mut documented = Vec::new();
    for line in lines {
        let Some(rest) = line.strip_prefix("| `") else {
            if line.starts_with("|---") || line.starts_with("| ---") {
                continue; // header separator
            }
            break; // table ended
        };
        let name = rest.split('`').next().expect("closing backtick");
        documented.push(name.to_string());
    }
    assert_eq!(
        documented, registered,
        "README rule table out of sync with rules::all_rules()"
    );

    // SARIF: the driver catalog declares the same ids at the same indices.
    let sarif = run_sources(&[], None).to_sarif();
    let log = mdbs_analyzer::jsonv::parse(&sarif).expect("SARIF parses");
    let catalog: Vec<&str> = log
        .get("runs")
        .and_then(|r| r.as_arr())
        .and_then(|r| r.first())
        .and_then(|r| r.get("tool"))
        .and_then(|t| t.get("driver"))
        .and_then(|d| d.get("rules"))
        .and_then(|r| r.as_arr())
        .expect("driver rules array")
        .iter()
        .map(|r| r.get("id").and_then(|i| i.as_str()).expect("rule id"))
        .collect();
    assert_eq!(
        catalog, registered,
        "SARIF driver catalog out of sync with rules::all_rules()"
    );
}
